//! Persistent TS state: the `node-localStorage` analog.
//!
//! The paper's prototype runs "Node.js … bundled with the
//! node-localStorage package for storing rules and signature key-pairs"
//! (§VI). This module persists the same two artifacts as JSON files in a
//! directory: the rule book and the TS signing key. Prototype-grade like
//! the original — the key is stored hex-encoded without hardware
//! protection; production deployments would use an HSM.

use smacs_crypto::Keypair;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::RuleBook;

/// A directory-backed store for TS state.
pub struct RuleStore {
    dir: PathBuf,
}

impl RuleStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<RuleStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RuleStore { dir })
    }

    fn rules_path(&self) -> PathBuf {
        self.dir.join("rules.json")
    }

    fn key_path(&self) -> PathBuf {
        self.dir.join("sk_ts.hex")
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persist the rule book.
    pub fn save_rules(&self, rules: &RuleBook) -> io::Result<()> {
        let json = smacs_primitives::json::to_string_pretty(rules);
        std::fs::write(self.rules_path(), json)
    }

    /// Load the rule book; `Ok(None)` if never saved.
    pub fn load_rules(&self) -> io::Result<Option<RuleBook>> {
        match std::fs::read_to_string(self.rules_path()) {
            Ok(json) => smacs_primitives::json::from_str(&json)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Persist the signing key (`sk_TS`).
    pub fn save_keypair(&self, keypair: &Keypair) -> io::Result<()> {
        // Round-trip through a seed is impossible; store the raw scalar.
        let secret = keypair_secret_hex(keypair);
        std::fs::write(self.key_path(), secret)
    }

    /// Load the signing key; `Ok(None)` if never saved.
    pub fn load_keypair(&self) -> io::Result<Option<Keypair>> {
        match std::fs::read_to_string(self.key_path()) {
            Ok(hex_str) => {
                let bytes = decode_hex32(hex_str.trim())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad key hex"))?;
                Keypair::from_secret_bytes(&bytes)
                    .map(Some)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "invalid scalar"))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Load the key or generate-and-save a fresh one — first-boot flow.
    pub fn load_or_init_keypair(&self, seed_for_fresh: u64) -> io::Result<Keypair> {
        if let Some(kp) = self.load_keypair()? {
            return Ok(kp);
        }
        let kp = Keypair::from_seed(seed_for_fresh);
        self.save_keypair(&kp)?;
        Ok(kp)
    }
}

fn keypair_secret_hex(keypair: &Keypair) -> String {
    keypair
        .secret_bytes()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

fn decode_hex32(s: &str) -> Option<[u8; 32]> {
    if s.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        out[i] = (hi * 16 + lo) as u8;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ListPolicy;
    use smacs_token::TokenType;

    fn temp_store(tag: &str) -> RuleStore {
        let dir =
            std::env::temp_dir().join(format!("smacs-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RuleStore::open(dir).unwrap()
    }

    #[test]
    fn rules_round_trip() {
        let store = temp_store("rules");
        assert!(store.load_rules().unwrap().is_none());
        let mut book = RuleBook::deny_all();
        book.rules_mut(TokenType::Super).sender = Some(ListPolicy::allow_all());
        store.save_rules(&book).unwrap();
        assert_eq!(store.load_rules().unwrap(), Some(book));
    }

    #[test]
    fn keypair_round_trip() {
        let store = temp_store("key");
        assert!(store.load_keypair().unwrap().is_none());
        let kp = Keypair::from_seed(1234);
        store.save_keypair(&kp).unwrap();
        let loaded = store.load_keypair().unwrap().unwrap();
        assert_eq!(loaded.address(), kp.address());
        // The reloaded key signs identically.
        let digest = smacs_crypto::keccak256(b"persisted");
        assert_eq!(loaded.sign_digest(&digest), kp.sign_digest(&digest));
    }

    #[test]
    fn load_or_init_is_stable_across_boots() {
        let store = temp_store("boot");
        let first = store.load_or_init_keypair(1).unwrap();
        let second = store.load_or_init_keypair(2).unwrap(); // seed ignored: key exists
        assert_eq!(first.address(), second.address());
    }

    #[test]
    fn corrupted_key_is_an_error() {
        let store = temp_store("corrupt");
        std::fs::write(store.dir().join("sk_ts.hex"), "zz").unwrap();
        assert!(store.load_keypair().is_err());
    }
}
