//! The transport-agnostic Token Service API and its wire protocol v2.
//!
//! Every client-facing operation of the TS goes through one trait,
//! [`TsApi`], with two first-class implementations:
//!
//! - [`InProcessClient`] — wraps a [`TokenService`] (via [`FrontEnd`])
//!   directly, no serialization; what examples, tests, and co-located
//!   services use;
//! - [`crate::http::HttpClient`] — speaks protocol v2 over a keep-alive
//!   HTTP connection to a [`crate::http::HttpServer`].
//!
//! Both run the exact same dispatch ([`FrontEnd::handle_api`]), so the wire
//! path is exercised by construction wherever the in-process path is.
//!
//! # Protocol v2
//!
//! Requests are versioned envelopes:
//!
//! ```json
//! {"v": 2, "op": "issue", "body": { ...TokenRequest... }}
//! ```
//!
//! | op            | body                                    | ok body                     |
//! |---------------|-----------------------------------------|-----------------------------|
//! | `issue`       | a `TokenRequest`                        | `{"token_hex": "…"}`        |
//! | `issue_batch` | `{"requests": [TokenRequest…]}` (≤ 256) | `{"results": [item…]}`      |
//! | `set_rules`   | `{"owner_secret": "…", "rules": {…}}`   | `{}`                        |
//! | `discover`    | `{"contract": "0x…"}`                   | `{"metadata": {…} \| null}` |
//! | `ping`        | _absent_                                | `{"pong": true}`            |
//!
//! Replicas additionally speak the **counter op family** to each other —
//! the one-time counter quorum's votes on the wire. These ops are
//! replica-internal: they are dispatched *only* on each replica's
//! dedicated vote endpoint ([`crate::front::EndpointScope::Vote`]); the
//! client-facing endpoint — and any front end with no counter node —
//! refuses them with `counter_unavailable`, so an outside client can
//! never burn or skip one-time index ranges:
//!
//! | op                | body               | ok body                              |
//! |-------------------|--------------------|--------------------------------------|
//! | `counter_prepare` | _absent_           | `{"committed": n}` (phase-1 read)    |
//! | `counter_commit`  | `{"value": n}`     | `{"accepted": bool, "committed": n}` |
//! | `counter_catchup` | _absent_           | `{"committed": n}` (recovery read)   |
//!
//! Responses mirror the envelope: `{"v": 2, "ok": true, "body": {…}}` on
//! success, `{"v": 2, "ok": false, "error": {"code": "…", "message": "…"}}`
//! on failure. Batch items carry per-item `ok`/`token_hex`/`error` — a
//! batch with failing entries is still an `ok` envelope (partial-failure
//! semantics), so one denied request never costs the round trip.
//!
//! Error codes ([`ErrorCode`]) are machine-readable and mirror
//! [`IssueError`]'s variants one-to-one; messages stay as coarse as v1's
//! free-text reasons, because rules are private to the TS (§VII-A d).
//!
//! The unversioned v1 protocol (`{"op": "issue_token", …}`, one request
//! per connection) still parses and is answered in its original shape —
//! see [`FrontEnd::handle_json`].

use smacs_primitives::json::Json;
use smacs_primitives::{json_codec, Address};
use smacs_token::{Token, TokenRequest};
use std::fmt;
use std::sync::Arc;

use crate::discovery::ContractMetadata;
use crate::front::{encode_token_hex, ApiOk, ApiRequest, FrontEnd};
use crate::rules::RuleBook;
use crate::service::{IssueError, TokenService};

/// The wire protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 2;

/// Ceiling on `issue_batch` sizes — one envelope may mint at most this
/// many tokens.
pub const MAX_BATCH: usize = 256;

/// Machine-readable API failure categories. The first four mirror
/// [`IssueError`] variant-for-variant; the rest are envelope/transport
/// level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The token request was malformed (Tab. I field matrix).
    InvalidRequest,
    /// An ACR rejected the request.
    RuleViolation,
    /// A validation tool vetoed the request.
    ToolRejected,
    /// The replicated one-time counter lost quorum.
    CounterUnavailable,
    /// Owner authentication failed.
    Unauthorized,
    /// The envelope itself was malformed (bad JSON shape, unknown op,
    /// oversized batch).
    BadEnvelope,
    /// The `v` field named a protocol version this server does not speak.
    UnsupportedVersion,
    /// The transport failed (connection refused, reset, short read). Only
    /// produced client-side.
    Transport,
    /// Anything else — including error codes minted by a newer server
    /// that this client does not know.
    Internal,
}

impl ErrorCode {
    /// The wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::RuleViolation => "rule_violation",
            ErrorCode::ToolRejected => "tool_rejected",
            ErrorCode::CounterUnavailable => "counter_unavailable",
            ErrorCode::Unauthorized => "unauthorized",
            ErrorCode::BadEnvelope => "bad_envelope",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::Transport => "transport",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse a wire string; unknown codes fold to [`ErrorCode::Internal`]
    /// so newer servers stay usable from older clients.
    pub fn parse(s: &str) -> ErrorCode {
        match s {
            "invalid_request" => ErrorCode::InvalidRequest,
            "rule_violation" => ErrorCode::RuleViolation,
            "tool_rejected" => ErrorCode::ToolRejected,
            "counter_unavailable" => ErrorCode::CounterUnavailable,
            "unauthorized" => ErrorCode::Unauthorized,
            "bad_envelope" => ErrorCode::BadEnvelope,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "transport" => ErrorCode::Transport,
            _ => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured API failure: a machine-readable code plus a coarse
/// human-readable message (deliberately detail-free for rule denials,
/// §VII-A d).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// What category of failure.
    pub code: ErrorCode,
    /// Coarse description, suitable for logs and end users.
    pub message: String,
}

impl ApiError {
    /// Build an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ApiError {
        ApiError {
            code,
            message: message.into(),
        }
    }

    /// A client-side transport failure.
    pub fn transport(e: impl fmt::Display) -> ApiError {
        ApiError::new(ErrorCode::Transport, e.to_string())
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<IssueError> for ApiError {
    fn from(e: IssueError) -> ApiError {
        let code = match &e {
            IssueError::InvalidRequest(_) => ErrorCode::InvalidRequest,
            IssueError::RuleViolation(_) => ErrorCode::RuleViolation,
            IssueError::ToolRejected { .. } => ErrorCode::ToolRejected,
            IssueError::CounterUnavailable => ErrorCode::CounterUnavailable,
        };
        // The Display string is the same coarse reason v1 sent.
        ApiError::new(code, e.to_string())
    }
}

// ---- wire envelope types (codecs generated by `json_codec!`) ----

json_codec! {
    /// A v2 request envelope.
    #[derive(Clone, Debug, PartialEq)]
    pub struct RequestEnvelope {
        /// Protocol version; must be [`PROTOCOL_VERSION`].
        pub v: u32,
        /// Operation name.
        pub op: String,
        /// Operation payload; absent for `ping`.
        pub body: Option<Json>,
    }
}

json_codec! {
    /// A v2 response envelope.
    #[derive(Clone, Debug, PartialEq)]
    pub struct ResponseEnvelope {
        /// Protocol version of the answering server.
        pub v: u32,
        /// Whether the operation succeeded.
        pub ok: bool,
        /// Success payload (when `ok`).
        pub body: Option<Json>,
        /// Failure payload (when `!ok`).
        pub error: Option<WireError>,
    }
}

json_codec! {
    /// The wire form of an [`ApiError`].
    #[derive(Clone, Debug, PartialEq)]
    pub struct WireError {
        /// [`ErrorCode`] wire string.
        pub code: String,
        /// Coarse human-readable message.
        pub message: String,
    }
}

json_codec! {
    /// `issue` success body.
    #[derive(Clone, Debug, PartialEq)]
    pub struct IssueBody {
        /// Hex of the 86-byte token wire image.
        pub token_hex: String,
    }
}

json_codec! {
    /// `issue_batch` request body.
    #[derive(Clone, Debug, PartialEq)]
    pub struct BatchRequestBody {
        /// The requests, issued independently in order.
        pub requests: Vec<TokenRequest>,
    }
}

json_codec! {
    /// One entry of an `issue_batch` response.
    #[derive(Clone, Debug, PartialEq)]
    pub struct BatchItem {
        /// Whether this entry minted a token.
        pub ok: bool,
        /// The token (when `ok`).
        pub token_hex: Option<String>,
        /// The failure (when `!ok`).
        pub error: Option<WireError>,
    }
}

json_codec! {
    /// `issue_batch` success body.
    #[derive(Clone, Debug, PartialEq)]
    pub struct BatchResponseBody {
        /// Per-request outcomes, in request order.
        pub results: Vec<BatchItem>,
    }
}

json_codec! {
    /// `set_rules` request body.
    #[derive(Clone, Debug, PartialEq)]
    pub struct SetRulesBody {
        /// Owner bearer secret.
        pub owner_secret: String,
        /// Replacement rule book.
        pub rules: RuleBook,
    }
}

json_codec! {
    /// `discover` request body.
    #[derive(Clone, Debug, PartialEq)]
    pub struct DiscoverBody {
        /// The contract whose metadata is wanted.
        pub contract: Address,
    }
}

json_codec! {
    /// `discover` success body.
    #[derive(Clone, Debug, PartialEq)]
    pub struct DiscoverResponseBody {
        /// Published metadata, if the contract is known to this TS.
        pub metadata: Option<ContractMetadata>,
    }
}

json_codec! {
    /// `counter_prepare` / `counter_catchup` success body: the answering
    /// node's committed frontier.
    #[derive(Clone, Debug, PartialEq)]
    pub struct CounterStateBody {
        /// The node's next free one-time index.
        pub committed: u64,
    }
}

json_codec! {
    /// `counter_commit` request body.
    #[derive(Clone, Debug, PartialEq)]
    pub struct CounterCommitBody {
        /// The index the coordinator proposes to burn.
        pub value: u64,
    }
}

json_codec! {
    /// `counter_commit` success body: the node's vote.
    #[derive(Clone, Debug, PartialEq)]
    pub struct CounterVoteBody {
        /// True iff the node burned `value` (it was exactly its frontier).
        pub accepted: bool,
        /// The node's frontier after the vote.
        pub committed: u64,
    }
}

impl From<&ApiError> for WireError {
    fn from(e: &ApiError) -> WireError {
        WireError {
            code: e.code.as_str().into(),
            message: e.message.clone(),
        }
    }
}

impl From<WireError> for ApiError {
    fn from(w: WireError) -> ApiError {
        ApiError::new(ErrorCode::parse(&w.code), w.message)
    }
}

impl BatchItem {
    /// Wire form of one batch outcome.
    pub fn from_result(result: &Result<Token, ApiError>) -> BatchItem {
        match result {
            Ok(token) => BatchItem {
                ok: true,
                token_hex: Some(encode_token_hex(token)),
                error: None,
            },
            Err(e) => BatchItem {
                ok: false,
                token_hex: None,
                error: Some(WireError::from(e)),
            },
        }
    }

    /// Decode one batch outcome; malformed items fold to
    /// [`ErrorCode::Internal`].
    pub fn into_result(self) -> Result<Token, ApiError> {
        if self.ok {
            let hex = self
                .token_hex
                .ok_or_else(|| ApiError::new(ErrorCode::Internal, "ok item without token_hex"))?;
            crate::front::decode_token_hex(&hex)
                .ok_or_else(|| ApiError::new(ErrorCode::Internal, "undecodable token_hex"))
        } else {
            Err(self
                .error
                .map(ApiError::from)
                .unwrap_or_else(|| ApiError::new(ErrorCode::Internal, "failed item without error")))
        }
    }
}

// ---- the trait ----

/// The client-facing Token Service surface, identical in-process and over
/// the wire.
pub trait TsApi: Send + Sync {
    /// Request one token.
    fn issue(&self, request: &TokenRequest) -> Result<Token, ApiError>;

    /// Request up to [`MAX_BATCH`] tokens in one round trip. The outer
    /// `Result` fails only at the envelope level (oversized batch,
    /// transport); individual denials surface per-item.
    fn issue_batch(
        &self,
        requests: &[TokenRequest],
    ) -> Result<Vec<Result<Token, ApiError>>, ApiError>;

    /// Owner: replace the rule book (authenticated by the owner secret).
    fn set_rules(&self, owner_secret: &str, rules: RuleBook) -> Result<(), ApiError>;

    /// Look up the deployment metadata this TS publishes for `contract`
    /// (§VII-B service discovery).
    fn discover(&self, contract: Address) -> Result<Option<ContractMetadata>, ApiError>;

    /// Liveness probe.
    fn ping(&self) -> Result<(), ApiError>;
}

// ---- the in-process implementation ----

/// [`TsApi`] over a co-located [`FrontEnd`] — no serialization, but the
/// same [`FrontEnd::handle_api`] dispatch the wire path runs.
#[derive(Clone)]
pub struct InProcessClient {
    front: Arc<FrontEnd>,
}

impl InProcessClient {
    /// Wrap a bare [`TokenService`] (the common case for tests, examples,
    /// and experiments): builds the [`FrontEnd`] internally.
    pub fn new(
        service: TokenService,
        owner_secret: impl Into<String>,
        now: u64,
    ) -> InProcessClient {
        InProcessClient {
            front: Arc::new(FrontEnd::new(service, owner_secret, now)),
        }
    }

    /// Wrap an existing front end (e.g. one also served over HTTP).
    pub fn from_front(front: Arc<FrontEnd>) -> InProcessClient {
        InProcessClient { front }
    }

    /// The wrapped front end.
    pub fn front(&self) -> &Arc<FrontEnd> {
        &self.front
    }

    /// The wrapped service (owner-side escape hatch: attach tools, edit
    /// rules without the secret, read diagnostics).
    pub fn service(&self) -> &TokenService {
        self.front.service()
    }

    /// Set the TS-local clock (experiments time-travel; production feeds
    /// wall time).
    pub fn set_time(&self, now: u64) {
        self.front.set_time(now);
    }

    /// Advance the TS-local clock.
    pub fn advance_time(&self, secs: u64) {
        self.front.advance_time(secs);
    }

    /// Publish discovery metadata for a contract this TS protects.
    pub fn publish(&self, contract: Address, metadata: ContractMetadata) {
        self.front.publish(contract, metadata);
    }
}

impl TsApi for InProcessClient {
    fn issue(&self, request: &TokenRequest) -> Result<Token, ApiError> {
        match self.front.handle_api(ApiRequest::Issue(request.clone()))? {
            ApiOk::Token(token) => Ok(token),
            other => Err(unexpected(&other)),
        }
    }

    fn issue_batch(
        &self,
        requests: &[TokenRequest],
    ) -> Result<Vec<Result<Token, ApiError>>, ApiError> {
        match self
            .front
            .handle_api(ApiRequest::IssueBatch(requests.to_vec()))?
        {
            ApiOk::Batch(results) => Ok(results),
            other => Err(unexpected(&other)),
        }
    }

    fn set_rules(&self, owner_secret: &str, rules: RuleBook) -> Result<(), ApiError> {
        match self.front.handle_api(ApiRequest::SetRules {
            owner_secret: owner_secret.into(),
            rules,
        })? {
            ApiOk::RulesSet => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn discover(&self, contract: Address) -> Result<Option<ContractMetadata>, ApiError> {
        match self.front.handle_api(ApiRequest::Discover { contract })? {
            ApiOk::Discovered(metadata) => Ok(metadata),
            other => Err(unexpected(&other)),
        }
    }

    fn ping(&self) -> Result<(), ApiError> {
        match self.front.handle_api(ApiRequest::Ping)? {
            ApiOk::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(got: &ApiOk) -> ApiError {
    ApiError::new(ErrorCode::Internal, format!("mismatched response {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TokenServiceConfig;
    use smacs_crypto::Keypair;
    use smacs_token::TokenType;

    fn client() -> InProcessClient {
        InProcessClient::new(
            TokenService::new(
                Keypair::from_seed(1),
                RuleBook::permissive(),
                TokenServiceConfig::default(),
            ),
            "hunter2",
            1_000,
        )
    }

    fn request() -> TokenRequest {
        TokenRequest::super_token(Address::from_low_u64(1), Address::from_low_u64(2))
    }

    #[test]
    fn issue_through_the_trait() {
        let api = client();
        let token = api.issue(&request()).unwrap();
        assert_eq!(token.ttype, TokenType::Super);
        assert_eq!(token.expire, 1_000 + 3_600);
        api.advance_time(50);
        assert_eq!(api.issue(&request()).unwrap().expire, 1_050 + 3_600);
    }

    #[test]
    fn batch_reports_per_item_outcomes() {
        let api = client();
        let mut bad = request();
        bad.args.push(smacs_token::request::ArgBinding {
            name: "x".into(),
            value: "1".into(),
        });
        let results = api.issue_batch(&[request(), bad, request()]).unwrap();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err().code,
            ErrorCode::InvalidRequest
        );
        assert!(results[2].is_ok());
    }

    #[test]
    fn oversized_batch_rejected_at_envelope_level() {
        let api = client();
        let requests = vec![request(); MAX_BATCH + 1];
        let err = api.issue_batch(&requests).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadEnvelope);
    }

    #[test]
    fn set_rules_requires_secret_and_discover_reads_directory() {
        let api = client();
        assert_eq!(
            api.set_rules("wrong", RuleBook::deny_all())
                .unwrap_err()
                .code,
            ErrorCode::Unauthorized
        );
        api.set_rules("hunter2", RuleBook::deny_all()).unwrap();
        assert_eq!(
            api.issue(&request()).unwrap_err().code,
            ErrorCode::RuleViolation
        );

        let contract = Address::from_low_u64(0xC0);
        assert_eq!(api.discover(contract).unwrap(), None);
        api.publish(
            contract,
            ContractMetadata {
                name: "Vault".into(),
                compiler: "smacs 0.1".into(),
                token_service_url: Some("http://127.0.0.1:1".into()),
                replica_urls: Vec::new(),
            },
        );
        assert_eq!(api.discover(contract).unwrap().unwrap().name, "Vault");
        api.ping().unwrap();
    }

    #[test]
    fn error_codes_round_trip_the_wire_strings() {
        for code in [
            ErrorCode::InvalidRequest,
            ErrorCode::RuleViolation,
            ErrorCode::ToolRejected,
            ErrorCode::CounterUnavailable,
            ErrorCode::Unauthorized,
            ErrorCode::BadEnvelope,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Transport,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), code);
        }
        assert_eq!(ErrorCode::parse("made_up_code"), ErrorCode::Internal);
    }

    #[test]
    fn rule_denials_stay_coarse_over_the_api() {
        let api = client();
        api.service().set_rules(RuleBook::deny_all());
        let err = api.issue(&request()).unwrap_err();
        assert_eq!(err.code, ErrorCode::RuleViolation);
        assert!(
            !err.message.contains("0x"),
            "leaked rule detail: {}",
            err.message
        );
    }
}
