//! Fault injection for availability testing (§VII-B).
//!
//! A [`FaultPlan`] is a shared handle the chaos suite arms and the HTTP
//! server consults at its transport boundary. Each fault is a *budget*
//! (arm N occurrences, they are consumed first-come-first-served across
//! connections) except the response delay, which stays in force until
//! cleared. The plan injects nothing unless armed, and an unarmed plan
//! costs one relaxed atomic load per request — cheap enough to leave wired
//! into production paths permanently, which is the point: the faulted code
//! path *is* the production code path.
//!
//! Faults modelled here, and where they bite:
//!
//! | fault                 | boundary   | what the client observes          |
//! |-----------------------|------------|-----------------------------------|
//! | `drop_requests`       | transport  | connection closed, **no** dispatch — the request was never processed |
//! | `fail_requests`       | service    | HTTP 500 + v2 `internal` envelope, **no** dispatch |
//! | `delay_responses`     | transport  | response arrives late (or the client's read timeout fires first) |
//! | `truncate_responses`  | transport  | request **was** dispatched, response cut mid-body, connection closed |
//!
//! On top of the budgets, a plan carries **address-scoped** faults that the
//! *sending* side of the counter-quorum wire transport consults per peer
//! (these model the network between replicas, so they are keyed by
//! destination address and naturally asymmetric — `A` partitioned from `B`
//! says nothing about `B → A`):
//!
//! | fault               | boundary     | what the cluster observes          |
//! |---------------------|--------------|------------------------------------|
//! | `partition_addr`    | vote send    | this replica's votes to that peer vanish (one-way partition) until healed |
//! | `delay_votes_to`    | vote send    | votes to that peer arrive late — reordered relative to other peers |
//! | `duplicate_votes`   | vote send    | budget: a vote is delivered twice (the quorum must treat the echo as a no-op) |
//!
//! Replica-level faults (kill a whole node, partition a counter node away)
//! live on [`crate::cluster::ReplicaSet`], which owns the processes being
//! killed; this module only corrupts the wire.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sentinel for "no delay armed" (nanoseconds slot).
const NO_DELAY: u64 = 0;

/// A shared, armable set of transport/service faults.
///
/// All methods are safe to call concurrently with live traffic; budgets
/// are consumed atomically so exactly N requests are affected no matter
/// how many server workers race for them.
#[derive(Default)]
pub struct FaultPlan {
    /// Budget: close the connection after reading a request, before
    /// dispatching it.
    drop_requests: AtomicU64,
    /// Budget: answer HTTP 500 with a v2 `internal` envelope instead of
    /// dispatching.
    fail_requests: AtomicU64,
    /// Budget: dispatch the request, then write a truncated response and
    /// close (the minted-but-lost case — at-most-once's worst input).
    truncate_responses: AtomicU64,
    /// Delay applied before every response while non-zero (nanoseconds).
    delay_nanos: AtomicU64,
    /// Peers this side cannot send counter votes to (one-way partition),
    /// mapped to an optional send delay. `Some(Duration::ZERO)`-style
    /// entries don't exist: a peer is either absent (healthy), mapped to
    /// `None` (partitioned), or mapped to `Some(delay)` (slow link).
    vote_links: Mutex<HashMap<SocketAddr, LinkFault>>,
    /// Budget: deliver a counter vote twice (at-least-once delivery — the
    /// receiving state machine must reject the echo).
    duplicate_votes: AtomicU64,
}

/// Per-peer link state for counter votes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LinkFault {
    /// Sends to this peer are dropped entirely.
    Partitioned,
    /// Sends to this peer are delayed by this much (reordering them
    /// relative to votes sent to healthy peers).
    Delayed(Duration),
}

impl FaultPlan {
    /// An inert plan.
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Arm: the next `n` requests get their connection closed without a
    /// response and without being dispatched.
    pub fn drop_requests(&self, n: u64) {
        self.drop_requests.store(n, Ordering::SeqCst);
    }

    /// Arm: the next `n` requests are answered with HTTP 500 (v2
    /// `internal` envelope) without being dispatched — the service-boundary
    /// failure a failover client must treat as "try another replica".
    pub fn fail_requests(&self, n: u64) {
        self.fail_requests.store(n, Ordering::SeqCst);
    }

    /// Arm: the next `n` requests are dispatched normally but their
    /// responses are cut off mid-body and the connection closed. The
    /// request's effects (minted tokens, burned counter indexes) are
    /// real; only the answer is lost.
    pub fn truncate_responses(&self, n: u64) {
        self.truncate_responses.store(n, Ordering::SeqCst);
    }

    /// Every response is delayed by `delay` until [`FaultPlan::clear`] (or
    /// another `delay_responses` call) changes it.
    pub fn delay_responses(&self, delay: Duration) {
        self.delay_nanos.store(
            delay.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::SeqCst,
        );
    }

    /// One-way partition: counter votes *from this replica* to `peer`
    /// are dropped until [`FaultPlan::heal_addr`]. Asymmetric by design —
    /// partition `A → B` without touching `B → A` by arming only `A`'s
    /// plan.
    pub fn partition_addr(&self, peer: SocketAddr) {
        self.vote_links.lock().insert(peer, LinkFault::Partitioned);
    }

    /// Counter votes from this replica to `peer` are delayed by `delay`
    /// before being sent, reordering them against votes to other peers,
    /// until [`FaultPlan::heal_addr`].
    pub fn delay_votes_to(&self, peer: SocketAddr, delay: Duration) {
        self.vote_links
            .lock()
            .insert(peer, LinkFault::Delayed(delay));
    }

    /// Heal the link to `peer` (no-op if it was healthy).
    pub fn heal_addr(&self, peer: SocketAddr) {
        self.vote_links.lock().remove(&peer);
    }

    /// Arm: the next `n` counter votes are each sent twice (duplicate
    /// delivery — the vote state machine must reject the echo).
    pub fn duplicate_votes(&self, n: u64) {
        self.duplicate_votes.store(n, Ordering::SeqCst);
    }

    /// Disarm everything, including all per-peer link faults.
    pub fn clear(&self) {
        self.drop_requests.store(0, Ordering::SeqCst);
        self.fail_requests.store(0, Ordering::SeqCst);
        self.truncate_responses.store(0, Ordering::SeqCst);
        self.delay_nanos.store(NO_DELAY, Ordering::SeqCst);
        self.duplicate_votes.store(0, Ordering::SeqCst);
        self.vote_links.lock().clear();
    }

    /// True while any fault is armed (diagnostics).
    pub fn armed(&self) -> bool {
        self.drop_requests.load(Ordering::SeqCst) > 0
            || self.fail_requests.load(Ordering::SeqCst) > 0
            || self.truncate_responses.load(Ordering::SeqCst) > 0
            || self.delay_nanos.load(Ordering::SeqCst) != NO_DELAY
            || self.duplicate_votes.load(Ordering::SeqCst) > 0
            || !self.vote_links.lock().is_empty()
    }

    // ---- server-side consumption (pub(crate): only the transport layer
    // spends budgets) ----

    /// Atomically decrement `budget`; true iff a unit was consumed.
    fn take(budget: &AtomicU64) -> bool {
        budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    pub(crate) fn take_drop(&self) -> bool {
        Self::take(&self.drop_requests)
    }

    pub(crate) fn take_fail(&self) -> bool {
        Self::take(&self.fail_requests)
    }

    pub(crate) fn take_truncate(&self) -> bool {
        Self::take(&self.truncate_responses)
    }

    pub(crate) fn response_delay(&self) -> Option<Duration> {
        match self.delay_nanos.load(Ordering::SeqCst) {
            NO_DELAY => None,
            nanos => Some(Duration::from_nanos(nanos)),
        }
    }

    // ---- sender-side consumption (pub(crate): the wire counter
    // transport consults these before each vote send) ----

    /// True iff votes to `peer` are currently dropped.
    pub(crate) fn is_partitioned(&self, peer: SocketAddr) -> bool {
        matches!(
            self.vote_links.lock().get(&peer),
            Some(LinkFault::Partitioned)
        )
    }

    /// Delay to apply before sending a vote to `peer`, if armed.
    pub(crate) fn vote_delay(&self, peer: SocketAddr) -> Option<Duration> {
        match self.vote_links.lock().get(&peer) {
            Some(LinkFault::Delayed(delay)) => Some(*delay),
            _ => None,
        }
    }

    /// Consume one duplicate-delivery unit; true = send this vote twice.
    pub(crate) fn take_duplicate_vote(&self) -> bool {
        Self::take(&self.duplicate_votes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_consumed_exactly() {
        let plan = FaultPlan::new();
        assert!(!plan.take_drop(), "unarmed plan injects nothing");
        plan.drop_requests(2);
        assert!(plan.take_drop());
        assert!(plan.take_drop());
        assert!(!plan.take_drop(), "budget of 2 spent");
    }

    #[test]
    fn budgets_are_race_free() {
        let plan = FaultPlan::new();
        plan.fail_requests(100);
        let consumed: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let plan = &plan;
                    s.spawn(move || (0..50).filter(|_| plan.take_fail()).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(consumed, 100, "exactly the armed budget is spent");
    }

    #[test]
    fn link_faults_are_scoped_per_address() {
        let plan = FaultPlan::new();
        let a: SocketAddr = "127.0.0.1:7001".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:7002".parse().unwrap();
        plan.partition_addr(a);
        plan.delay_votes_to(b, Duration::from_millis(3));
        assert!(plan.is_partitioned(a));
        assert!(!plan.is_partitioned(b), "partition does not leak to b");
        assert_eq!(plan.vote_delay(b), Some(Duration::from_millis(3)));
        assert_eq!(plan.vote_delay(a), None, "partitioned, not delayed");
        assert!(plan.armed());
        plan.heal_addr(a);
        assert!(!plan.is_partitioned(a));
        assert!(plan.armed(), "b's delay still armed");
        plan.clear();
        assert!(!plan.armed());
        assert_eq!(plan.vote_delay(b), None);
    }

    #[test]
    fn duplicate_vote_budget_is_consumed_exactly() {
        let plan = FaultPlan::new();
        assert!(!plan.take_duplicate_vote());
        plan.duplicate_votes(1);
        assert!(plan.take_duplicate_vote());
        assert!(!plan.take_duplicate_vote());
    }

    #[test]
    fn delay_holds_until_cleared() {
        let plan = FaultPlan::new();
        assert_eq!(plan.response_delay(), None);
        plan.delay_responses(Duration::from_millis(5));
        assert_eq!(plan.response_delay(), Some(Duration::from_millis(5)));
        assert_eq!(plan.response_delay(), Some(Duration::from_millis(5)));
        assert!(plan.armed());
        plan.clear();
        assert_eq!(plan.response_delay(), None);
        assert!(!plan.armed());
    }
}
