//! One listener API for every SMACS endpoint.
//!
//! The Token Service binds the same machinery twice: the client-facing
//! listener ([`EndpointScope::Public`]) and, in wire-counter mode, one
//! dedicated vote endpoint per replica ([`EndpointScope::Vote`]). Both
//! used to be brought up by hand-rolled `HttpServer::start_with` calls
//! scattered through `cluster.rs`, each re-deriving the scope, fault
//! plan, and rebind-retry policy. [`Endpoint`] is the single bring-up
//! path: callers say *what* they are binding (front end + scope + config)
//! and every endpoint rides the same epoll reactor, worker-pool lanes,
//! and [`crate::fault::FaultPlan`] injection points underneath.
//!
//! The scope passed to [`Endpoint::bind`] is authoritative — it
//! overwrites whatever the config said, so a vote endpoint cannot be
//! accidentally downgraded to `Public` (or vice versa) by a stale config
//! literal.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crate::front::{EndpointScope, FrontEnd};
use crate::http::{HttpServer, HttpServerConfig};

/// A bound, serving listener: an [`HttpServer`] plus the scope it was
/// brought up under. Dropping an `Endpoint` shuts the server down (see
/// [`HttpServer`]'s drop semantics); prefer [`Endpoint::shutdown`] for a
/// deterministic join.
pub struct Endpoint {
    server: HttpServer,
    scope: EndpointScope,
}

impl Endpoint {
    /// Bind `front` on `config.bind` (or an ephemeral port) under
    /// `scope`. The scope parameter overrides `config.scope`.
    pub fn bind(
        front: Arc<FrontEnd>,
        scope: EndpointScope,
        config: HttpServerConfig,
    ) -> std::io::Result<Endpoint> {
        let server = HttpServer::start_with(front, HttpServerConfig { scope, ..config })?;
        Ok(Endpoint { server, scope })
    }

    /// [`Endpoint::bind`], retrying briefly on failure — the recovery
    /// path rebinds an address the kernel may be slow to release after
    /// the previous listener closed.
    pub fn bind_retry(
        front: Arc<FrontEnd>,
        scope: EndpointScope,
        config: HttpServerConfig,
    ) -> std::io::Result<Endpoint> {
        let mut last_err = None;
        for _ in 0..50 {
            match Endpoint::bind(front.clone(), scope, config.clone()) {
                Ok(endpoint) => return Ok(endpoint),
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        Err(last_err.expect("retry loop ran"))
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The service URL clients dial.
    pub fn url(&self) -> String {
        self.server.url()
    }

    /// The scope this endpoint serves under.
    pub fn scope(&self) -> EndpointScope {
        self.scope
    }

    /// The underlying server (diagnostics: parked/open connection
    /// counts).
    pub fn server(&self) -> &HttpServer {
        &self.server
    }

    /// Deterministic shutdown: close parked connections, drain in-flight
    /// requests, join the reactor thread.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ErrorCode, TsApi};
    use crate::http::HttpClient;
    use crate::rules::RuleBook;
    use crate::service::{TokenService, TokenServiceConfig};
    use smacs_crypto::Keypair;

    fn front() -> Arc<FrontEnd> {
        let service = TokenService::new(
            Keypair::from_seed(77),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        Arc::new(
            FrontEnd::new(service, "secret", 1_700_000_000)
                .with_counter(crate::replica::CounterNode::new()),
        )
    }

    #[test]
    fn bind_scope_overrides_the_config_scope() {
        // A stale Public in the config literal must not leak into a vote
        // endpoint: the bind-time scope wins.
        let endpoint = Endpoint::bind(
            front(),
            EndpointScope::Vote,
            HttpServerConfig::builder()
                .workers(1)
                .scope(EndpointScope::Public)
                .build(),
        )
        .unwrap();
        assert_eq!(endpoint.scope(), EndpointScope::Vote);
        // Vote scope admits counter ops…
        let client = HttpClient::connect(endpoint.addr());
        assert!(client.call_detailed("counter_prepare", None, true).is_ok());
        endpoint.shutdown();

        // …and Public refuses them.
        let endpoint = Endpoint::bind(
            front(),
            EndpointScope::Public,
            HttpServerConfig::builder().workers(1).build(),
        )
        .unwrap();
        let client = HttpClient::connect(endpoint.addr());
        let err = client
            .call_detailed("counter_prepare", None, true)
            .unwrap_err()
            .into_api();
        assert_eq!(err.code, ErrorCode::CounterUnavailable);
        client.ping().unwrap();
        endpoint.shutdown();
    }

    #[test]
    fn bind_retry_recovers_a_just_freed_address() {
        let first = Endpoint::bind(
            front(),
            EndpointScope::Public,
            HttpServerConfig::builder().workers(1).build(),
        )
        .unwrap();
        let addr = first.addr();
        first.shutdown();
        let again = Endpoint::bind_retry(
            front(),
            EndpointScope::Public,
            HttpServerConfig::builder().workers(1).bind(addr).build(),
        )
        .unwrap();
        assert_eq!(again.addr(), addr);
        HttpClient::connect(again.addr()).ping().unwrap();
        again.shutdown();
    }
}
