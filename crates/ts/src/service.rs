//! The access-granting module: request checking and token issuance.
//!
//! §IV-B(a): "To apply for a token, a client sends a token request
//! specifying the intended type together with a compatible reqPayload …
//! When receiving the token request, the TS parses and checks it against
//! the rules. Once verified, a token is issued according to the request"
//! — by signing `type ‖ expire ‖ index ‖ reqPayload` with `sk_TS`.

use parking_lot::RwLock;
use smacs_chain::Chain;
use smacs_crypto::Keypair;
use smacs_primitives::{Address, EpochCell, WorkerPool};
use smacs_token::{signing_digest, PayloadContext, Token, TokenRequest, TokenType, NO_INDEX};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::replica::CounterCluster;
use crate::rules::{RuleBook, RuleViolation};
use crate::validation::ValidationTool;

/// Why issuance failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IssueError {
    /// The request itself was malformed (Tab. I field matrix).
    InvalidRequest(String),
    /// An ACR rejected the request.
    RuleViolation(RuleViolation),
    /// A validation tool vetoed the request.
    ToolRejected {
        /// The vetoing tool.
        tool: &'static str,
        /// Its reason.
        reason: String,
    },
    /// The replicated counter lost quorum (§VII-B availability).
    CounterUnavailable,
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueError::InvalidRequest(what) => write!(f, "invalid request: {what}"),
            IssueError::RuleViolation(v) => write!(f, "rule violation: {v}"),
            IssueError::ToolRejected { tool, reason } => {
                write!(f, "validation tool {tool} rejected: {reason}")
            }
            IssueError::CounterUnavailable => write!(f, "one-time counter unavailable"),
        }
    }
}

impl std::error::Error for IssueError {}

/// Where one-time indexes come from.
enum IndexSource {
    /// Single-node atomic counter.
    Local(AtomicU64),
    /// Majority-quorum replicated counter (§VII-B).
    Replicated(CounterCluster),
}

/// Rule books sharded by contract address, shared across the replicas of
/// a [`crate::cluster::ReplicaSet`].
///
/// Each shard is its own [`EpochCell`], so a rule update for one
/// contract's shard never invalidates the epoch snapshots issuers hold
/// for other shards — and because every replica holds the same
/// `Arc<ShardedRules>`, an owner update through *any* replica propagates
/// to all of them in one atomic swap per shard (the paper's "rules can be
/// updated dynamically" story, now replica-wide).
pub struct ShardedRules {
    shards: Vec<EpochCell<RuleBook>>,
}

impl ShardedRules {
    /// `shards` rule books, each initially `initial`.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, initial: RuleBook) -> Arc<ShardedRules> {
        assert!(shards > 0, "need at least one rule shard");
        Arc::new(ShardedRules {
            shards: (0..shards)
                .map(|_| EpochCell::new(initial.clone()))
                .collect(),
        })
    }

    /// Which shard governs `contract`. Stable across replicas (pure
    /// function of the address bytes), cheap, and uniform enough for
    /// shard counts far below 2^16.
    pub fn shard_index(&self, contract: Address) -> usize {
        let bytes = contract.as_bytes();
        let mix = bytes.iter().fold(0usize, |acc, b| {
            acc.wrapping_mul(31).wrapping_add(*b as usize)
        });
        mix % self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pin the current rule snapshot for `contract`'s shard.
    pub fn load(&self, contract: Address) -> Arc<RuleBook> {
        self.shards[self.shard_index(contract)].load()
    }

    /// Replace every shard's book with `rules` (the whole-service
    /// `set_rules` semantics, propagated to all sharing replicas).
    pub fn store_all(&self, rules: RuleBook) {
        for shard in &self.shards {
            shard.store(rules.clone());
        }
    }

    /// Read-copy-update every shard (owner-side targeted edit).
    pub fn update_all<F: Fn(&mut RuleBook)>(&self, edit: F) {
        for shard in &self.shards {
            shard.update(&edit);
        }
    }

    /// Read-copy-update only the shard governing `contract` — the cheap
    /// path when an edit targets one contract's rules.
    pub fn update_contract<F: FnOnce(&mut RuleBook)>(&self, contract: Address, edit: F) {
        self.shards[self.shard_index(contract)].update(edit);
    }
}

/// Where rule books live: owned by this service, or shared (sharded)
/// across a replica set.
enum RuleSource {
    /// This service's private book.
    Owned(EpochCell<RuleBook>),
    /// Shared shards — every replica holding the same `Arc` sees every
    /// update.
    Shared(Arc<ShardedRules>),
}

impl RuleSource {
    fn load(&self, contract: Address) -> Arc<RuleBook> {
        match self {
            RuleSource::Owned(cell) => cell.load(),
            RuleSource::Shared(shards) => shards.load(contract),
        }
    }
}

/// TS configuration.
#[derive(Clone, Debug)]
pub struct TokenServiceConfig {
    /// Lifetime granted to issued tokens, in seconds.
    pub token_lifetime_secs: u64,
    /// Batches at least this large fan signature creation across the
    /// worker pool; smaller ones stay sequential (the fan-out bookkeeping
    /// would cost more than the ~90 µs signatures it parallelizes).
    pub parallel_batch_min: usize,
}

impl Default for TokenServiceConfig {
    fn default() -> Self {
        // The paper's Table IV analysis assumes 1-hour one-time tokens.
        TokenServiceConfig {
            token_lifetime_secs: 3_600,
            parallel_batch_min: 8,
        }
    }
}

/// A Token Service instance for one (or more) SMACS-enabled contracts.
pub struct TokenService {
    sk_ts: Keypair,
    /// Rules live behind an epoch snapshot: issuance pins an immutable
    /// `Arc<RuleBook>` per request (lock-free in steady state) and
    /// `set_rules` swaps the whole book atomically — concurrent issuers
    /// never contend with each other or with rule reads. In a replica
    /// set the source is a shared [`ShardedRules`] instead.
    rules: RuleSource,
    tools: Vec<Arc<dyn ValidationTool>>,
    testnet: Option<RwLock<Chain>>,
    index_source: IndexSource,
    /// Pool for batch signing fan-out (shared process-wide by default).
    pool: Arc<WorkerPool>,
    config: TokenServiceConfig,
}

impl TokenService {
    /// A TS with the given signing key and initial rules; no validation
    /// tools, local counter, process-shared worker pool.
    pub fn new(sk_ts: Keypair, rules: RuleBook, config: TokenServiceConfig) -> Self {
        TokenService {
            sk_ts,
            rules: RuleSource::Owned(EpochCell::new(rules)),
            tools: Vec::new(),
            testnet: None,
            index_source: IndexSource::Local(AtomicU64::new(0)),
            pool: WorkerPool::shared().clone(),
            config,
        }
    }

    /// Attach a local testnet fork for validation tools to simulate on
    /// ("TSes … simulate the runtime behavior of the smart contract in an
    /// isolated off-chain environment", §IV-E).
    pub fn with_testnet(mut self, fork: Chain) -> Self {
        self.testnet = Some(RwLock::new(fork));
        self
    }

    /// Plug in a validation tool (§V).
    pub fn with_tool(mut self, tool: Arc<dyn ValidationTool>) -> Self {
        self.tools.push(tool);
        self
    }

    /// Use a replicated counter for one-time indexes (§VII-B).
    pub fn with_replicated_counter(mut self, cluster: CounterCluster) -> Self {
        self.index_source = IndexSource::Replicated(cluster);
        self
    }

    /// Check rules against shards shared with sibling replicas instead of
    /// a service-private book — what [`crate::cluster::ReplicaSet`] wires
    /// so one owner update reaches every replica.
    pub fn with_shared_rules(mut self, shards: Arc<ShardedRules>) -> Self {
        self.rules = RuleSource::Shared(shards);
        self
    }

    /// Whether one-time issuance is currently possible: always for a
    /// local counter, quorum-dependent for a replicated one. The
    /// degradation signal operators alert on.
    pub fn one_time_available(&self) -> bool {
        match &self.index_source {
            IndexSource::Local(_) => true,
            IndexSource::Replicated(cluster) => cluster.has_quorum(),
        }
    }

    /// Fan batch signing across `pool` instead of the process-shared
    /// default — benches use this to pin an exact parallelism degree, and
    /// an embedded HTTP server shares its connection pool this way.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The pool this service fans batch signing across.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The address form of `pk_TS` — what shielded contracts store.
    pub fn ts_address(&self) -> Address {
        self.sk_ts.address()
    }

    /// Owner-side dynamic rule update ("these rules can be updated
    /// dynamically by the owner", §III-C). Replaces the whole book with
    /// one atomic snapshot swap; in-flight requests finish against the
    /// generation they pinned. With shared shards, the replacement
    /// reaches every replica holding the same shards.
    pub fn set_rules(&self, rules: RuleBook) {
        match &self.rules {
            RuleSource::Owned(cell) => cell.store(rules),
            RuleSource::Shared(shards) => shards.store_all(rules),
        }
    }

    /// Owner-side targeted rule edit (read-copy-update; concurrent edits
    /// are serialized, never lost). With shared shards the edit is
    /// applied to every shard — use [`ShardedRules::update_contract`]
    /// directly for a single-contract edit.
    pub fn update_rules<F: Fn(&mut RuleBook)>(&self, edit: F) {
        match &self.rules {
            RuleSource::Owned(cell) => cell.update(edit),
            RuleSource::Shared(shards) => shards.update_all(edit),
        }
    }

    /// Snapshot of the rules governing `contract` (owner diagnostics;
    /// rules stay private to the TS — clients never see them).
    pub fn rules_snapshot_for(&self, contract: Address) -> RuleBook {
        (*self.rules.load(contract)).clone()
    }

    /// Snapshot of the current rules (owner diagnostics). With shared
    /// shards this reads the shard governing the zero address; prefer
    /// [`TokenService::rules_snapshot_for`] in sharded deployments.
    pub fn rules_snapshot(&self) -> RuleBook {
        self.rules_snapshot_for(Address::default())
    }

    /// Handle one token request at TS-local time `now`.
    pub fn issue(&self, req: &TokenRequest, now: u64) -> Result<Token, IssueError> {
        // 1. Well-formedness (Tab. I).
        req.validate()
            .map_err(|e| IssueError::InvalidRequest(e.to_string()))?;

        // 2. ACR compliance, against a pinned immutable snapshot — no lock
        //    is held while the (potentially large) white/blacklists are
        //    walked, so concurrent issuers never serialize here. In a
        //    replica set the snapshot comes from the shard governing this
        //    contract.
        self.rules
            .load(req.contract)
            .check(req)
            .map_err(IssueError::RuleViolation)?;

        // 3. Validation tools on the local testnet.
        for tool in &self.tools {
            if !tool.applies_to(req.ttype) {
                continue;
            }
            let Some(testnet) = &self.testnet else {
                return Err(IssueError::ToolRejected {
                    tool: tool.name(),
                    reason: "no testnet attached".into(),
                });
            };
            let mut fork = testnet.read().fork();
            tool.validate(req, &mut fork)
                .map_err(|reason| IssueError::ToolRejected {
                    tool: tool.name(),
                    reason,
                })?;
        }

        // 4. Mint: expiry from lifetime, index from the counter when the
        //    one-time property is requested.
        let expire = (now + self.config.token_lifetime_secs) as u32;
        let index = if req.one_time {
            self.next_index()? as i128
        } else {
            NO_INDEX
        };
        let ctx = PayloadContext {
            sender: req.sender,
            contract: req.contract,
            selector: req.selector(),
            calldata: if req.ttype == TokenType::Argument {
                req.calldata.clone()
            } else {
                None
            },
        };
        let digest = signing_digest(req.ttype, expire, index, &ctx);
        Ok(Token {
            ttype: req.ttype,
            expire,
            index,
            signature: self.sk_ts.sign_digest(&digest),
        })
    }

    /// Handle a batch of token requests at TS-local time `now`, returning
    /// per-request outcomes in order (partial-failure semantics: one
    /// denial never poisons its neighbours). This is the server half of
    /// the v2 `issue_batch` op — per-request transport, parsing, and
    /// dispatch overhead is paid once per batch, and on a multi-core box
    /// the signatures themselves (the ~90 µs `k·G` each) are fanned
    /// across the worker pool.
    ///
    /// Results keep request order regardless of which worker signed what.
    /// One-time indexes stay unique (the counter is atomic/replicated) but
    /// their assignment order across a parallel batch is unspecified.
    pub fn issue_batch(
        &self,
        requests: &[TokenRequest],
        now: u64,
    ) -> Vec<Result<Token, IssueError>> {
        if requests.len() >= self.config.parallel_batch_min.max(2) && self.pool.threads() > 1 {
            self.pool
                .scope_map(requests.len(), |i| self.issue(&requests[i], now))
        } else {
            requests.iter().map(|req| self.issue(req, now)).collect()
        }
    }

    fn next_index(&self) -> Result<u64, IssueError> {
        match &self.index_source {
            IndexSource::Local(counter) => Ok(counter.fetch_add(1, Ordering::SeqCst)),
            IndexSource::Replicated(cluster) => {
                cluster.next_index().ok_or(IssueError::CounterUnavailable)
            }
        }
    }

    /// Refresh the attached testnet to a newer fork of the live chain (the
    /// owner periodically re-syncs the simulation environment).
    pub fn sync_testnet(&self, fork: Chain) {
        if let Some(testnet) = &self.testnet {
            *testnet.write() = fork;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ListPolicy;
    use smacs_token::request::ArgBinding;

    fn service() -> TokenService {
        TokenService::new(
            Keypair::from_seed(1000),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        )
    }

    fn contract() -> Address {
        Address::from_low_u64(0xC0)
    }

    fn sender() -> Address {
        Address::from_low_u64(0x5E)
    }

    #[test]
    fn issues_tokens_with_lifetime_expiry() {
        let ts = service();
        let req = TokenRequest::super_token(contract(), sender());
        let tk = ts.issue(&req, 1_000_000).unwrap();
        assert_eq!(tk.ttype, TokenType::Super);
        assert_eq!(tk.expire, 1_003_600);
        assert_eq!(tk.index, NO_INDEX);
    }

    #[test]
    fn one_time_indexes_are_consecutive() {
        // "counter is initialized to 0, whenever a new one-time token is
        // being issued, it is incremented by 1" (§IV-C).
        let ts = service();
        let req = TokenRequest::super_token(contract(), sender()).one_time();
        let indexes: Vec<i128> = (0..5).map(|_| ts.issue(&req, 0).unwrap().index).collect();
        assert_eq!(indexes, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn signature_verifies_against_ts_address() {
        let ts = service();
        let req = TokenRequest::method_token(contract(), sender(), "f(uint256)");
        let tk = ts.issue(&req, 500).unwrap();
        let ctx = PayloadContext {
            sender: sender(),
            contract: contract(),
            selector: req.selector(),
            calldata: None,
        };
        let digest = signing_digest(tk.ttype, tk.expire, tk.index, &ctx);
        assert_eq!(
            smacs_crypto::recover_address(&digest, &tk.signature),
            Some(ts.ts_address())
        );
    }

    #[test]
    fn malformed_requests_rejected() {
        let ts = service();
        let mut req = TokenRequest::method_token(contract(), sender(), "f()");
        req.method = None;
        assert!(matches!(
            ts.issue(&req, 0),
            Err(IssueError::InvalidRequest(_))
        ));
    }

    #[test]
    fn rules_are_enforced_and_dynamically_updatable() {
        let ts = service();
        // Lock supers down to a whitelist excluding our sender.
        ts.update_rules(|book| {
            book.rules_mut(TokenType::Super).sender = Some(ListPolicy::deny_all());
        });
        let req = TokenRequest::super_token(contract(), sender());
        assert!(matches!(
            ts.issue(&req, 0),
            Err(IssueError::RuleViolation(RuleViolation::SenderRejected(_)))
        ));
        // Owner whitelists the sender at runtime — no contract change.
        ts.update_rules(|book| {
            if let Some(policy) = &mut book.rules_mut(TokenType::Super).sender {
                policy.insert(sender().to_hex());
            }
        });
        assert!(ts.issue(&req, 0).is_ok());
    }

    #[test]
    fn tools_veto_argument_tokens() {
        struct VetoTool;
        impl ValidationTool for VetoTool {
            fn name(&self) -> &'static str {
                "veto"
            }
            fn validate(&self, _req: &TokenRequest, _testnet: &mut Chain) -> Result<(), String> {
                Err("simulated attack detected".into())
            }
        }
        let ts = service()
            .with_testnet(Chain::default_chain().fork())
            .with_tool(Arc::new(VetoTool));
        // Super tokens unaffected (tool applies to argument tokens only).
        assert!(ts
            .issue(&TokenRequest::super_token(contract(), sender()), 0)
            .is_ok());
        // Argument tokens vetoed.
        let req = TokenRequest::argument_token(
            contract(),
            sender(),
            "f(uint256)",
            vec![ArgBinding {
                name: "x".into(),
                value: "1".into(),
            }],
            vec![1, 2, 3, 4],
        );
        assert!(matches!(
            ts.issue(&req, 0),
            Err(IssueError::ToolRejected { tool: "veto", .. })
        ));
    }

    #[test]
    fn tool_without_testnet_fails_closed() {
        struct NeedsNet;
        impl ValidationTool for NeedsNet {
            fn name(&self) -> &'static str {
                "needs-net"
            }
            fn validate(&self, _req: &TokenRequest, _testnet: &mut Chain) -> Result<(), String> {
                Ok(())
            }
        }
        let ts = service().with_tool(Arc::new(NeedsNet));
        let req = TokenRequest::argument_token(contract(), sender(), "f()", vec![], vec![1]);
        assert!(matches!(
            ts.issue(&req, 0),
            Err(IssueError::ToolRejected { .. })
        ));
    }

    #[test]
    fn parallel_batch_preserves_order_and_partial_failure() {
        let ts = service().with_pool(WorkerPool::new(4, 64));
        let requests: Vec<TokenRequest> = (0..32)
            .map(|i| {
                let mut req = TokenRequest::method_token(
                    contract(),
                    Address::from_low_u64(100 + i),
                    "f(uint256)",
                );
                if i % 3 == 0 {
                    req.method = None; // malformed: must fail in place
                }
                req
            })
            .collect();
        let results = ts.issue_batch(&requests, 7_000);
        assert_eq!(results.len(), 32);
        for (i, result) in results.iter().enumerate() {
            if i % 3 == 0 {
                assert!(
                    matches!(result, Err(IssueError::InvalidRequest(_))),
                    "slot {i}: {result:?}"
                );
            } else {
                let token = result.as_ref().expect("valid request minted");
                assert_eq!(token.expire, 7_000 + 3_600);
                // The signature binds the *matching* request's payload —
                // parallel fan-out must not cross wires between slots.
                let ctx = PayloadContext {
                    sender: requests[i].sender,
                    contract: contract(),
                    selector: requests[i].selector(),
                    calldata: None,
                };
                let digest = signing_digest(token.ttype, token.expire, token.index, &ctx);
                assert_eq!(
                    smacs_crypto::recover_address(&digest, &token.signature),
                    Some(ts.ts_address()),
                    "slot {i} signed someone else's payload"
                );
            }
        }
    }

    #[test]
    fn parallel_batch_one_time_indexes_stay_unique() {
        let ts = service().with_pool(WorkerPool::new(4, 64));
        let requests: Vec<TokenRequest> = (0..64)
            .map(|i| TokenRequest::super_token(contract(), Address::from_low_u64(1 + i)).one_time())
            .collect();
        let results = ts.issue_batch(&requests, 0);
        let mut indexes: Vec<i128> = results
            .iter()
            .map(|r| r.as_ref().expect("minted").index)
            .collect();
        indexes.sort_unstable();
        indexes.dedup();
        assert_eq!(indexes.len(), 64, "one-time indexes must never repeat");
    }

    #[test]
    fn small_batches_stay_sequential_and_ordered() {
        // Below the parallel threshold the counter allocates in request
        // order — pin that so the fast path stays deterministic.
        let ts = service();
        let requests: Vec<TokenRequest> = (0..4)
            .map(|i| TokenRequest::super_token(contract(), Address::from_low_u64(1 + i)).one_time())
            .collect();
        let indexes: Vec<i128> = ts
            .issue_batch(&requests, 0)
            .iter()
            .map(|r| r.as_ref().unwrap().index)
            .collect();
        assert_eq!(indexes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rules_snapshot_is_a_copy() {
        let ts = service();
        let snap = ts.rules_snapshot();
        ts.set_rules(RuleBook::deny_all());
        // The earlier snapshot is unaffected.
        assert_ne!(snap, ts.rules_snapshot());
    }
}
