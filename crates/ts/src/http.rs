//! A minimal threaded HTTP/1.1 server and client for the [`crate::front`]
//! protocols over TCP — the prototype's stand-in for the paper's
//! "HTTPS-enabled web interface".
//!
//! The server speaks **keep-alive** HTTP/1.1: a connection serves any
//! number of `POST` requests until the client closes it (or sends
//! `Connection: close`), so batch clients aren't throttled by per-request
//! connection setup. The accept loop **blocks** in `accept()` — no polling
//! sleep — and is unblocked at shutdown by a self-connection. Built on
//! `std::net` only; adequate for loopback benchmarking and integration
//! tests, not hardened for the open internet (the paper's prototype ran
//! Node.js on localhost, same scope).
//!
//! [`HttpClient`] is the wire implementation of [`TsApi`]: protocol-v2
//! envelopes over one persistent connection, with a single transparent
//! reconnect when a kept-alive connection has gone stale. The v1-era
//! one-shot helper [`post_json`] remains for legacy single-request
//! clients (and the back-compat tests).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use smacs_primitives::json::{self, FromJson, Json, ToJson};
use smacs_primitives::Address;
use smacs_token::{Token, TokenRequest};

use crate::api::{
    ApiError, BatchRequestBody, BatchResponseBody, DiscoverBody, DiscoverResponseBody, ErrorCode,
    IssueBody, RequestEnvelope, ResponseEnvelope, SetRulesBody, TsApi, PROTOCOL_VERSION,
};
use crate::discovery::ContractMetadata;
use crate::front::{decode_token_hex, FrontEnd};
use crate::rules::RuleBook;

/// Request bodies above this size are refused (HTTP 413). Generous: a
/// full 256-request argument-token batch with kilobyte calldata fits.
const MAX_BODY_BYTES: usize = 8 << 20;

/// A running HTTP front-end server.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Start serving `front` on an OS-assigned loopback port.
    pub fn start(front: Arc<FrontEnd>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            // Blocking accept: zero idle CPU, zero accept-latency jitter.
            // `HttpServer::shutdown` raises the flag and then connects to
            // this listener, so the accept below returns and sees the flag.
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutdown_flag.load(Ordering::SeqCst) {
                            break;
                        }
                        let front = front.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, &front);
                        });
                    }
                    Err(_) => {
                        if shutdown_flag.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure (EMFILE etc.): back off
                        // briefly so a persistent error (fd exhaustion)
                        // cannot pin a core in a tight retry loop.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                }
            }
        });
        Ok(HttpServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (`127.0.0.1:port`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service URL for [`crate::discovery`] metadata.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call; a failed connect means the listener is
        // already gone, which is fine.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Stop accepting connections and join the accept loop. Connections
    /// already being served drain on their own threads.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Headers both ends care about: body length (`None` when absent *or*
/// unparseable — callers must reject rather than guess, or the keep-alive
/// stream desynchronizes) and connection intent.
struct Headers {
    content_length: Option<usize>,
    close: bool,
}

/// Read header lines up to the blank separator. One parser for the server
/// and the client so the two ends can never disagree on framing.
fn read_headers(reader: &mut BufReader<TcpStream>) -> std::io::Result<Headers> {
    let mut headers = Headers {
        content_length: None,
        close: false,
    };
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            return Ok(headers);
        }
        if let Some(value) = line.strip_prefix("content-length:") {
            headers.content_length = value.trim().parse().ok();
        }
        if let Some(value) = line.strip_prefix("connection:") {
            headers.close = value.trim() == "close";
        }
    }
}

/// Serve one connection: any number of `POST` requests until EOF or an
/// explicit `Connection: close`.
fn serve_connection(mut stream: TcpStream, front: &FrontEnd) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);

    loop {
        // Request line; 0 bytes = client closed the connection.
        let mut request_line = String::new();
        if reader.read_line(&mut request_line)? == 0 {
            return Ok(());
        }
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let _path = parts.next().unwrap_or("/");

        let headers = read_headers(&mut reader)?;
        let client_close = headers.close;

        if method != "POST" {
            return write_response(
                &mut stream,
                405,
                true,
                r#"{"status":"error","message":"POST only"}"#,
            );
        }
        // A POST without a parseable Content-Length cannot be framed:
        // refuse and close rather than guess (guessing would leave body
        // bytes in the stream and desynchronize later keep-alive
        // requests).
        let Some(content_length) = headers.content_length else {
            return write_response(
                &mut stream,
                400,
                true,
                r#"{"status":"error","message":"missing or invalid Content-Length"}"#,
            );
        };
        // Oversized bodies are refused with the connection closed, for the
        // same framing reason.
        if content_length > MAX_BODY_BYTES {
            return write_response(
                &mut stream,
                413,
                true,
                r#"{"status":"error","message":"body too large"}"#,
            );
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        let body = String::from_utf8_lossy(&body);
        let response = front.handle_json(&body);
        write_response(&mut stream, 200, client_close, &response)?;
        if client_close {
            return Ok(());
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    code: u16,
    close: bool,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        413 => "Payload Too Large",
        _ => "Method Not Allowed",
    };
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Read one HTTP response (status line, headers, content-length body) off
/// `reader`, returning the body.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut status = String::new();
    if reader.read_line(&mut status)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    // An unframeable response poisons the whole persistent connection, so
    // surface it as an io::Error — round_trip drops the connection on any
    // io::Error, forcing a clean reconnect.
    let Some(content_length) = read_headers(reader)?.content_length else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response missing a parseable Content-Length",
        ));
    };
    if content_length > MAX_BODY_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(String::from_utf8_lossy(&body).into_owned())
}

/// The wire implementation of [`TsApi`]: protocol-v2 envelopes over one
/// keep-alive HTTP connection.
///
/// The connection is lazy (opened on first use) and persistent; if a
/// kept-alive connection has gone stale (server restart, idle close), one
/// transparent reconnect is attempted before the error surfaces as
/// [`ErrorCode::Transport`].
pub struct HttpClient {
    addr: SocketAddr,
    conn: parking_lot::Mutex<Option<BufReader<TcpStream>>>,
}

impl HttpClient {
    /// A client for the server at `addr`. No I/O happens until the first
    /// call.
    pub fn connect(addr: SocketAddr) -> HttpClient {
        HttpClient {
            addr,
            conn: parking_lot::Mutex::new(None),
        }
    }

    /// A client from a discovery URL (`http://ip:port`, as published in
    /// [`ContractMetadata::token_service_url`]).
    pub fn from_url(url: &str) -> Option<HttpClient> {
        let addr = url.strip_prefix("http://")?.parse().ok()?;
        Some(HttpClient::connect(addr))
    }

    /// The server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn round_trip_once(
        &self,
        conn: &mut Option<BufReader<TcpStream>>,
        body: &str,
    ) -> std::io::Result<String> {
        if conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            *conn = Some(BufReader::new(stream));
        }
        let reader = conn.as_mut().expect("connection just ensured");
        let stream = reader.get_mut();
        write!(
            stream,
            "POST / HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        )?;
        stream.flush()?;
        read_response(reader)
    }

    /// One keep-alive round trip. A stale kept-alive connection is retried
    /// on a fresh one only for `idempotent` operations: a lost *response*
    /// is indistinguishable from a lost *request*, and replaying an
    /// issuance could mint twice (burning one-time counter indexes). A
    /// failed non-idempotent call resets the connection and surfaces
    /// [`ErrorCode::Transport`]; the caller decides whether to re-send.
    fn round_trip(&self, body: &str, idempotent: bool) -> Result<String, ApiError> {
        let mut conn = self.conn.lock();
        let had_connection = conn.is_some();
        match self.round_trip_once(&mut conn, body) {
            Ok(response) => Ok(response),
            Err(first) => {
                *conn = None;
                if !had_connection || !idempotent {
                    // Fresh connection already failed (retry won't help),
                    // or replay is unsafe for this op.
                    return Err(ApiError::transport(first));
                }
                self.round_trip_once(&mut conn, body).map_err(|e| {
                    *conn = None;
                    ApiError::transport(e)
                })
            }
        }
    }

    /// Send one v2 op and return the success body (or the decoded error).
    fn call(&self, op: &str, body: Option<Json>) -> Result<Json, ApiError> {
        let envelope = RequestEnvelope {
            v: PROTOCOL_VERSION,
            op: op.into(),
            body,
        };
        // Replaying `set_rules` re-applies the same whole-book replacement;
        // `discover`/`ping` are reads. Issuance is the non-idempotent pair.
        let idempotent = matches!(op, "ping" | "discover" | "set_rules");
        let text = self.round_trip(&json::to_string(&envelope), idempotent)?;
        let response = ResponseEnvelope::from_json(
            &Json::parse(&text)
                .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad response: {e}")))?,
        )
        .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad response envelope: {e}")))?;
        if response.ok {
            Ok(response.body.unwrap_or(Json::Null))
        } else {
            Err(response
                .error
                .map(ApiError::from)
                .unwrap_or_else(|| ApiError::new(ErrorCode::Internal, "error without detail")))
        }
    }
}

impl TsApi for HttpClient {
    fn issue(&self, request: &TokenRequest) -> Result<Token, ApiError> {
        let body = IssueBody::from_json(&self.call("issue", Some(request.to_json()))?)
            .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad issue body: {e}")))?;
        decode_token_hex(&body.token_hex)
            .ok_or_else(|| ApiError::new(ErrorCode::Internal, "undecodable token_hex"))
    }

    fn issue_batch(
        &self,
        requests: &[TokenRequest],
    ) -> Result<Vec<Result<Token, ApiError>>, ApiError> {
        let body = BatchRequestBody {
            requests: requests.to_vec(),
        };
        let response =
            BatchResponseBody::from_json(&self.call("issue_batch", Some(body.to_json()))?)
                .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad batch body: {e}")))?;
        Ok(response
            .results
            .into_iter()
            .map(|item| item.into_result())
            .collect())
    }

    fn set_rules(&self, owner_secret: &str, rules: RuleBook) -> Result<(), ApiError> {
        let body = SetRulesBody {
            owner_secret: owner_secret.into(),
            rules,
        };
        self.call("set_rules", Some(body.to_json())).map(|_| ())
    }

    fn discover(&self, contract: Address) -> Result<Option<ContractMetadata>, ApiError> {
        let body = DiscoverResponseBody::from_json(
            &self.call("discover", Some(DiscoverBody { contract }.to_json()))?,
        )
        .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad discover body: {e}")))?;
        Ok(body.metadata)
    }

    fn ping(&self) -> Result<(), ApiError> {
        self.call("ping", None).map(|_| ())
    }
}

/// A tiny blocking one-shot client (v1 era): one `POST /` per connection,
/// `Connection: close`. Kept for legacy clients and the back-compat tests.
pub fn post_json(addr: SocketAddr, body: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "POST / HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let body_start = response
        .find("\r\n\r\n")
        .map(|i| i + 4)
        .unwrap_or(response.len());
    Ok(response[body_start..].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::{decode_token_hex, FrontRequest, FrontResponse};
    use crate::rules::RuleBook;
    use crate::service::{TokenService, TokenServiceConfig};
    use smacs_crypto::Keypair;
    use smacs_primitives::Address;
    use smacs_token::TokenRequest;

    fn running_server() -> HttpServer {
        let service = TokenService::new(
            Keypair::from_seed(1),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        HttpServer::start(Arc::new(FrontEnd::new(service, "secret", 0))).unwrap()
    }

    fn request(low: u64) -> TokenRequest {
        TokenRequest::super_token(Address::from_low_u64(1), Address::from_low_u64(low))
    }

    #[test]
    fn token_issuance_over_http_v1() {
        let server = running_server();
        let request = FrontRequest::IssueToken {
            request: request(2),
        };
        let body = smacs_primitives::json::to_string(&request);
        let response = post_json(server.addr(), &body).unwrap();
        let parsed: FrontResponse = smacs_primitives::json::from_str(&response).unwrap();
        let FrontResponse::Token { token_hex } = parsed else {
            panic!("expected token, got {parsed:?}");
        };
        assert!(decode_token_hex(&token_hex).is_some());
        server.shutdown();
    }

    #[test]
    fn token_issuance_over_http_v2_client() {
        let server = running_server();
        let client = HttpClient::connect(server.addr());
        client.ping().unwrap();
        let token = client.issue(&request(2)).unwrap();
        assert_eq!(token.expire, 3_600);
        // Batch over the same kept-alive connection.
        let results = client.issue_batch(&[request(3), request(4)]).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
        server.shutdown();
    }

    #[test]
    fn http_client_surfaces_transport_errors_after_shutdown() {
        let server = running_server();
        let established = HttpClient::connect(server.addr());
        established.ping().unwrap();
        let addr = server.addr();
        server.shutdown();
        // Established keep-alive connections drain gracefully: the serving
        // thread outlives the accept loop.
        established.ping().unwrap();
        // But new connections are refused and must surface as a transport
        // error, not a hang.
        let fresh = HttpClient::connect(addr);
        let err = fresh.issue(&request(2)).unwrap_err();
        assert_eq!(err.code, ErrorCode::Transport);
    }

    #[test]
    fn concurrent_clients() {
        let server = running_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = HttpClient::connect(addr);
                    client.issue(&request(100 + i)).is_ok()
                })
            })
            .collect();
        for handle in handles {
            assert!(handle.join().unwrap());
        }
        server.shutdown();
    }

    #[test]
    fn non_post_is_rejected() {
        let server = running_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_the_accept_loop_promptly() {
        let server = running_server();
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "shutdown took {:?}",
            start.elapsed()
        );
    }
}
