//! A pooled HTTP/1.1 server and keep-alive client for the [`crate::front`]
//! protocols over TCP — the prototype's stand-in for the paper's
//! "HTTPS-enabled web interface".
//!
//! # Threading model
//!
//! The server is **readiness-driven**: one reactor thread
//! ([`crate::reactor`], epoll via the in-repo `libc` shim) multiplexes
//! the accept listener and *every* parked keep-alive socket, and a
//! **fixed worker pool** ([`smacs_primitives::pool`]) does all the actual
//! serving — so concurrent keep-alive clients cost `O(workers)` threads
//! and an *idle* connection costs zero CPU (one registered fd, no sweep):
//!
//! - the **reactor** (one thread) blocks in `epoll_wait` until a parked
//!   connection has bytes (or closed) or the listener has a pending
//!   accept burst. Readable connections are dispatched to the pool's
//!   **high-priority lane**; the accept burst becomes one **low-priority
//!   lane** drain job — under a connection storm, signing and request
//!   serving always cut ahead of new accepts, so `issue_batch` latency
//!   holds. A full high lane keeps the ready connection in the reactor's
//!   retry backlog (the bytes wait in the socket; nothing is dropped).
//! - **pool workers** serve a connection's requests back-to-back while
//!   data keeps arriving (a short [`HttpServerConfig::keepalive_grace`]
//!   covers the client's turnaround), then *park* the idle connection in
//!   the reactor and move on — a worker is only ever occupied by a
//!   connection that is actually talking. The **lifecycle of a parked
//!   connection** is: park (epoll-register, one-shot) → readable event →
//!   high-lane job → served back-to-back → re-park; or reaped on peer
//!   close / [`HttpServerConfig::idle_timeout`] expiry, both detected by
//!   the same readiness event, never by polling.
//! - the **accept-drain job** (low lane) accepts until the backlog is
//!   empty, parking each new connection so its first request arrives as
//!   a readiness event; beyond [`HttpServerConfig::max_connections`] it
//!   answers a fast `503` with a v2 `internal` error instead of growing
//!   without bound, then re-arms the listener registration.
//!
//! Batch issuance fans its signing across the same pool (see
//! [`crate::service::TokenService::issue_batch`]); pass a shared pool via
//! [`HttpServerConfig::pool`] to run connections and signing on one set of
//! workers — the fan-out's caller-participation makes that safe even when
//! every worker is busy.
//!
//! [`HttpServer::shutdown`] is deterministic: it wakes the reactor
//! through its eventfd (no self-connect hack), which closes the listener
//! and every parked connection and exits; in-flight requests finish and
//! their workers observe the flag; every thread is joined.
//!
//! [`HttpClient`] is the wire implementation of [`TsApi`]: protocol-v2
//! envelopes over one persistent connection. Before reusing a pooled
//! connection it probes for staleness (server restart, idle-timeout
//! close) and transparently reconnects once, so non-idempotent calls
//! never burn a round on a connection the server already abandoned; a
//! failure *after* the request was sent is only retried for idempotent
//! ops. The v1-era one-shot helper [`post_json`] remains for legacy
//! single-request clients (and the back-compat tests).

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use smacs_primitives::json::{self, FromJson, Json, ToJson};
use smacs_primitives::pool::Priority;
use smacs_primitives::{Address, WorkerPool};
use smacs_token::{Token, TokenRequest};

use crate::api::{
    ApiError, BatchRequestBody, BatchResponseBody, DiscoverBody, DiscoverResponseBody, ErrorCode,
    IssueBody, RequestEnvelope, ResponseEnvelope, SetRulesBody, TsApi, PROTOCOL_VERSION,
};
use crate::discovery::ContractMetadata;
use crate::fault::FaultPlan;
use crate::front::{decode_token_hex, EndpointScope, FrontEnd};
use crate::reactor::{Reactor, ReactorClient};
use crate::rules::RuleBook;

/// Request bodies above this size are refused (HTTP 413). Generous: a
/// full 256-request argument-token batch with kilobyte calldata fits.
const MAX_BODY_BYTES: usize = 8 << 20;

/// Ceiling on requests one worker serves on a single connection before
/// parking it anyway — keeps one firehose client from starving the queue.
const TURN_QUOTA: usize = 128;

/// Socket timeout for reading a request once its first byte arrived and
/// for writing responses; a peer that stalls longer loses the connection
/// (bounds how long a worker can be pinned by one slow client).
const REQUEST_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// The body answered when [`HttpServerConfig::max_connections`] is
/// reached: a protocol-v2 error envelope a [`HttpClient`] decodes into
/// [`ErrorCode::Internal`].
const OVERLOADED_BODY: &str =
    r#"{"v":2,"ok":false,"error":{"code":"internal","message":"server overloaded"}}"#;

/// The body answered for a fault-injected service failure ([`FaultPlan::
/// fail_requests`]): an HTTP 500 whose envelope decodes to `internal`.
const FAULTED_BODY: &str =
    r#"{"v":2,"ok":false,"error":{"code":"internal","message":"injected service fault"}}"#;

/// Tuning knobs for [`HttpServer::start_with`].
///
/// Prefer [`HttpServerConfig::builder`]; the struct-literal form (with
/// `..Default::default()`) remains supported for poller-era callers.
#[derive(Clone)]
pub struct HttpServerConfig {
    /// Connection/signing worker threads. Defaults to
    /// `2 × available_parallelism` (min 2): connection turns block on
    /// socket I/O, so running more workers than cores keeps the CPU busy.
    /// Ignored when [`HttpServerConfig::pool`] supplies a pool.
    pub workers: usize,
    /// Bound on the pool's **high-priority lane** (request-serving and
    /// signing jobs). When full, ready connections wait in the reactor's
    /// retry backlog — their bytes sit in the socket; nothing is lost.
    /// Ignored when [`HttpServerConfig::pool`] supplies a pool.
    pub queue_capacity: usize,
    /// **Ignored.** The poller-era sweep cadence; the reactor is
    /// readiness-driven (epoll) and never sweeps. Kept so poller-era
    /// struct literals keep compiling unchanged.
    pub poll_interval: Duration,
    /// How long a worker waits for the next pipelined request before
    /// parking a connection. Loopback turnarounds are microseconds, so a
    /// short grace keeps hot connections on their worker.
    pub keepalive_grace: Duration,
    /// Parked connections idle longer than this are closed (`None`: kept
    /// forever). Enforced by the reactor on a coarse timer (a quarter of
    /// the limit), not per-connection polling.
    pub idle_timeout: Option<Duration>,
    /// Share an existing pool (e.g. the one the wrapped `TokenService`
    /// fans batch signing across) instead of creating a server-owned one.
    /// A shared pool is *not* shut down when the server stops.
    pub pool: Option<Arc<WorkerPool>>,
    /// Bind to this exact address instead of an OS-assigned loopback port.
    /// [`crate::cluster::ReplicaSet`] uses it to restart a recovered
    /// replica on the address clients already know.
    pub bind: Option<SocketAddr>,
    /// Transport/service fault injection for availability tests. `None`
    /// (the default) serves faithfully.
    pub faults: Option<Arc<FaultPlan>>,
    /// Which op families this listener dispatches. The default
    /// ([`EndpointScope::Public`]) refuses the replica-internal
    /// `counter_*` vote ops; only a dedicated vote endpoint
    /// ([`crate::cluster::ReplicaSet`]'s counter listeners) runs with
    /// [`EndpointScope::Vote`].
    pub scope: EndpointScope,
    /// Ceiling on concurrently open (parked + in-flight) connections.
    /// Beyond it, new accepts are answered with a fast 503 and closed —
    /// bounding fds and memory instead of growing without limit.
    pub max_connections: usize,
    /// Kernel listen backlog. A connection storm queues here (absorbed at
    /// kernel cost, drained at low priority) instead of seeing resets.
    pub accept_backlog: usize,
    /// Bound on the pool's **low-priority lane** (accept-drain jobs).
    /// Ignored when [`HttpServerConfig::pool`] supplies a pool.
    pub accept_queue_capacity: usize,
}

impl Default for HttpServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        HttpServerConfig {
            workers: (2 * cores).max(2),
            queue_capacity: 1024,
            poll_interval: Duration::from_millis(1),
            keepalive_grace: Duration::from_millis(1),
            idle_timeout: None,
            pool: None,
            bind: None,
            faults: None,
            scope: EndpointScope::Public,
            max_connections: 65_536,
            accept_backlog: 1_024,
            accept_queue_capacity: 64,
        }
    }
}

impl HttpServerConfig {
    /// Fluent construction with reactor-native knobs:
    /// `HttpServerConfig::builder().workers(4).max_connections(10_000).build()`.
    pub fn builder() -> HttpServerConfigBuilder {
        HttpServerConfigBuilder {
            config: HttpServerConfig::default(),
        }
    }
}

/// Builder for [`HttpServerConfig`] — see the field docs there.
#[derive(Clone)]
pub struct HttpServerConfigBuilder {
    config: HttpServerConfig,
}

impl HttpServerConfigBuilder {
    /// Worker threads (ignored when a shared [`Self::pool`] is supplied).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// High-priority (request/signing) lane capacity.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config.queue_capacity = n;
        self
    }

    /// Low-priority (accept-drain) lane capacity.
    pub fn accept_queue_capacity(mut self, n: usize) -> Self {
        self.config.accept_queue_capacity = n;
        self
    }

    /// Ceiling on concurrently open connections (503 beyond it).
    pub fn max_connections(mut self, n: usize) -> Self {
        self.config.max_connections = n;
        self
    }

    /// Kernel listen backlog depth.
    pub fn accept_backlog(mut self, n: usize) -> Self {
        self.config.accept_backlog = n;
        self
    }

    /// Grace a worker waits for the next pipelined request before parking.
    pub fn keepalive_grace(mut self, grace: Duration) -> Self {
        self.config.keepalive_grace = grace;
        self
    }

    /// Close parked connections idle longer than `limit`.
    pub fn idle_timeout(mut self, limit: Duration) -> Self {
        self.config.idle_timeout = Some(limit);
        self
    }

    /// Serve connections on an existing shared pool.
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.config.pool = Some(pool);
        self
    }

    /// Bind to this exact address.
    pub fn bind(mut self, addr: SocketAddr) -> Self {
        self.config.bind = Some(addr);
        self
    }

    /// Arm transport/service fault injection.
    pub fn faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.config.faults = Some(faults);
        self
    }

    /// Which op families this listener dispatches.
    pub fn scope(mut self, scope: EndpointScope) -> Self {
        self.config.scope = scope;
        self
    }

    /// Finish into an [`HttpServerConfig`].
    pub fn build(self) -> HttpServerConfig {
        self.config
    }
}

/// Decrements the server's open-connection count when the connection
/// drops (however it drops: served close, reaped idle, shutdown).
struct ConnCount {
    open: Arc<AtomicUsize>,
    total_after_increment: usize,
}

impl ConnCount {
    fn track(open: Arc<AtomicUsize>) -> ConnCount {
        let total_after_increment = open.fetch_add(1, Ordering::SeqCst) + 1;
        ConnCount {
            open,
            total_after_increment,
        }
    }
}

impl Drop for ConnCount {
    fn drop(&mut self) {
        self.open.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One keep-alive connection: the buffered reader owns the stream (writes
/// go through `reader.get_mut()`), so buffered-but-unserved pipelined
/// bytes travel with the connection when it parks.
struct Conn {
    reader: BufReader<TcpStream>,
    _count: ConnCount,
}

impl Conn {
    fn new(stream: TcpStream, count: ConnCount) -> std::io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(REQUEST_IO_TIMEOUT))?;
        Ok(Conn {
            reader: BufReader::new(stream),
            _count: count,
        })
    }

    fn stream(&mut self) -> &mut TcpStream {
        self.reader.get_mut()
    }
}

impl AsRawFd for Conn {
    fn as_raw_fd(&self) -> RawFd {
        self.reader.get_ref().as_raw_fd()
    }
}

/// State shared by the reactor thread and connection jobs.
struct ServerShared {
    front: Arc<FrontEnd>,
    pool: Arc<WorkerPool>,
    reactor: Arc<Reactor<Conn>>,
    shutdown: AtomicBool,
    keepalive_grace: Duration,
    faults: Option<Arc<FaultPlan>>,
    scope: EndpointScope,
    max_connections: usize,
    open_connections: Arc<AtomicUsize>,
    /// Self-reference so reactor callbacks can hand `Arc` clones to jobs.
    me: Weak<ServerShared>,
}

impl ReactorClient<Conn> for ServerShared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// A parked connection became readable (or closed): dispatch a serve
    /// turn on the pool's high-priority lane. On a full lane the
    /// connection goes back to the reactor's retry backlog — data waits
    /// in the socket, no request is dropped.
    fn on_ready(&self, conn: Conn) -> Result<(), Conn> {
        if self.shutting_down() {
            return Ok(()); // drop: shutdown closes keep-alive connections
        }
        let Some(me) = self.me.upgrade() else {
            return Ok(());
        };
        // The connection rides in a shared slot so a refused submission
        // can reclaim it (a consumed closure can't give it back).
        let slot = Arc::new(Mutex::new(Some(conn)));
        let job_slot = slot.clone();
        let submitted = self.pool.try_execute(move || {
            let conn = job_slot.lock().expect("conn slot").take();
            if let Some(conn) = conn {
                serve_turn(&me, conn);
            }
        });
        match submitted {
            Ok(()) => Ok(()),
            Err(_) => match slot.lock().expect("conn slot").take() {
                Some(conn) => Err(conn),
                None => Ok(()),
            },
        }
    }

    /// The listener has a pending burst: queue one low-priority drain job.
    fn on_accept_ready(&self) -> bool {
        let Some(me) = self.me.upgrade() else {
            return true;
        };
        self.pool
            .try_execute_prio(Priority::Low, move || accept_drain(&me))
            .is_ok()
    }
}

/// A running HTTP front-end server.
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    owns_pool: bool,
    reactor_handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Start serving `front` on an OS-assigned loopback port with default
    /// pooling.
    pub fn start(front: Arc<FrontEnd>) -> std::io::Result<HttpServer> {
        HttpServer::start_with(front, HttpServerConfig::default())
    }

    /// Start serving `front` with explicit reactor/pool tuning.
    pub fn start_with(
        front: Arc<FrontEnd>,
        config: HttpServerConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = match config.bind {
            Some(addr) => TcpListener::bind(addr)?,
            None => TcpListener::bind("127.0.0.1:0")?,
        };
        let addr = listener.local_addr()?;
        // Deepen the kernel accept backlog past std's default so a
        // connection storm queues (drained at low priority) instead of
        // seeing resets. Re-calling listen(2) on a listening socket only
        // updates the backlog.
        unsafe {
            libc::listen(
                listener.as_raw_fd(),
                config.accept_backlog.min(i32::MAX as usize) as libc::c_int,
            );
        }
        let owns_pool = config.pool.is_none();
        let pool = config.pool.unwrap_or_else(|| {
            WorkerPool::with_lanes(
                config.workers,
                config.queue_capacity,
                config.accept_queue_capacity,
            )
        });
        let reactor = Arc::new(Reactor::new(listener, config.idle_timeout)?);
        let shared = Arc::new_cyclic(|me| ServerShared {
            front,
            pool,
            reactor,
            shutdown: AtomicBool::new(false),
            keepalive_grace: config.keepalive_grace,
            faults: config.faults,
            scope: config.scope,
            max_connections: config.max_connections.max(1),
            open_connections: Arc::new(AtomicUsize::new(0)),
            me: me.clone(),
        });

        let run_shared = shared.clone();
        let reactor_handle = std::thread::Builder::new()
            .name("smacs-http-reactor".into())
            .spawn(move || run_shared.reactor.run(&*run_shared))?;

        Ok(HttpServer {
            addr,
            shared,
            owns_pool,
            reactor_handle: Some(reactor_handle),
        })
    }

    /// The bound address (`127.0.0.1:port`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service URL for [`crate::discovery`] metadata.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The worker pool serving connections (shared with batch signing
    /// when configured so).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.shared.pool
    }

    /// Connections currently parked idle (diagnostics for probes/tests).
    pub fn parked_connections(&self) -> usize {
        self.shared.reactor.parked_len()
    }

    /// Connections currently open — parked plus in-flight (diagnostics).
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections.load(Ordering::SeqCst)
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the (possibly indefinitely blocked) epoll wait through the
        // reactor's eventfd; it closes the listener and every parked
        // connection, then exits.
        self.shared.reactor.wake();
        if let Some(handle) = self.reactor_handle.take() {
            let _ = handle.join();
        }
        if self.owns_pool {
            // In-flight connection turns finish their current request and
            // observe the shutdown flag; queued-but-unstarted ones are
            // dropped (their connections close).
            self.shared.pool.shutdown();
        }
    }

    /// Graceful shutdown, deterministic: wake the reactor (eventfd), which
    /// closes the listener and parked (idle) keep-alive connections and
    /// exits; finish in-flight requests; join the reactor thread and
    /// (when server-owned) the worker pool.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One low-priority pool job: drain the kernel accept backlog, parking
/// each new connection in the reactor (its first request then arrives as
/// a readiness event), and re-arm the listener registration when empty.
/// Running at low priority is the storm defence: queued request/signing
/// jobs always cut ahead of taking on new connections.
fn accept_drain(shared: &Arc<ServerShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match shared.reactor.try_accept() {
            Ok((stream, _)) => {
                let count = ConnCount::track(shared.open_connections.clone());
                if count.total_after_increment > shared.max_connections {
                    // Fast, decodable refusal; dropping `count` (with the
                    // stream) keeps the book balanced.
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(REQUEST_IO_TIMEOUT));
                    let _ = write_response(&mut stream, 503, true, OVERLOADED_BODY);
                    continue;
                }
                let Ok(conn) = Conn::new(stream, count) else {
                    continue;
                };
                let _ = shared.reactor.park(conn); // failure drops (closes)
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => {
                // Listener closed (shutdown) or transient failure (EMFILE
                // etc.): back off briefly so the level-triggered re-arm
                // below cannot spin a worker hot on a persistent error.
                std::thread::sleep(Duration::from_millis(10));
                break;
            }
        }
    }
    shared.reactor.rearm_accept();
}

/// What a readiness probe on an idle connection found.
enum Readiness {
    /// Bytes are waiting to be read.
    Ready,
    /// Still connected, nothing pending.
    Idle,
    /// Peer closed (or the socket errored).
    Closed,
}

/// Blocking peek bounded by `grace`: catches the next pipelined request
/// without a park/poll round trip when the client is actively talking.
fn await_data(conn: &mut Conn, grace: Duration) -> Readiness {
    if !conn.reader.buffer().is_empty() {
        return Readiness::Ready;
    }
    let stream = conn.stream();
    if stream
        .set_read_timeout(Some(grace.max(Duration::from_micros(1))))
        .is_err()
    {
        return Readiness::Closed;
    }
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(0) => Readiness::Closed,
        Ok(_) => Readiness::Ready,
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            Readiness::Idle
        }
        Err(_) => Readiness::Closed,
    }
}

/// One pool job: serve requests on `conn` while data keeps arriving, then
/// park it in the reactor (or drop it on close/error/shutdown).
fn serve_turn(shared: &Arc<ServerShared>, mut conn: Conn) {
    for _ in 0..TURN_QUOTA {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drop: shutdown closes keep-alive connections
        }
        match await_data(&mut conn, shared.keepalive_grace) {
            Readiness::Ready => {}
            Readiness::Idle => {
                park(shared, conn);
                return;
            }
            Readiness::Closed => return,
        }
        match serve_one_request(&mut conn, shared) {
            Ok(false) => continue,
            Ok(true) | Err(_) => return, // explicit close or broken pipe
        }
    }
    // Quota exhausted: hand the still-hot connection back through the
    // reactor (re-queued behind whoever else is waiting) so one firehose
    // client cannot starve everyone else.
    shared.reactor.hand_back(conn);
}

fn park(shared: &ServerShared, conn: Conn) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return; // drop: shutdown closes keep-alive connections
    }
    // Buffered pipelined bytes never hit the socket again, so epoll would
    // sleep through them: such a connection must re-queue, not park.
    // (`await_data` returning `Idle` implies an empty buffer; this guards
    // the invariant regardless of the call path.)
    if !conn.reader.buffer().is_empty() {
        shared.reactor.hand_back(conn);
        return;
    }
    // Registration failure (or post-shutdown park) drops the connection,
    // closing its socket.
    let _ = shared.reactor.park(conn);
}

/// Headers both ends care about: body length (`None` when absent *or*
/// unparseable — callers must reject rather than guess, or the keep-alive
/// stream desynchronizes) and connection intent.
struct Headers {
    content_length: Option<usize>,
    close: bool,
}

/// Read header lines up to the blank separator. One parser for the server
/// and the client so the two ends can never disagree on framing.
fn read_headers(reader: &mut BufReader<TcpStream>) -> std::io::Result<Headers> {
    let mut headers = Headers {
        content_length: None,
        close: false,
    };
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            return Ok(headers);
        }
        if let Some(value) = line.strip_prefix("content-length:") {
            headers.content_length = value.trim().parse().ok();
        }
        if let Some(value) = line.strip_prefix("connection:") {
            headers.close = value.trim() == "close";
        }
    }
}

/// Serve exactly one `POST` request off `conn`. `Ok(close)` reports
/// whether the connection must close afterwards; any `Err` poisons the
/// stream (framing is unrecoverable) and the caller drops it.
fn serve_one_request(conn: &mut Conn, shared: &ServerShared) -> std::io::Result<bool> {
    let front = &*shared.front;
    // The first byte is known to be pending; the rest of the request gets
    // a bounded window so a stalling client can't pin this worker.
    conn.stream().set_read_timeout(Some(REQUEST_IO_TIMEOUT))?;

    // Request line; 0 bytes = client closed the connection.
    let mut request_line = String::new();
    if conn.reader.read_line(&mut request_line)? == 0 {
        return Ok(true);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let _path = parts.next().unwrap_or("/");

    let headers = read_headers(&mut conn.reader)?;
    let client_close = headers.close;

    if method != "POST" {
        write_response(
            conn.stream(),
            405,
            true,
            r#"{"status":"error","message":"POST only"}"#,
        )?;
        return Ok(true);
    }
    // A POST without a parseable Content-Length cannot be framed: refuse
    // and close rather than guess (guessing would leave body bytes in the
    // stream and desynchronize later keep-alive requests).
    let Some(content_length) = headers.content_length else {
        write_response(
            conn.stream(),
            400,
            true,
            r#"{"status":"error","message":"missing or invalid Content-Length"}"#,
        )?;
        return Ok(true);
    };
    // Oversized bodies are refused with the connection closed, for the
    // same framing reason.
    if content_length > MAX_BODY_BYTES {
        write_response(
            conn.stream(),
            413,
            true,
            r#"{"status":"error","message":"body too large"}"#,
        )?;
        return Ok(true);
    }
    let mut body = vec![0u8; content_length];
    conn.reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body);

    // Pre-dispatch faults: the request is fully read but *never* reaches
    // the service — what a crash between receive and dispatch looks like.
    if let Some(faults) = &shared.faults {
        if faults.take_drop() {
            return Ok(true); // close silently, no response
        }
        if faults.take_fail() {
            write_response(conn.stream(), 500, true, FAULTED_BODY)?;
            return Ok(true);
        }
    }

    let response = front.handle_json_scoped(&body, shared.scope);

    // Post-dispatch faults: the service's effects (minted tokens, burned
    // one-time indexes) are real; only the answer is delayed or lost.
    if let Some(faults) = &shared.faults {
        if let Some(delay) = faults.response_delay() {
            std::thread::sleep(delay);
        }
        if faults.take_truncate() {
            write_truncated_response(conn.stream(), &response)?;
            return Ok(true);
        }
    }

    write_response(conn.stream(), 200, client_close, &response)?;
    Ok(client_close)
}

fn write_response(
    stream: &mut TcpStream,
    code: u16,
    close: bool,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Method Not Allowed",
    };
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// A response truncated mid-body, connection closed: the client's
/// `read_exact` hits EOF and must treat the whole exchange as a transport
/// failure *after* the request was dispatched.
fn write_truncated_response(stream: &mut TcpStream, body: &str) -> std::io::Result<()> {
    let half = body.len() / 2;
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        &body[..half]
    )?;
    stream.flush()
}

/// Read one HTTP response (status line, headers, content-length body) off
/// `reader`, returning the status code and body.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String)> {
    let mut status = String::new();
    if reader.read_line(&mut status)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let code: u16 = status
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable status line {status:?}"),
            )
        })?;
    // An unframeable response poisons the whole persistent connection, so
    // surface it as an io::Error — round_trip drops the connection on any
    // io::Error, forcing a clean reconnect.
    let Some(content_length) = read_headers(reader)?.content_length else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response missing a parseable Content-Length",
        ));
    };
    if content_length > MAX_BODY_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((code, String::from_utf8_lossy(&body).into_owned()))
}

/// Socket tuning for [`HttpClient`]: every phase of a round trip is
/// bounded, so a hung or partitioned server costs a finite, configurable
/// wait instead of blocking the caller forever.
#[derive(Clone, Debug)]
pub struct HttpClientConfig {
    /// Ceiling on establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Ceiling on each blocking read while awaiting the response.
    pub read_timeout: Duration,
    /// Ceiling on each blocking write while sending the request.
    pub write_timeout: Duration,
}

impl Default for HttpClientConfig {
    fn default() -> Self {
        HttpClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// How far a failed round trip got — the fact a failover layer needs to
/// decide whether a retry is safe.
#[derive(Debug)]
pub(crate) enum CallError {
    /// The transport failed. `sent` reports whether any request bytes may
    /// have reached the server: `false` means the failure happened while
    /// connecting (nothing transmitted — always safe to retry), `true`
    /// means the request may have been received and even executed.
    Transport {
        /// Whether request bytes may have gone out.
        sent: bool,
        /// The decoded failure.
        error: ApiError,
    },
    /// The server answered an HTTP 5xx (overload or injected fault). The
    /// request reached the server; whether it was dispatched is unknown.
    Server {
        /// The HTTP status code.
        status: u16,
        /// The decoded (or synthesized) error body.
        error: ApiError,
    },
    /// A well-formed application-level error envelope (rule violation,
    /// `counter_unavailable`, …). The operation definitively ran; there
    /// is nothing for a transport-level retry to fix.
    Api(ApiError),
}

impl CallError {
    /// Collapse to the plain [`ApiError`] a single-endpoint caller sees,
    /// preserving the HTTP status of a server-level failure in the message.
    pub(crate) fn into_api(self) -> ApiError {
        match self {
            CallError::Transport { error, .. } | CallError::Api(error) => error,
            CallError::Server { status, error } => {
                ApiError::new(error.code, format!("http {status}: {}", error.message))
            }
        }
    }
}

/// Where in the round trip an I/O error struck.
enum IoFailure {
    /// While establishing the connection: nothing was transmitted.
    Connect(std::io::Error),
    /// While writing the request or reading the response: the request may
    /// have reached (and been executed by) the server.
    AfterSend(std::io::Error),
}

/// Render an I/O error as a transport [`ApiError`], naming timeouts
/// distinguishably (`set_read_timeout`/`set_write_timeout` expirations
/// surface as `WouldBlock`/`TimedOut` depending on platform).
fn transport_error(phase: &str, e: &std::io::Error) -> ApiError {
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        ApiError::new(ErrorCode::Transport, format!("{phase} timed out: {e}"))
    } else {
        ApiError::new(ErrorCode::Transport, format!("{phase} failed: {e}"))
    }
}

impl IoFailure {
    fn sent(&self) -> bool {
        matches!(self, IoFailure::AfterSend(_))
    }

    fn into_call_error(self) -> CallError {
        let (sent, error) = match &self {
            IoFailure::Connect(e) => (false, transport_error("connect", e)),
            IoFailure::AfterSend(e) => (true, transport_error("round trip", e)),
        };
        CallError::Transport { sent, error }
    }
}

/// The wire implementation of [`TsApi`]: protocol-v2 envelopes over one
/// keep-alive HTTP connection.
///
/// The connection is lazy (opened on first use) and persistent. Before
/// each reuse the client probes the pooled connection with a non-blocking
/// peek: a connection the server has since closed (restart, idle timeout)
/// is detected *before* the request is sent and replaced transparently —
/// safe for every op, because nothing was transmitted yet. Failures after
/// the request went out are retried on a fresh connection only for
/// idempotent ops. Every socket phase is bounded by [`HttpClientConfig`]
/// timeouts, so a hung server surfaces as a distinguishable "timed out"
/// [`ErrorCode::Transport`] error instead of blocking forever.
pub struct HttpClient {
    addr: SocketAddr,
    config: HttpClientConfig,
    conn: parking_lot::Mutex<Option<BufReader<TcpStream>>>,
}

impl HttpClient {
    /// A client for the server at `addr` with default timeouts. No I/O
    /// happens until the first call.
    pub fn connect(addr: SocketAddr) -> HttpClient {
        HttpClient::connect_with(addr, HttpClientConfig::default())
    }

    /// A client with explicit socket timeouts.
    pub fn connect_with(addr: SocketAddr, config: HttpClientConfig) -> HttpClient {
        HttpClient {
            addr,
            config,
            conn: parking_lot::Mutex::new(None),
        }
    }

    /// A client from a discovery URL (`http://ip:port`, as published in
    /// [`ContractMetadata::token_service_url`]).
    pub fn from_url(url: &str) -> Option<HttpClient> {
        let addr = url.strip_prefix("http://")?.parse().ok()?;
        Some(HttpClient::connect(addr))
    }

    /// The server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn round_trip_once(
        &self,
        conn: &mut Option<BufReader<TcpStream>>,
        body: &str,
    ) -> Result<(u16, String), IoFailure> {
        if conn.is_none() {
            let stream = (|| {
                let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(self.config.read_timeout))?;
                stream.set_write_timeout(Some(self.config.write_timeout))?;
                Ok(stream)
            })()
            .map_err(IoFailure::Connect)?;
            *conn = Some(BufReader::new(stream));
        }
        let reader = conn.as_mut().expect("connection just ensured");
        let stream = reader.get_mut();
        (|| {
            write!(
                stream,
                "POST / HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                self.addr,
                body.len()
            )?;
            stream.flush()
        })()
        .map_err(IoFailure::AfterSend)?;
        read_response(reader).map_err(IoFailure::AfterSend)
    }

    /// One keep-alive round trip.
    ///
    /// A pooled connection is preflighted first: if the server already
    /// closed it (restart, idle timeout) it is replaced before anything is
    /// sent — a transparent reconnect that is safe for *all* ops. After
    /// the request has been written, a failure is retried on a fresh
    /// connection only for `idempotent` operations: a lost *response* is
    /// indistinguishable from a lost *request*, and replaying an issuance
    /// could mint twice (burning one-time counter indexes).
    fn round_trip(&self, body: &str, idempotent: bool) -> Result<(u16, String), CallError> {
        let mut conn = self.conn.lock();
        if conn.as_mut().is_some_and(connection_is_stale) {
            *conn = None;
        }
        let had_connection = conn.is_some();
        match self.round_trip_once(&mut conn, body) {
            Ok(response) => Ok(response),
            Err(first) => {
                *conn = None;
                if !had_connection || (first.sent() && !idempotent) {
                    // Fresh connection already failed (retry won't help),
                    // or replay is unsafe for this op.
                    return Err(first.into_call_error());
                }
                self.round_trip_once(&mut conn, body).map_err(|e| {
                    *conn = None;
                    e.into_call_error()
                })
            }
        }
    }

    /// Send one v2 op, reporting failures with enough detail for a
    /// failover layer to decide whether retrying elsewhere is safe.
    pub(crate) fn call_detailed(
        &self,
        op: &str,
        body: Option<Json>,
        idempotent: bool,
    ) -> Result<Json, CallError> {
        let envelope = RequestEnvelope {
            v: PROTOCOL_VERSION,
            op: op.into(),
            body,
        };
        let (status, text) = self.round_trip(&json::to_string(&envelope), idempotent)?;
        let decoded = Json::parse(&text)
            .ok()
            .and_then(|json| ResponseEnvelope::from_json(&json).ok());
        if status >= 500 {
            // Overload (503) or injected fault (500): surface the decoded
            // envelope error when one came along, but tagged as a server
            // failure so failover can route around it.
            let error = decoded
                .and_then(|r| r.error)
                .map(ApiError::from)
                .unwrap_or_else(|| {
                    ApiError::new(ErrorCode::Internal, format!("server error {status}"))
                });
            return Err(CallError::Server { status, error });
        }
        let response = decoded.ok_or_else(|| {
            CallError::Api(ApiError::new(
                ErrorCode::Internal,
                "undecodable response envelope",
            ))
        })?;
        if response.ok {
            Ok(response.body.unwrap_or(Json::Null))
        } else {
            Err(CallError::Api(
                response
                    .error
                    .map(ApiError::from)
                    .unwrap_or_else(|| ApiError::new(ErrorCode::Internal, "error without detail")),
            ))
        }
    }

    /// Send one v2 op and return the success body (or the decoded error).
    fn call(&self, op: &str, body: Option<Json>) -> Result<Json, ApiError> {
        // Replaying `set_rules` re-applies the same whole-book replacement;
        // `discover`/`ping` are reads. Issuance is the non-idempotent pair.
        let idempotent = matches!(op, "ping" | "discover" | "set_rules");
        self.call_detailed(op, body, idempotent)
            .map_err(CallError::into_api)
    }
}

/// Whether a pooled client connection can no longer carry a request:
/// orderly FIN or error from the peer, or (never expected) stray unread
/// bytes that would desynchronize the response framing.
fn connection_is_stale(reader: &mut BufReader<TcpStream>) -> bool {
    if !reader.buffer().is_empty() {
        return true; // leftover response bytes: framing is already lost
    }
    let stream = reader.get_mut();
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let stale = match stream.peek(&mut probe) {
        Ok(0) => true, // server closed while we were idle
        Ok(_) => true, // unsolicited data: desynchronized
        Err(e) if e.kind() == ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    stale
}

impl TsApi for HttpClient {
    fn issue(&self, request: &TokenRequest) -> Result<Token, ApiError> {
        let body = IssueBody::from_json(&self.call("issue", Some(request.to_json()))?)
            .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad issue body: {e}")))?;
        decode_token_hex(&body.token_hex)
            .ok_or_else(|| ApiError::new(ErrorCode::Internal, "undecodable token_hex"))
    }

    fn issue_batch(
        &self,
        requests: &[TokenRequest],
    ) -> Result<Vec<Result<Token, ApiError>>, ApiError> {
        let body = BatchRequestBody {
            requests: requests.to_vec(),
        };
        let response =
            BatchResponseBody::from_json(&self.call("issue_batch", Some(body.to_json()))?)
                .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad batch body: {e}")))?;
        Ok(response
            .results
            .into_iter()
            .map(|item| item.into_result())
            .collect())
    }

    fn set_rules(&self, owner_secret: &str, rules: RuleBook) -> Result<(), ApiError> {
        let body = SetRulesBody {
            owner_secret: owner_secret.into(),
            rules,
        };
        self.call("set_rules", Some(body.to_json())).map(|_| ())
    }

    fn discover(&self, contract: Address) -> Result<Option<ContractMetadata>, ApiError> {
        let body = DiscoverResponseBody::from_json(
            &self.call("discover", Some(DiscoverBody { contract }.to_json()))?,
        )
        .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad discover body: {e}")))?;
        Ok(body.metadata)
    }

    fn ping(&self) -> Result<(), ApiError> {
        self.call("ping", None).map(|_| ())
    }
}

/// A tiny blocking one-shot client (v1 era): one `POST /` per connection,
/// `Connection: close`. Kept for legacy clients and the back-compat tests.
pub fn post_json(addr: SocketAddr, body: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "POST / HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let body_start = response
        .find("\r\n\r\n")
        .map(|i| i + 4)
        .unwrap_or(response.len());
    Ok(response[body_start..].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::{decode_token_hex, FrontRequest, FrontResponse};
    use crate::rules::RuleBook;
    use crate::service::{TokenService, TokenServiceConfig};
    use smacs_crypto::Keypair;
    use smacs_primitives::Address;
    use smacs_token::TokenRequest;
    use std::time::Instant;

    fn front() -> Arc<FrontEnd> {
        let service = TokenService::new(
            Keypair::from_seed(1),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        Arc::new(FrontEnd::new(service, "secret", 0))
    }

    fn running_server() -> HttpServer {
        HttpServer::start(front()).unwrap()
    }

    fn request(low: u64) -> TokenRequest {
        TokenRequest::super_token(Address::from_low_u64(1), Address::from_low_u64(low))
    }

    #[test]
    fn token_issuance_over_http_v1() {
        let server = running_server();
        let request = FrontRequest::IssueToken {
            request: request(2),
        };
        let body = smacs_primitives::json::to_string(&request);
        let response = post_json(server.addr(), &body).unwrap();
        let parsed: FrontResponse = smacs_primitives::json::from_str(&response).unwrap();
        let FrontResponse::Token { token_hex } = parsed else {
            panic!("expected token, got {parsed:?}");
        };
        assert!(decode_token_hex(&token_hex).is_some());
        server.shutdown();
    }

    #[test]
    fn token_issuance_over_http_v2_client() {
        let server = running_server();
        let client = HttpClient::connect(server.addr());
        client.ping().unwrap();
        let token = client.issue(&request(2)).unwrap();
        assert_eq!(token.expire, 3_600);
        // Batch over the same kept-alive connection.
        let results = client.issue_batch(&[request(3), request(4)]).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
        server.shutdown();
    }

    #[test]
    fn http_client_surfaces_transport_errors_after_shutdown() {
        let server = running_server();
        let established = HttpClient::connect(server.addr());
        established.ping().unwrap();
        let addr = server.addr();
        server.shutdown();
        // Graceful shutdown closes parked keep-alive connections and the
        // listener: both the established client (whose reconnect attempt
        // finds the listener gone) and a fresh one must surface a
        // transport error, not hang.
        let err = established.ping().unwrap_err();
        assert_eq!(err.code, ErrorCode::Transport);
        let fresh = HttpClient::connect(addr);
        let err = fresh.issue(&request(2)).unwrap_err();
        assert_eq!(err.code, ErrorCode::Transport);
    }

    #[test]
    fn client_transparently_reconnects_after_server_idle_timeout() {
        // The server reaps connections idle > 40 ms; the client's pooled
        // connection goes stale, and the next call — *including* the
        // non-idempotent issue — must succeed via the preflight reconnect
        // instead of surfacing a transport error.
        let server = HttpServer::start_with(
            front(),
            HttpServerConfig::builder()
                .idle_timeout(Duration::from_millis(40))
                .build(),
        )
        .unwrap();
        let client = HttpClient::connect(server.addr());
        client.ping().unwrap();
        std::thread::sleep(Duration::from_millis(150));
        assert!(
            client.issue(&request(2)).is_ok(),
            "stale pooled connection must be replaced transparently"
        );
        server.shutdown();
    }

    #[test]
    fn connections_beyond_max_are_refused_with_fast_503() {
        // Two established keep-alive connections saturate a
        // max_connections(2) server: the third accept must be answered
        // with a fast, decodable 503 and closed — the bounded-overload
        // path — while the established two keep being served.
        let server = HttpServer::start_with(
            front(),
            HttpServerConfig::builder().max_connections(2).build(),
        )
        .unwrap();
        let held: Vec<HttpClient> = (0..2).map(|_| HttpClient::connect(server.addr())).collect();
        for client in &held {
            client.ping().unwrap(); // establish (and count) both
        }
        assert_eq!(server.open_connections(), 2);
        let refused = HttpClient::connect(server.addr());
        let start = Instant::now();
        let err = refused.ping().unwrap_err();
        assert!(
            matches!(err.code, ErrorCode::Internal | ErrorCode::Transport),
            "unexpected overload surface: {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "503 path must be fast, took {:?}",
            start.elapsed()
        );
        // The held connections are unaffected by the refusal…
        for client in &held {
            client.ping().unwrap();
        }
        // …and capacity freed by a closing client is reusable.
        drop(held);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            std::thread::sleep(Duration::from_millis(5));
            if HttpClient::connect(server.addr()).ping().is_ok() {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "freed capacity never became accept-able"
            );
        }
        server.shutdown();
    }

    #[test]
    fn builder_sets_reactor_native_knobs() {
        let config = HttpServerConfig::builder()
            .workers(3)
            .queue_capacity(7)
            .accept_queue_capacity(5)
            .max_connections(11)
            .accept_backlog(13)
            .keepalive_grace(Duration::from_millis(2))
            .idle_timeout(Duration::from_millis(17))
            .scope(EndpointScope::Vote)
            .build();
        assert_eq!(config.workers, 3);
        assert_eq!(config.queue_capacity, 7);
        assert_eq!(config.accept_queue_capacity, 5);
        assert_eq!(config.max_connections, 11);
        assert_eq!(config.accept_backlog, 13);
        assert_eq!(config.keepalive_grace, Duration::from_millis(2));
        assert_eq!(config.idle_timeout, Some(Duration::from_millis(17)));
        assert_eq!(config.scope, EndpointScope::Vote);
    }

    #[test]
    fn poller_era_struct_literal_still_serves_with_poll_interval_ignored() {
        // The poller-era struct-literal configuration path must keep
        // compiling and serving; `poll_interval` is accepted but ignored
        // (the reactor never sweeps).
        let server = HttpServer::start_with(
            front(),
            HttpServerConfig {
                workers: 2,
                poll_interval: Duration::from_millis(250),
                ..HttpServerConfig::default()
            },
        )
        .unwrap();
        let client = HttpClient::connect(server.addr());
        client.ping().unwrap();
        // A parked connection answers far faster than the configured
        // 250 ms "sweep" would allow — proof the knob is dead.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.parked_connections() == 0 {
            assert!(Instant::now() < deadline, "connection never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        let start = Instant::now();
        client.ping().unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "parked wake took {:?} — is something sweeping?",
            start.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = running_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = HttpClient::connect(addr);
                    client.issue(&request(100 + i)).is_ok()
                })
            })
            .collect();
        for handle in handles {
            assert!(handle.join().unwrap());
        }
        server.shutdown();
    }

    #[test]
    fn non_post_is_rejected() {
        let server = running_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_the_accept_loop_promptly() {
        let server = running_server();
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "shutdown took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn idle_connections_park_instead_of_pinning_workers() {
        let server =
            HttpServer::start_with(front(), HttpServerConfig::builder().workers(2).build())
                .unwrap();
        // More idle keep-alive clients than workers: all must get served
        // (so none is starved by a pinned worker) and then sit parked.
        let clients: Vec<HttpClient> = (0..6).map(|_| HttpClient::connect(server.addr())).collect();
        for client in &clients {
            client.ping().unwrap();
        }
        // Give the grace periods a moment to lapse.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.parked_connections() < clients.len() {
            assert!(
                Instant::now() < deadline,
                "only {} of {} connections parked",
                server.parked_connections(),
                clients.len()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // Parked connections still answer when spoken to.
        for client in &clients {
            client.ping().unwrap();
        }
        server.shutdown();
    }
}
