//! A minimal threaded HTTP/1.1 server exposing the [`crate::front`]
//! protocol over TCP — the prototype's stand-in for the paper's
//! "HTTPS-enabled web interface".
//!
//! One `POST /` request per connection, JSON body in, JSON body out. Built
//! on `std::net` only; adequate for loopback benchmarking and integration
//! tests, not hardened for the open internet (the paper's prototype ran
//! Node.js on localhost, same scope).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::front::FrontEnd;

/// A running HTTP front-end server.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Start serving `front` on an OS-assigned loopback port.
    pub fn start(front: Arc<FrontEnd>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = shutdown.clone();
        listener.set_nonblocking(true)?;
        let handle = std::thread::spawn(move || {
            while !shutdown_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let front = front.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, &front);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(HttpServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (`127.0.0.1:port`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service URL for [`crate::discovery`] metadata.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stop accepting connections and join the accept loop.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_connection(mut stream: TcpStream, front: &FrontEnd) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);

    // Request line.
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let _path = parts.next().unwrap_or("/");

    // Headers → content length.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .map(str::to_string)
        {
            content_length = value.parse().unwrap_or(0);
        }
    }

    if method != "POST" {
        return write_response(
            &mut stream,
            405,
            r#"{"status":"error","message":"POST only"}"#,
        );
    }
    let mut body = vec![0u8; content_length.min(1 << 20)];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body);
    let response = front.handle_json(&body);
    write_response(&mut stream, 200, &response)
}

fn write_response(stream: &mut TcpStream, code: u16, body: &str) -> std::io::Result<()> {
    let reason = if code == 200 {
        "OK"
    } else {
        "Method Not Allowed"
    };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// A tiny blocking client for the server above — used by tests, benches,
/// and example binaries.
pub fn post_json(addr: SocketAddr, body: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "POST / HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let body_start = response
        .find("\r\n\r\n")
        .map(|i| i + 4)
        .unwrap_or(response.len());
    Ok(response[body_start..].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::{decode_token_hex, FrontRequest, FrontResponse};
    use crate::rules::RuleBook;
    use crate::service::{TokenService, TokenServiceConfig};
    use smacs_crypto::Keypair;
    use smacs_primitives::Address;
    use smacs_token::TokenRequest;

    fn running_server() -> HttpServer {
        let service = TokenService::new(
            Keypair::from_seed(1),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        HttpServer::start(Arc::new(FrontEnd::new(service, "secret", 0))).unwrap()
    }

    #[test]
    fn token_issuance_over_http() {
        let server = running_server();
        let request = FrontRequest::IssueToken {
            request: TokenRequest::super_token(Address::from_low_u64(1), Address::from_low_u64(2)),
        };
        let body = smacs_primitives::json::to_string(&request);
        let response = post_json(server.addr(), &body).unwrap();
        let parsed: FrontResponse = smacs_primitives::json::from_str(&response).unwrap();
        let FrontResponse::Token { token_hex } = parsed else {
            panic!("expected token, got {parsed:?}");
        };
        assert!(decode_token_hex(&token_hex).is_some());
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = running_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let request = FrontRequest::IssueToken {
                        request: TokenRequest::super_token(
                            Address::from_low_u64(1),
                            Address::from_low_u64(100 + i),
                        ),
                    };
                    let body = smacs_primitives::json::to_string(&request);
                    let response = post_json(addr, &body).unwrap();
                    matches!(
                        smacs_primitives::json::from_str::<FrontResponse>(&response).unwrap(),
                        FrontResponse::Token { .. }
                    )
                })
            })
            .collect();
        for handle in handles {
            assert!(handle.join().unwrap());
        }
        server.shutdown();
    }

    #[test]
    fn non_post_is_rejected() {
        let server = running_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }
}
