//! A failover-aware [`TsApi`] client for replicated Token Services
//! (§VII-B availability, the client half).
//!
//! [`FailoverClient`] holds one [`HttpClient`] per replica (typically the
//! directory from [`ContractMetadata::all_service_urls`]) and rotates
//! through them:
//!
//! - **load balancing**: calls start from a round-robin cursor, so a fleet
//!   of wallets spreads across the replicas;
//! - **bounded retries**: a failed attempt is retried on the *next*
//!   replica with exponential backoff plus deterministic jitter, up to
//!   [`RetryPolicy::attempts`] attempts and a per-call
//!   [`RetryPolicy::deadline`];
//! - **at-most-once issuance**: whether a failure is retried depends on
//!   how far the round trip got ([`CallError`]) and whether the operation
//!   is idempotent. A connect-phase failure transmitted nothing and is
//!   always safe to replay. After the request may have gone out, only
//!   idempotent operations — `ping`, `discover`, `set_rules` (replaying a
//!   whole-book replacement is a no-op), and issuance of tokens *without*
//!   the one-time property (a re-mint is byte-identical) — are replayed.
//!   A one-time issue whose answer was lost is surfaced as a transport
//!   error instead of blind-retried: replaying it could burn a second
//!   counter index, and the wallet (which knows whether the first token
//!   ever arrived on-chain) must decide;
//! - **circuit breaking**: [`BreakerConfig::failure_threshold`]
//!   consecutive transport/server failures open an endpoint's breaker for
//!   [`BreakerConfig::cooldown`] — calls skip it instead of paying its
//!   connect/read timeout every time. After the cooldown one trial call
//!   (half-open) probes whether the replica came back.
//!
//! Application-level errors (rule violations, `counter_unavailable`, bad
//! owner secret, …) mean the service *ran* the request and answered; they
//! are returned immediately, never failed over, and count as endpoint
//! successes for the breaker.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use smacs_primitives::json::{FromJson, Json, ToJson};
use smacs_primitives::Address;
use smacs_token::{Token, TokenRequest};

use crate::api::{
    ApiError, BatchRequestBody, BatchResponseBody, DiscoverBody, DiscoverResponseBody, ErrorCode,
    IssueBody, SetRulesBody, TsApi,
};
use crate::discovery::ContractMetadata;
use crate::front::decode_token_hex;
use crate::http::{CallError, HttpClient, HttpClientConfig};
use crate::rules::RuleBook;

/// Retry/backoff tuning for [`FailoverClient`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per call across all replicas (1 = no retries).
    pub attempts: usize,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget for one call, attempts and backoffs included.
    /// Checked between attempts (each attempt itself is bounded by the
    /// [`HttpClientConfig`] socket timeouts).
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            deadline: Duration::from_secs(15),
        }
    }
}

/// Circuit-breaker tuning (per endpoint).
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive transport/server failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker sheds load before a half-open trial.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Mutable breaker state for one endpoint.
#[derive(Default)]
struct BreakerState {
    consecutive_failures: u32,
    /// `Some(t)`: open (shedding) until `t`, then half-open.
    open_until: Option<Instant>,
}

/// One replica endpoint: its client and breaker.
struct Endpoint {
    client: HttpClient,
    breaker: Mutex<BreakerState>,
}

impl Endpoint {
    /// Whether a call may be sent here now (closed, or open with the
    /// cooldown elapsed — the half-open trial).
    fn available(&self, now: Instant) -> bool {
        match self.breaker.lock().open_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    fn record_success(&self) {
        let mut state = self.breaker.lock();
        state.consecutive_failures = 0;
        state.open_until = None;
    }

    fn record_failure(&self, config: &BreakerConfig, now: Instant) {
        let mut state = self.breaker.lock();
        state.consecutive_failures += 1;
        if state.consecutive_failures >= config.failure_threshold {
            state.open_until = Some(now + config.cooldown);
        }
    }
}

/// A [`TsApi`] client that spreads calls across a replica set and routes
/// around dead members. See the module docs for the full policy.
pub struct FailoverClient {
    endpoints: Vec<Endpoint>,
    policy: RetryPolicy,
    breaker: BreakerConfig,
    /// Round-robin start index for load balancing.
    cursor: AtomicUsize,
    /// xorshift state for backoff jitter — deterministic per client, so
    /// tests are reproducible, yet distinct clients desynchronize.
    jitter: AtomicU64,
}

impl FailoverClient {
    /// A client over `addrs` with default timeouts, retries, and breakers.
    ///
    /// # Panics
    /// Panics if `addrs` is empty.
    pub fn new(addrs: Vec<SocketAddr>) -> FailoverClient {
        FailoverClient::with_config(
            addrs,
            HttpClientConfig::default(),
            RetryPolicy::default(),
            BreakerConfig::default(),
        )
    }

    /// A client with explicit socket, retry, and breaker tuning.
    ///
    /// # Panics
    /// Panics if `addrs` is empty.
    pub fn with_config(
        addrs: Vec<SocketAddr>,
        client: HttpClientConfig,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) -> FailoverClient {
        assert!(!addrs.is_empty(), "need at least one endpoint");
        let seed = addrs.iter().fold(0x9E37_79B9_7F4A_7C15u64, |acc, addr| {
            acc.wrapping_mul(31).wrapping_add(addr.port() as u64)
        }) | 1; // xorshift must not start at 0
        FailoverClient {
            endpoints: addrs
                .into_iter()
                .map(|addr| Endpoint {
                    client: HttpClient::connect_with(addr, client.clone()),
                    breaker: Mutex::new(BreakerState::default()),
                })
                .collect(),
            policy,
            breaker,
            cursor: AtomicUsize::new(0),
            jitter: AtomicU64::new(seed),
        }
    }

    /// A client from discovery URLs (`http://ip:port`, the
    /// [`ContractMetadata::all_service_urls`] shape). Unparseable URLs are
    /// skipped; `None` iff none parse.
    pub fn from_urls<S: AsRef<str>>(urls: &[S]) -> Option<FailoverClient> {
        let addrs: Vec<SocketAddr> = urls
            .iter()
            .filter_map(|url| url.as_ref().strip_prefix("http://")?.parse().ok())
            .collect();
        if addrs.is_empty() {
            return None;
        }
        Some(FailoverClient::new(addrs))
    }

    /// The discovery handshake: ask any reachable replica (`seed`) for
    /// `contract`'s metadata and build a client over the full replica
    /// directory it advertises. `Ok(None)` when the contract is unknown
    /// or its metadata names no usable service URL.
    pub fn discover_replicas(
        seed: &HttpClient,
        contract: Address,
    ) -> Result<Option<FailoverClient>, ApiError> {
        let Some(metadata) = seed.discover(contract)? else {
            return Ok(None);
        };
        Ok(FailoverClient::from_urls(&metadata.all_service_urls()))
    }

    /// Number of endpoints in the directory.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Endpoints whose breakers are currently open (shedding load).
    pub fn open_breakers(&self) -> usize {
        let now = Instant::now();
        self.endpoints.iter().filter(|e| !e.available(now)).count()
    }

    /// Pick the endpoint for attempt `attempt` of a call that started at
    /// cursor `start`: the first available (breaker-wise) endpoint at or
    /// after the rotating position; when every breaker is open, the one
    /// whose cooldown expires soonest (shortest wait for a half-open
    /// trial).
    fn pick(&self, start: usize, attempt: usize) -> &Endpoint {
        let n = self.endpoints.len();
        let now = Instant::now();
        let base = start + attempt;
        for i in 0..n {
            let endpoint = &self.endpoints[(base + i) % n];
            if endpoint.available(now) {
                return endpoint;
            }
        }
        self.endpoints
            .iter()
            .min_by_key(|e| e.breaker.lock().open_until.unwrap_or(now))
            .expect("at least one endpoint")
    }

    /// Backoff before attempt `attempt` (1-based): exponential from
    /// [`RetryPolicy::base_backoff`], capped, with xorshift jitter in
    /// `[50%, 100%]` so synchronized clients spread out.
    fn backoff(&self, attempt: usize) -> Duration {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16) as u32)
            .min(self.policy.max_backoff);
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.store(x, Ordering::Relaxed);
        let nanos = exp.as_nanos() as u64;
        Duration::from_nanos(nanos / 2 + (x % (nanos / 2 + 1)))
    }

    /// Whether `error` may be retried on another replica given the
    /// operation's idempotency — the at-most-once gate.
    fn retriable(error: &CallError, idempotent: bool) -> bool {
        match error {
            // Nothing was transmitted: replaying is always safe.
            CallError::Transport { sent: false, .. } => true,
            // The request may have been received and executed: replay only
            // what is safe to execute twice.
            CallError::Transport { sent: true, .. } | CallError::Server { .. } => idempotent,
            // The service ran the request and said no. Retrying elsewhere
            // would just re-ask the same replicated state.
            CallError::Api(_) => false,
        }
    }

    /// One v2 op with failover: rotate through replicas until an attempt
    /// yields a definitive answer, the attempt/deadline budget runs out,
    /// or a failure is unsafe to replay.
    fn call(&self, op: &str, body: Option<Json>, idempotent: bool) -> Result<Json, ApiError> {
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % self.endpoints.len();
        let deadline = Instant::now() + self.policy.deadline;
        let attempts = self.policy.attempts.max(1);
        let mut last: Option<CallError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = self.backoff(attempt);
                if Instant::now() + pause >= deadline {
                    break;
                }
                std::thread::sleep(pause);
            }
            let endpoint = self.pick(start, attempt);
            match endpoint.client.call_detailed(op, body.clone(), idempotent) {
                Ok(response) => {
                    endpoint.record_success();
                    return Ok(response);
                }
                Err(CallError::Api(error)) => {
                    endpoint.record_success();
                    return Err(error);
                }
                Err(error) => {
                    endpoint.record_failure(&self.breaker, Instant::now());
                    let retriable = FailoverClient::retriable(&error, idempotent);
                    last = Some(error);
                    if !retriable {
                        break;
                    }
                }
            }
        }
        Err(last
            .map(CallError::into_api)
            .unwrap_or_else(|| ApiError::new(ErrorCode::Transport, "no attempt made")))
    }
}

impl TsApi for FailoverClient {
    fn issue(&self, request: &TokenRequest) -> Result<Token, ApiError> {
        // Re-minting an expiry-only token is byte-identical (same expire,
        // NO_INDEX, same payload → same signature); a one-time token burns
        // a fresh counter index per mint, so it must not be replayed once
        // the request may have gone out.
        let idempotent = !request.one_time;
        let body =
            IssueBody::from_json(&self.call("issue", Some(request.to_json()), idempotent)?)
                .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad issue body: {e}")))?;
        decode_token_hex(&body.token_hex)
            .ok_or_else(|| ApiError::new(ErrorCode::Internal, "undecodable token_hex"))
    }

    fn issue_batch(
        &self,
        requests: &[TokenRequest],
    ) -> Result<Vec<Result<Token, ApiError>>, ApiError> {
        // One one-time request poisons the whole batch's replayability.
        let idempotent = requests.iter().all(|r| !r.one_time);
        let body = BatchRequestBody {
            requests: requests.to_vec(),
        };
        let response = BatchResponseBody::from_json(&self.call(
            "issue_batch",
            Some(body.to_json()),
            idempotent,
        )?)
        .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad batch body: {e}")))?;
        Ok(response
            .results
            .into_iter()
            .map(|item| item.into_result())
            .collect())
    }

    fn set_rules(&self, owner_secret: &str, rules: RuleBook) -> Result<(), ApiError> {
        let body = SetRulesBody {
            owner_secret: owner_secret.into(),
            rules,
        };
        // Replaying a whole-book replacement converges to the same state.
        self.call("set_rules", Some(body.to_json()), true)
            .map(|_| ())
    }

    fn discover(&self, contract: Address) -> Result<Option<ContractMetadata>, ApiError> {
        let body = DiscoverResponseBody::from_json(&self.call(
            "discover",
            Some(DiscoverBody { contract }.to_json()),
            true,
        )?)
        .map_err(|e| ApiError::new(ErrorCode::Internal, format!("bad discover body: {e}")))?;
        Ok(body.metadata)
    }

    fn ping(&self) -> Result<(), ApiError> {
        self.call("ping", None, true).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let client = FailoverClient::with_config(
            vec!["127.0.0.1:1".parse().unwrap()],
            HttpClientConfig::default(),
            RetryPolicy {
                attempts: 8,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(80),
                deadline: Duration::from_secs(1),
            },
            BreakerConfig::default(),
        );
        for attempt in 1..8 {
            let pause = client.backoff(attempt);
            assert!(
                pause <= Duration::from_millis(80),
                "attempt {attempt}: {pause:?}"
            );
            assert!(
                pause >= Duration::from_millis(5),
                "attempt {attempt}: {pause:?}"
            );
        }
    }

    #[test]
    fn retriability_gate() {
        let transport = |sent| CallError::Transport {
            sent,
            error: ApiError::new(ErrorCode::Transport, "x"),
        };
        // Connect-phase failures replay regardless of idempotency.
        assert!(FailoverClient::retriable(&transport(false), false));
        assert!(FailoverClient::retriable(&transport(false), true));
        // Post-send failures replay only idempotent ops.
        assert!(!FailoverClient::retriable(&transport(true), false));
        assert!(FailoverClient::retriable(&transport(true), true));
        let server = CallError::Server {
            status: 500,
            error: ApiError::new(ErrorCode::Internal, "x"),
        };
        assert!(!FailoverClient::retriable(&server, false));
        assert!(FailoverClient::retriable(&server, true));
        // Application errors are definitive.
        let api = CallError::Api(ApiError::new(ErrorCode::RuleViolation, "x"));
        assert!(!FailoverClient::retriable(&api, true));
    }

    #[test]
    #[should_panic(expected = "at least one endpoint")]
    fn empty_directory_panics() {
        FailoverClient::new(Vec::new());
    }

    /// Drive one endpoint's breaker state machine directly (the unit
    /// under test here is the breaker, not the socket): threshold
    /// failures open it, the cooldown elapsing half-opens it.
    fn opened_endpoint(config: &BreakerConfig) -> Endpoint {
        let endpoint = Endpoint {
            client: HttpClient::connect("127.0.0.1:1".parse().unwrap()),
            breaker: Mutex::new(BreakerState::default()),
        };
        let t0 = Instant::now();
        for _ in 0..config.failure_threshold {
            endpoint.record_failure(config, t0);
        }
        assert!(!endpoint.available(t0), "breaker must be open");
        assert!(
            endpoint.available(t0 + config.cooldown),
            "cooldown elapsed must half-open the breaker for one trial"
        );
        endpoint
    }

    #[test]
    fn half_open_probe_success_closes_the_breaker() {
        let config = BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        };
        let endpoint = opened_endpoint(&config);
        // The half-open trial succeeded: fully closed again — available
        // immediately (no residual cooldown) and with the failure count
        // reset, so one new failure must NOT re-open it.
        endpoint.record_success();
        let now = Instant::now();
        assert!(endpoint.available(now));
        endpoint.record_failure(&config, now);
        assert!(
            endpoint.available(now),
            "a closed breaker needs threshold consecutive failures again"
        );
    }

    #[test]
    fn half_open_probe_failure_reopens_for_a_full_cooldown() {
        let config = BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        };
        let endpoint = opened_endpoint(&config);
        // The half-open trial failed: one failure is enough to slam the
        // breaker shut again for a whole fresh cooldown.
        let probe_time = Instant::now() + config.cooldown;
        endpoint.record_failure(&config, probe_time);
        assert!(!endpoint.available(probe_time));
        assert!(
            !endpoint.available(probe_time + config.cooldown - Duration::from_millis(1)),
            "re-opened breaker must shed for a full cooldown from the failed probe"
        );
        assert!(endpoint.available(probe_time + config.cooldown));
    }

    /// The same two probe paths over the real wire: a dead replica opens
    /// its breaker; after the cooldown, the half-open probe either finds
    /// it recovered (breaker closes, endpoint back in rotation) or still
    /// dead (breaker re-opens).
    #[test]
    fn half_open_probe_over_the_wire() {
        use crate::cluster::{ReplicaSet, ReplicaSetConfig};
        use crate::rules::RuleBook;

        let mut set = ReplicaSet::start(
            smacs_crypto::Keypair::from_seed(77),
            RuleBook::permissive(),
            ReplicaSetConfig::default(),
        )
        .unwrap();
        let cooldown = Duration::from_millis(200);
        let client = FailoverClient::with_config(
            set.addrs(),
            HttpClientConfig {
                connect_timeout: Duration::from_millis(300),
                read_timeout: Duration::from_millis(300),
                write_timeout: Duration::from_millis(300),
            },
            RetryPolicy {
                attempts: 4,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(8),
                deadline: Duration::from_secs(5),
            },
            BreakerConfig {
                failure_threshold: 2,
                cooldown,
            },
        );
        client.ping().unwrap();
        set.kill(0);
        for _ in 0..8 {
            client.ping().unwrap();
        }
        assert_eq!(client.open_breakers(), 1, "dead replica must open");

        // Probe-fails path: cooldown passes, the corpse is probed again
        // and the breaker re-opens.
        std::thread::sleep(cooldown + Duration::from_millis(50));
        for _ in 0..8 {
            client.ping().unwrap();
        }
        assert_eq!(client.open_breakers(), 1, "failed probe must re-open");

        // Probe-succeeds path: the replica comes back; after the next
        // cooldown the probe lands, the breaker closes and stays closed.
        set.recover(0).unwrap();
        std::thread::sleep(cooldown + Duration::from_millis(50));
        for _ in 0..8 {
            client.ping().unwrap();
        }
        assert_eq!(client.open_breakers(), 0, "successful probe must close");
        set.shutdown();
    }

    #[test]
    fn from_urls_skips_garbage() {
        assert!(FailoverClient::from_urls(&["ftp://nope", "gibberish"]).is_none());
        let client =
            FailoverClient::from_urls(&["gibberish", "http://127.0.0.1:9", "http://127.0.0.1:10"])
                .unwrap();
        assert_eq!(client.endpoint_count(), 2);
    }
}
