//! The validation module: pluggable runtime-verification tools.
//!
//! "Defensive logics with arbitrary complexity can be plugged into SMACS"
//! (§V). A [`ValidationTool`] inspects a token request — typically by
//! simulating the requested call on an isolated fork of the chain (the TS's
//! "local testnet") — and vetoes issuance when it detects a problem. The
//! concrete tools the paper evaluates (Hydra uniformity, the ECF
//! re-entrancy checker) live in the `smacs-verifiers` crate and implement
//! this trait.

use smacs_chain::Chain;
use smacs_token::{TokenRequest, TokenType};

/// A runtime-verification tool consulted before token issuance.
pub trait ValidationTool: Send + Sync {
    /// Tool name for diagnostics and rejection messages.
    fn name(&self) -> &'static str;

    /// Which token types this tool inspects. The paper's advanced rules
    /// ride on argument tokens ("the argument token type allows us to
    /// craft more advanced ACRs", §IV-E); that is the default.
    fn applies_to(&self, ttype: TokenType) -> bool {
        ttype == TokenType::Argument
    }

    /// Inspect `req`, simulating on `testnet` (a private fork — mutations
    /// are invisible to the real chain). Return `Err(reason)` to veto.
    fn validate(&self, req: &TokenRequest, testnet: &mut Chain) -> Result<(), String>;
}

/// A tool that approves everything — the no-tools baseline configuration.
pub struct NullTool;

impl ValidationTool for NullTool {
    fn name(&self) -> &'static str {
        "null"
    }

    fn applies_to(&self, _ttype: TokenType) -> bool {
        false
    }

    fn validate(&self, _req: &TokenRequest, _testnet: &mut Chain) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_primitives::Address;

    struct RejectEverything;
    impl ValidationTool for RejectEverything {
        fn name(&self) -> &'static str {
            "reject-everything"
        }
        fn validate(&self, _req: &TokenRequest, _testnet: &mut Chain) -> Result<(), String> {
            Err("nope".into())
        }
    }

    #[test]
    fn default_applicability_is_argument_only() {
        let tool = RejectEverything;
        assert!(tool.applies_to(TokenType::Argument));
        assert!(!tool.applies_to(TokenType::Super));
        assert!(!tool.applies_to(TokenType::Method));
    }

    #[test]
    fn null_tool_applies_to_nothing() {
        let tool = NullTool;
        for ttype in TokenType::ALL {
            assert!(!tool.applies_to(ttype));
        }
        let mut chain = Chain::default_chain();
        let req = TokenRequest::super_token(Address::from_low_u64(1), Address::from_low_u64(2));
        assert!(tool.validate(&req, &mut chain).is_ok());
    }
}
