//! A replicated Token Service: N issuing nodes that survive failures
//! (§VII-B availability).
//!
//! "A TS service can be easily replicated as all its replicas can share
//! the same service key pair" — a [`ReplicaSet`] runs `n` full
//! [`TokenService`] instances, each behind its own [`HttpServer`] on its
//! own port, wired so the set behaves as one logical service:
//!
//! - **one signing identity**: every replica holds the same `sk_TS`, so a
//!   token minted anywhere verifies against the one `pk_TS` the shielded
//!   contract stores;
//! - **shared, sharded rule books** ([`ShardedRules`]): rules are sharded
//!   by contract address, each shard an `EpochCell` all replicas hold by
//!   `Arc` — an owner's `set_rules` through *any* replica propagates to
//!   all of them without stopping issuance anywhere;
//! - **quorum one-time counters** ([`CounterCluster`]): one-time indexes
//!   are allocated through a majority-quorum replicated counter with one
//!   counter node per replica. Lose a minority and issuance continues;
//!   lose a majority and one-time issuance *fails closed* with
//!   [`crate::api::ErrorCode::CounterUnavailable`] while expiry-token
//!   issuance keeps flowing — degraded, not dead;
//! - **discovery**: [`ReplicaSet::publish`] stamps every replica's
//!   directory with the full replica URL list, so any reachable replica
//!   can hand a client the directory it needs to fail over.
//!
//! [`ReplicaSet::kill`] takes a replica off the network (HTTP listener
//! closed, its counter node crashed); [`ReplicaSet::recover`] brings it
//! back *on the same address* with its counter node caught up, so clients
//! holding the old directory reconnect without re-discovery.
//! [`ReplicaSet::partition_counter`] fails only the counter node — the
//! replica keeps serving, modelling a network partition between the
//! consensus group and one member.
//!
//! Replicas live in one process here (this is a simulator), but nothing
//! crosses between them except the `Arc`s named above — the same state a
//! real deployment would replicate via its consensus layer.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use smacs_crypto::Keypair;
use smacs_primitives::Address;

use crate::discovery::ContractMetadata;
use crate::fault::FaultPlan;
use crate::front::FrontEnd;
use crate::http::{HttpServer, HttpServerConfig};
use crate::replica::CounterCluster;
use crate::rules::RuleBook;
use crate::service::{ShardedRules, TokenService, TokenServiceConfig};

/// Tuning for [`ReplicaSet::start`].
#[derive(Clone)]
pub struct ReplicaSetConfig {
    /// Number of replicas (HTTP servers *and* counter nodes).
    pub replicas: usize,
    /// Number of rule shards (contract address → shard).
    pub rule_shards: usize,
    /// Base owner bearer secret. Replicas do **not** share it verbatim:
    /// replica `id` accepts only the derived credential
    /// `{owner_secret}-r{id}` (see [`ReplicaSet::owner_secret`]), so a
    /// credential lifted from one replica's config names the replica it
    /// came from and is revoked by killing that one replica — no
    /// fleet-wide secret rotation.
    pub owner_secret: String,
    /// Per-replica service tuning.
    pub service: TokenServiceConfig,
    /// Per-replica HTTP server tuning. `bind` and `faults` are managed by
    /// the set and must be left `None`.
    pub http: HttpServerConfig,
    /// Initial TS-local clock.
    pub now: u64,
}

impl Default for ReplicaSetConfig {
    fn default() -> Self {
        ReplicaSetConfig {
            replicas: 3,
            rule_shards: 4,
            owner_secret: "replica-owner".into(),
            service: TokenServiceConfig::default(),
            http: HttpServerConfig::default(),
            now: 0,
        }
    }
}

/// One member of the set.
struct Replica {
    front: Arc<FrontEnd>,
    /// `None` while killed.
    server: Option<HttpServer>,
    /// The address this replica serves on — stable across kill/recover.
    addr: SocketAddr,
    faults: Arc<FaultPlan>,
}

/// A running replicated Token Service.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    counter: CounterCluster,
    rules: Arc<ShardedRules>,
    signer: Keypair,
    config: ReplicaSetConfig,
}

impl ReplicaSet {
    /// Start `config.replicas` issuing nodes sharing `signer`, an initial
    /// `rules` book, a quorum counter, and sharded rule state.
    ///
    /// # Panics
    /// Panics if `config.replicas == 0` or `config.rule_shards == 0`.
    pub fn start(
        signer: Keypair,
        rules: RuleBook,
        config: ReplicaSetConfig,
    ) -> std::io::Result<ReplicaSet> {
        assert!(config.replicas > 0, "need at least one replica");
        let counter = CounterCluster::new(config.replicas);
        let shards = ShardedRules::new(config.rule_shards, rules);
        let mut replicas = Vec::with_capacity(config.replicas);
        for id in 0..config.replicas {
            let service = TokenService::new(
                signer.clone(),
                RuleBook::permissive(), // replaced by the shared shards
                config.service.clone(),
            )
            .with_shared_rules(shards.clone())
            .with_replicated_counter(counter.clone());
            let front = Arc::new(FrontEnd::new(
                service,
                Self::derive_secret(&config.owner_secret, id),
                config.now,
            ));
            let faults = FaultPlan::new();
            let server = HttpServer::start_with(
                front.clone(),
                HttpServerConfig {
                    faults: Some(faults.clone()),
                    ..config.http.clone()
                },
            )?;
            let addr = server.addr();
            replicas.push(Replica {
                front,
                server: Some(server),
                addr,
                faults,
            });
        }
        Ok(ReplicaSet {
            replicas,
            counter,
            rules: shards,
            signer,
            config,
        })
    }

    /// Number of replicas (live or not).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True iff the set has no replicas (never: `start` requires > 0).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Every replica's address, in replica-id order — stable across
    /// kill/recover cycles.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.replicas.iter().map(|r| r.addr).collect()
    }

    /// Every replica's service URL, in replica-id order.
    pub fn urls(&self) -> Vec<String> {
        self.replicas
            .iter()
            .map(|r| format!("http://{}", r.addr))
            .collect()
    }

    /// The address form of the shared `pk_TS`.
    pub fn ts_address(&self) -> Address {
        self.signer.address()
    }

    fn derive_secret(base: &str, id: usize) -> String {
        format!("{base}-r{id}")
    }

    /// The bearer credential replica `id` accepts for admin operations
    /// (`set_rules`). Derived per replica from the configured base secret,
    /// so a leaked credential identifies its source replica and dies with
    /// it ([`ReplicaSet::kill`]) instead of forcing a fleet-wide
    /// rotation. Rule updates made through any one replica still bind all
    /// of them (shared shards) — the blast radius that shrinks is the
    /// *credential's*, not the operation's.
    ///
    /// Owner tooling that drives admin ops through a
    /// [`crate::FailoverClient`] must therefore pin the replica it talks
    /// to (or look the credential up per target): a mid-call failover
    /// lands on a replica that rejects the previous replica's secret.
    pub fn owner_secret(&self, id: usize) -> String {
        Self::derive_secret(&self.config.owner_secret, id)
    }

    /// Replica `id`'s front end (owner-side escape hatch: diagnostics,
    /// clock control).
    pub fn front(&self, id: usize) -> &Arc<FrontEnd> {
        &self.replicas[id].front
    }

    /// Replica `id`'s fault plan (chaos tests arm transport faults here).
    pub fn faults(&self, id: usize) -> &Arc<FaultPlan> {
        &self.replicas[id].faults
    }

    /// The shared quorum counter (diagnostics: committed index count,
    /// quorum state).
    pub fn counter(&self) -> &CounterCluster {
        &self.counter
    }

    /// The shared rule shards.
    pub fn rules(&self) -> &Arc<ShardedRules> {
        &self.rules
    }

    /// Whether replica `id` is currently serving.
    pub fn is_live(&self, id: usize) -> bool {
        self.replicas[id].server.is_some()
    }

    /// Number of replicas currently serving HTTP.
    pub fn live_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.server.is_some()).count()
    }

    /// Kill replica `id`: close its HTTP listener and parked connections,
    /// finish in-flight requests, and crash its counter node. Idempotent.
    pub fn kill(&mut self, id: usize) {
        if let Some(server) = self.replicas[id].server.take() {
            server.shutdown();
        }
        self.counter.kill(id);
    }

    /// Recover replica `id`: catch its counter node up and restart its
    /// HTTP server on the address clients already know. The listener port
    /// was freed by [`ReplicaSet::kill`]; rebinding retries briefly in
    /// case the OS is slow to release it.
    pub fn recover(&mut self, id: usize) -> std::io::Result<()> {
        self.counter.recover(id);
        if self.replicas[id].server.is_some() {
            return Ok(());
        }
        let addr = self.replicas[id].addr;
        let mut last_err = None;
        for _ in 0..50 {
            match HttpServer::start_with(
                self.replicas[id].front.clone(),
                HttpServerConfig {
                    bind: Some(addr),
                    faults: Some(self.replicas[id].faults.clone()),
                    ..self.config.http.clone()
                },
            ) {
                Ok(server) => {
                    self.replicas[id].server = Some(server);
                    return Ok(());
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        Err(last_err.expect("retry loop ran"))
    }

    /// Crash only replica `id`'s *counter node* — the replica keeps
    /// serving HTTP, but the consensus group lost a member (a partition
    /// between the node and its peers). Enough of these and one-time
    /// issuance fails closed everywhere.
    pub fn partition_counter(&self, id: usize) {
        self.counter.kill(id);
    }

    /// Heal a counter partition: the node rejoins and catches up.
    pub fn heal_counter(&self, id: usize) {
        self.counter.recover(id);
    }

    /// Whether the counter group currently has quorum (one-time issuance
    /// possible).
    pub fn has_quorum(&self) -> bool {
        self.counter.has_quorum()
    }

    /// Owner-side rule replacement, propagated to every replica through
    /// the shared shards.
    pub fn set_rules(&self, rules: RuleBook) {
        self.rules.store_all(rules);
    }

    /// Publish discovery metadata for `contract` to **every** replica's
    /// directory, stamped with the full replica URL list (primary = the
    /// publishing set's first replica). Any reachable replica can then
    /// hand a client the whole directory.
    pub fn publish(&self, contract: Address, name: impl Into<String>) {
        let urls = self.urls();
        let metadata = ContractMetadata {
            name: name.into(),
            compiler: "smacs replica-set".into(),
            token_service_url: urls.first().cloned(),
            replica_urls: urls,
        };
        for replica in &self.replicas {
            replica.front.publish(contract, metadata.clone());
        }
    }

    /// Set every replica's TS-local clock.
    pub fn set_time(&self, now: u64) {
        for replica in &self.replicas {
            replica.front.set_time(now);
        }
    }

    /// Advance every replica's TS-local clock.
    pub fn advance_time(&self, secs: u64) {
        for replica in &self.replicas {
            replica.front.advance_time(secs);
        }
    }

    /// Stop every replica and join every thread.
    pub fn shutdown(mut self) {
        for replica in &mut self.replicas {
            if let Some(server) = replica.server.take() {
                server.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ErrorCode;
    use crate::http::HttpClient;
    use crate::TsApi;
    use smacs_token::TokenRequest;

    fn request(low: u64) -> TokenRequest {
        TokenRequest::super_token(Address::from_low_u64(0xC0), Address::from_low_u64(low))
    }

    fn small_set(replicas: usize) -> ReplicaSet {
        ReplicaSet::start(
            Keypair::from_seed(900),
            RuleBook::permissive(),
            ReplicaSetConfig {
                replicas,
                ..ReplicaSetConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn every_replica_issues_verifiable_tokens() {
        let set = small_set(3);
        assert_eq!(set.live_count(), 3);
        for addr in set.addrs() {
            let client = HttpClient::connect(addr);
            let token = client.issue(&request(1)).unwrap();
            // Same signing identity everywhere.
            let ctx = smacs_token::PayloadContext {
                sender: Address::from_low_u64(1),
                contract: Address::from_low_u64(0xC0),
                selector: None,
                calldata: None,
            };
            let digest = smacs_token::signing_digest(token.ttype, token.expire, token.index, &ctx);
            assert_eq!(
                smacs_crypto::recover_address(&digest, &token.signature),
                Some(set.ts_address())
            );
        }
        set.shutdown();
    }

    #[test]
    fn rule_update_through_one_replica_binds_all() {
        let set = small_set(3);
        let clients: Vec<HttpClient> = set.addrs().into_iter().map(HttpClient::connect).collect();
        clients[0]
            .set_rules(&set.owner_secret(0), RuleBook::deny_all())
            .unwrap();
        for client in &clients {
            assert_eq!(
                client.issue(&request(1)).unwrap_err().code,
                ErrorCode::RuleViolation
            );
        }
        set.shutdown();
    }

    #[test]
    fn replica_credentials_do_not_cross_replicas() {
        let set = small_set(3);
        let clients: Vec<HttpClient> = set.addrs().into_iter().map(HttpClient::connect).collect();
        // Replica 1's credential is an opaque bearer secret to replica 0
        // (and the undifferentiated base secret works nowhere).
        assert_eq!(
            clients[0]
                .set_rules(&set.owner_secret(1), RuleBook::deny_all())
                .unwrap_err()
                .code,
            ErrorCode::Unauthorized
        );
        assert_eq!(
            clients[1]
                .set_rules("replica-owner", RuleBook::deny_all())
                .unwrap_err()
                .code,
            ErrorCode::Unauthorized
        );
        // The rejected updates changed nothing: issuance still flows.
        clients[2].issue(&request(1)).unwrap();
        // Each replica's own credential works against that replica.
        clients[1]
            .set_rules(&set.owner_secret(1), RuleBook::deny_all())
            .unwrap();
        set.shutdown();
    }

    #[test]
    fn one_time_indexes_are_unique_across_replicas() {
        let set = small_set(3);
        let clients: Vec<HttpClient> = set.addrs().into_iter().map(HttpClient::connect).collect();
        let mut indexes = Vec::new();
        for round in 0..4 {
            for (c, client) in clients.iter().enumerate() {
                let token = client
                    .issue(&request(10 + round * 10 + c as u64).one_time())
                    .unwrap();
                indexes.push(token.index);
            }
        }
        let total = indexes.len();
        indexes.sort_unstable();
        indexes.dedup();
        assert_eq!(indexes.len(), total, "replicas reused a one-time index");
        set.shutdown();
    }

    #[test]
    fn killed_replica_frees_its_address_and_recovers_on_it() {
        let mut set = small_set(3);
        let addr = set.addrs()[1];
        set.kill(1);
        assert!(!set.is_live(1));
        assert_eq!(set.live_count(), 2);
        // Dead replica refuses connections…
        assert!(HttpClient::connect(addr).ping().is_err());
        // …but the set still has counter quorum and the others serve.
        assert!(set.has_quorum());
        HttpClient::connect(set.addrs()[0])
            .issue(&request(1).one_time())
            .unwrap();

        set.recover(1).unwrap();
        assert!(set.is_live(1));
        // Same address as before.
        assert_eq!(set.addrs()[1], addr);
        HttpClient::connect(addr).ping().unwrap();
        set.shutdown();
    }

    #[test]
    fn discovery_metadata_lists_every_replica() {
        let set = small_set(3);
        let contract = Address::from_low_u64(0xCAFE);
        set.publish(contract, "Vault");
        // Ask a non-primary replica: it still knows the whole directory.
        let client = HttpClient::connect(set.addrs()[2]);
        let metadata = client.discover(contract).unwrap().unwrap();
        assert_eq!(metadata.replica_urls, set.urls());
        assert_eq!(metadata.all_service_urls(), set.urls());
        set.shutdown();
    }
}
