//! A replicated Token Service: N issuing nodes that survive failures
//! (§VII-B availability).
//!
//! "A TS service can be easily replicated as all its replicas can share
//! the same service key pair" — a [`ReplicaSet`] runs `n` full
//! [`TokenService`] instances, each behind its own [`HttpServer`] on its
//! own port, wired so the set behaves as one logical service:
//!
//! - **one signing identity**: every replica holds the same `sk_TS`, so a
//!   token minted anywhere verifies against the one `pk_TS` the shielded
//!   contract stores;
//! - **shared, sharded rule books** ([`ShardedRules`]): rules are sharded
//!   by contract address, each shard an `EpochCell` all replicas hold by
//!   `Arc` — an owner's `set_rules` through *any* replica propagates to
//!   all of them without stopping issuance anywhere;
//! - **quorum one-time counters** ([`CounterCluster`]): one-time indexes
//!   are allocated through a majority-quorum replicated counter with one
//!   counter node per replica. Lose a minority and issuance continues;
//!   lose a majority and one-time issuance *fails closed* with
//!   [`crate::api::ErrorCode::CounterUnavailable`] while expiry-token
//!   issuance keeps flowing — degraded, not dead;
//! - **discovery**: [`ReplicaSet::publish`] stamps every replica's
//!   directory with the full replica URL list, so any reachable replica
//!   can hand a client the directory it needs to fail over.
//!
//! ## The counter quorum is on the wire
//!
//! By default ([`CounterMode::Wire`]) counter votes are real protocol-v2
//! messages: each replica serves the `counter_prepare` / `counter_commit`
//! / `counter_catchup` op family on a **dedicated vote endpoint** (its
//! own `HttpServer` with a small private pool, so issuance load can never
//! starve vote processing into a distributed deadlock). The vote op
//! family is served *only* there: the client-facing listeners run with
//! [`crate::front::EndpointScope::Public`] and refuse `counter_*` with
//! `counter_unavailable`, so a hostile client cannot vote indexes burned
//! or skipped. Each replica's coordinator reaches its peers through a wire
//! [`CounterTransport`] — its own node stays a [`LocalTransport`], since
//! a replica never loses the network to itself. Every node write-ahead
//! logs its commits ([`crate::wal::Wal`], fsync before ack), so
//! [`ReplicaSet::recover`] rebuilds a crashed replica's vote state from
//! its WAL (RAM is explicitly discarded) and then catches it up past any
//! indexes it missed via `counter_catchup`. [`CounterMode::InProcess`]
//! keeps the PR-4 shared-memory cluster for comparison and unit tests.
//!
//! The *sending* side of every wire transport consults its replica's
//! [`FaultPlan`] per peer address, which is how the chaos suite drives
//! asymmetric partitions ([`FaultPlan::partition_addr`]), delayed/
//! reordered votes ([`FaultPlan::delay_votes_to`]), and duplicated votes
//! ([`FaultPlan::duplicate_votes`]) without faking anything above the
//! transport.
//!
//! [`ReplicaSet::kill`] takes a replica off the network (both listeners
//! closed, its counter node crashed); [`ReplicaSet::recover`] brings it
//! back *on the same addresses* with its counter state replayed from WAL
//! and caught up, so clients holding the old directory reconnect without
//! re-discovery. [`ReplicaSet::partition_counter`] fails only the counter
//! node — the replica keeps serving, modelling a network partition
//! between the consensus group and one member.
//!
//! Replicas live in one process here (this is a simulator), but in wire
//! mode nothing crosses between their counter nodes except TCP — the
//! shared `Arc`s are limited to the signing key and rule shards a real
//! deployment would distribute out of band.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use smacs_crypto::Keypair;
use smacs_primitives::json::{FromJson, Json, ToJson};
use smacs_primitives::Address;

use crate::api::{CounterCommitBody, CounterStateBody, CounterVoteBody};
use crate::discovery::ContractMetadata;
use crate::endpoint::Endpoint;
use crate::fault::FaultPlan;
use crate::front::{EndpointScope, FrontEnd};
use crate::http::{HttpClient, HttpClientConfig, HttpServerConfig};
use crate::replica::{CommitReply, CounterCluster, CounterNode, CounterTransport, LocalTransport};
use crate::rules::RuleBook;
use crate::service::{ShardedRules, TokenService, TokenServiceConfig};

/// Distinguishes WAL directories of concurrently running sets in one
/// process (the test suite starts many).
static SET_SEQ: AtomicUsize = AtomicUsize::new(0);

/// How one-time counter votes travel between replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterMode {
    /// Votes are protocol-v2 `counter_*` ops over TCP against each
    /// replica's dedicated vote endpoint; commits are WAL-durable. The
    /// default — the distributed protocol the chaos suite certifies.
    Wire,
    /// Votes go through shared memory (the PR-4 form). No vote endpoints,
    /// no WAL unless [`ReplicaSetConfig::wal_dir`] is set.
    InProcess,
}

/// Tuning for [`ReplicaSet::start`].
#[derive(Clone)]
pub struct ReplicaSetConfig {
    /// Number of replicas (HTTP servers *and* counter nodes).
    pub replicas: usize,
    /// Number of rule shards (contract address → shard).
    pub rule_shards: usize,
    /// Base owner bearer secret. Replicas do **not** share it verbatim:
    /// replica `id` accepts only the derived credential
    /// `{owner_secret}-r{id}` (see [`ReplicaSet::owner_secret`]), so a
    /// credential lifted from one replica's config names the replica it
    /// came from and is revoked by killing that one replica — no
    /// fleet-wide secret rotation.
    pub owner_secret: String,
    /// Per-replica service tuning.
    pub service: TokenServiceConfig,
    /// Per-replica HTTP server tuning. `bind` and `faults` are managed by
    /// the set and must be left `None`; `scope` must stay
    /// [`EndpointScope::Public`] (these are the client-facing listeners —
    /// the set builds its own vote endpoints).
    pub http: HttpServerConfig,
    /// Initial TS-local clock.
    pub now: u64,
    /// How counter votes travel (default: [`CounterMode::Wire`]).
    pub counter_mode: CounterMode,
    /// Directory for per-replica counter WALs (`counter-{id}.wal`).
    /// `None`: wire mode logs into a fresh per-set temp directory that is
    /// removed on [`ReplicaSet::shutdown`]; in-process mode runs
    /// memory-only. `Some(dir)`: logs persist there across sets (the
    /// caller owns cleanup), in either mode.
    pub wal_dir: Option<PathBuf>,
}

impl Default for ReplicaSetConfig {
    fn default() -> Self {
        ReplicaSetConfig {
            replicas: 3,
            rule_shards: 4,
            owner_secret: "replica-owner".into(),
            service: TokenServiceConfig::default(),
            http: HttpServerConfig::default(),
            now: 0,
            counter_mode: CounterMode::Wire,
            wal_dir: None,
        }
    }
}

/// Socket tuning for vote round trips: peers are near (same rack — here,
/// loopback), votes are tiny, and a dead peer should cost a bounded,
/// snappy timeout rather than a client-grade 10 s stall per allocation.
fn vote_client_config() -> HttpClientConfig {
    HttpClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
    }
}

/// Pool sizing for the dedicated vote endpoints: vote handling is a
/// mutex-guarded counter bump plus a WAL append — two workers keep a
/// coordinator and a recovering peer served without stealing cores from
/// issuance. The [`EndpointScope::Vote`] these bind under is what admits
/// the `counter_*` op family: the client-facing listeners stay
/// [`EndpointScope::Public`] and refuse those ops, so outsiders cannot
/// burn index ranges. (The scope itself is pinned by [`Endpoint::bind`],
/// not this config.)
fn vote_server_config() -> HttpServerConfig {
    HttpServerConfig::builder()
        .workers(2)
        .queue_capacity(64)
        .build()
}

/// The wire [`CounterTransport`]: speaks the `counter_*` op family to one
/// peer's vote endpoint over a keep-alive [`HttpClient`], consulting the
/// owning replica's [`FaultPlan`] before every send (address-scoped
/// partition, vote delay, duplicate delivery).
///
/// The target starts unset (peer endpoints aren't known until every vote
/// server is bound) and is filled in once by `ReplicaSet::start`; an
/// unset transport reports the peer unreachable, which fails closed.
struct WireCounterTransport {
    target: Mutex<Option<Arc<HttpClient>>>,
    faults: Arc<FaultPlan>,
}

impl WireCounterTransport {
    fn new(faults: Arc<FaultPlan>) -> Arc<WireCounterTransport> {
        Arc::new(WireCounterTransport {
            target: Mutex::new(None),
            faults,
        })
    }

    fn set_target(&self, addr: SocketAddr) {
        *self.target.lock() = Some(Arc::new(HttpClient::connect_with(
            addr,
            vote_client_config(),
        )));
    }

    /// One vote send, with sender-side fault injection. `idempotent`
    /// gates the transport's replay-on-reconnect: reads are; `commit` is
    /// not (a lost commit ack must surface as "unreachable", not be
    /// silently re-sent and come back `accepted: false`).
    fn call(&self, op: &str, body: Option<Json>, idempotent: bool) -> Option<Json> {
        let client = self.target.lock().clone()?;
        let addr = client.addr();
        if self.faults.is_partitioned(addr) {
            return None;
        }
        if let Some(delay) = self.faults.vote_delay(addr) {
            std::thread::sleep(delay);
        }
        let duplicate = self.faults.take_duplicate_vote();
        let reply = client.call_detailed(op, body.clone(), idempotent).ok();
        if duplicate {
            // Duplicate delivery: the echo reaches the node, its reply is
            // discarded — the vote state machine must treat it as a no-op.
            let _ = client.call_detailed(op, body, idempotent);
        }
        reply
    }
}

impl CounterTransport for WireCounterTransport {
    fn prepare(&self) -> Option<u64> {
        let body = self.call("counter_prepare", None, true)?;
        Some(CounterStateBody::from_json(&body).ok()?.committed)
    }

    fn commit(&self, value: u64) -> Option<CommitReply> {
        let body = self.call(
            "counter_commit",
            Some(CounterCommitBody { value }.to_json()),
            false,
        )?;
        let vote = CounterVoteBody::from_json(&body).ok()?;
        Some(CommitReply {
            accepted: vote.accepted,
            committed: vote.committed,
        })
    }

    fn catchup(&self) -> Option<u64> {
        let body = self.call("counter_catchup", None, true)?;
        Some(CounterStateBody::from_json(&body).ok()?.committed)
    }
}

/// One member of the set.
struct Replica {
    front: Arc<FrontEnd>,
    /// `None` while killed.
    server: Option<Endpoint>,
    /// The address this replica serves on — stable across kill/recover.
    addr: SocketAddr,
    faults: Arc<FaultPlan>,
    /// This replica's counter node (vote state machine).
    node: Arc<CounterNode>,
    /// Wire mode: the dedicated vote endpoint (`None` while killed, and
    /// always `None` in in-process mode).
    counter_server: Option<Endpoint>,
    /// Wire mode: the vote endpoint's address — stable across
    /// kill/recover.
    counter_addr: Option<SocketAddr>,
    /// This replica's coordinator view of the quorum (self local, peers
    /// wired in wire mode; the one shared cluster in in-process mode).
    cluster: CounterCluster,
}

/// A running replicated Token Service.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    /// Set-level diagnostics view: local transports over every node.
    counter: CounterCluster,
    rules: Arc<ShardedRules>,
    signer: Keypair,
    config: ReplicaSetConfig,
    /// A WAL temp directory this set created and owns (removed on
    /// shutdown); `None` when the caller supplied `wal_dir` or no WAL is
    /// in play.
    owned_wal_dir: Option<PathBuf>,
}

impl ReplicaSet {
    /// Start `config.replicas` issuing nodes sharing `signer`, an initial
    /// `rules` book, a quorum counter, and sharded rule state.
    ///
    /// # Panics
    /// Panics if `config.replicas == 0` or `config.rule_shards == 0`.
    pub fn start(
        signer: Keypair,
        rules: RuleBook,
        config: ReplicaSetConfig,
    ) -> std::io::Result<ReplicaSet> {
        assert!(config.replicas > 0, "need at least one replica");

        // WAL placement: wire mode always logs (own temp dir if the
        // caller didn't name one); in-process mode logs only on request.
        let mut owned_wal_dir = None;
        let wal_dir = match (&config.wal_dir, config.counter_mode) {
            (Some(dir), _) => {
                std::fs::create_dir_all(dir)?;
                Some(dir.clone())
            }
            (None, CounterMode::Wire) => {
                let mut dir = std::env::temp_dir();
                dir.push(format!(
                    "smacs-replica-wal-{}-{}",
                    std::process::id(),
                    SET_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&dir)?;
                owned_wal_dir = Some(dir.clone());
                Some(dir)
            }
            (None, CounterMode::InProcess) => None,
        };

        let mut nodes = Vec::with_capacity(config.replicas);
        for id in 0..config.replicas {
            nodes.push(match &wal_dir {
                Some(dir) => CounterNode::with_wal(&dir.join(format!("counter-{id}.wal")))?.0,
                None => CounterNode::new(),
            });
        }
        let diag = CounterCluster::from_nodes(nodes.clone());

        let shards = ShardedRules::new(config.rule_shards, rules);
        let faults: Vec<Arc<FaultPlan>> = (0..config.replicas).map(|_| FaultPlan::new()).collect();

        // Per-replica coordinator clusters. In wire mode replica `i`
        // reaches itself locally and each peer `j` through a wire
        // transport whose target is filled in once the vote endpoints are
        // bound below.
        let mut wires: Vec<Vec<(usize, Arc<WireCounterTransport>)>> = Vec::new();
        let clusters: Vec<CounterCluster> = match config.counter_mode {
            CounterMode::InProcess => (0..config.replicas).map(|_| diag.clone()).collect(),
            CounterMode::Wire => (0..config.replicas)
                .map(|i| {
                    let mut outgoing = Vec::new();
                    let members = (0..config.replicas)
                        .map(|j| -> Arc<dyn CounterTransport> {
                            if i == j {
                                Arc::new(LocalTransport(nodes[i].clone()))
                            } else {
                                let wire = WireCounterTransport::new(faults[i].clone());
                                outgoing.push((j, wire.clone()));
                                wire
                            }
                        })
                        .collect();
                    wires.push(outgoing);
                    CounterCluster::from_transports(members)
                })
                .collect(),
        };

        let mut replicas = Vec::with_capacity(config.replicas);
        for (id, cluster) in clusters.into_iter().enumerate() {
            let service = TokenService::new(
                signer.clone(),
                RuleBook::permissive(), // replaced by the shared shards
                config.service.clone(),
            )
            .with_shared_rules(shards.clone())
            .with_replicated_counter(cluster.clone());
            let front = Arc::new(
                FrontEnd::new(
                    service,
                    Self::derive_secret(&config.owner_secret, id),
                    config.now,
                )
                .with_counter(nodes[id].clone()),
            );
            let counter_server = match config.counter_mode {
                CounterMode::Wire => Some(Endpoint::bind(
                    front.clone(),
                    EndpointScope::Vote,
                    vote_server_config(),
                )?),
                CounterMode::InProcess => None,
            };
            let counter_addr = counter_server.as_ref().map(Endpoint::addr);
            let server = Endpoint::bind(
                front.clone(),
                EndpointScope::Public,
                HttpServerConfig {
                    faults: Some(faults[id].clone()),
                    ..config.http.clone()
                },
            )?;
            let addr = server.addr();
            replicas.push(Replica {
                front,
                server: Some(server),
                addr,
                faults: faults[id].clone(),
                node: nodes[id].clone(),
                counter_server,
                counter_addr,
                cluster,
            });
        }

        // Vote endpoints are all bound now — aim every wire transport at
        // its peer.
        for (i, outgoing) in wires.into_iter().enumerate() {
            let _ = i;
            for (j, wire) in outgoing {
                wire.set_target(
                    replicas[j]
                        .counter_addr
                        .expect("wire mode binds a vote endpoint per replica"),
                );
            }
        }

        Ok(ReplicaSet {
            replicas,
            counter: diag,
            rules: shards,
            signer,
            config,
            owned_wal_dir,
        })
    }

    /// Number of replicas (live or not).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True iff the set has no replicas (never: `start` requires > 0).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Every replica's address, in replica-id order — stable across
    /// kill/recover cycles.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.replicas.iter().map(|r| r.addr).collect()
    }

    /// Every replica's service URL, in replica-id order.
    pub fn urls(&self) -> Vec<String> {
        self.replicas
            .iter()
            .map(|r| format!("http://{}", r.addr))
            .collect()
    }

    /// Replica `id`'s vote-endpoint address (wire mode; `None` in
    /// in-process mode). Chaos tests scope partition/delay faults to
    /// these addresses.
    pub fn counter_addr(&self, id: usize) -> Option<SocketAddr> {
        self.replicas[id].counter_addr
    }

    /// The address form of the shared `pk_TS`.
    pub fn ts_address(&self) -> Address {
        self.signer.address()
    }

    fn derive_secret(base: &str, id: usize) -> String {
        format!("{base}-r{id}")
    }

    /// The bearer credential replica `id` accepts for admin operations
    /// (`set_rules`). Derived per replica from the configured base secret,
    /// so a leaked credential identifies its source replica and dies with
    /// it ([`ReplicaSet::kill`]) instead of forcing a fleet-wide
    /// rotation. Rule updates made through any one replica still bind all
    /// of them (shared shards) — the blast radius that shrinks is the
    /// *credential's*, not the operation's.
    ///
    /// Owner tooling that drives admin ops through a
    /// [`crate::FailoverClient`] must therefore pin the replica it talks
    /// to (or look the credential up per target): a mid-call failover
    /// lands on a replica that rejects the previous replica's secret.
    pub fn owner_secret(&self, id: usize) -> String {
        Self::derive_secret(&self.config.owner_secret, id)
    }

    /// Replica `id`'s front end (owner-side escape hatch: diagnostics,
    /// clock control).
    pub fn front(&self, id: usize) -> &Arc<FrontEnd> {
        &self.replicas[id].front
    }

    /// Replica `id`'s fault plan (chaos tests arm transport faults here —
    /// including the address-scoped vote faults this replica applies when
    /// *sending* to peers).
    pub fn faults(&self, id: usize) -> &Arc<FaultPlan> {
        &self.replicas[id].faults
    }

    /// Replica `id`'s counter node (vote state machine) — diagnostics and
    /// crash simulation.
    pub fn counter_node(&self, id: usize) -> &Arc<CounterNode> {
        &self.replicas[id].node
    }

    /// The quorum counter's set-level diagnostics view (committed index
    /// count, quorum state). In wire mode this reads node state directly
    /// — the authoritative view an operator's metrics would aggregate.
    pub fn counter(&self) -> &CounterCluster {
        &self.counter
    }

    /// The shared rule shards.
    pub fn rules(&self) -> &Arc<ShardedRules> {
        &self.rules
    }

    /// Whether replica `id` is currently serving.
    pub fn is_live(&self, id: usize) -> bool {
        self.replicas[id].server.is_some()
    }

    /// Number of replicas currently serving HTTP.
    pub fn live_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.server.is_some()).count()
    }

    /// Kill replica `id`: close its HTTP listeners (client-facing *and*
    /// vote endpoint) and parked connections, finish in-flight requests,
    /// and crash its counter node. Its WAL survives on disk — that is the
    /// point. Idempotent.
    pub fn kill(&mut self, id: usize) {
        if let Some(server) = self.replicas[id].server.take() {
            server.shutdown();
        }
        if let Some(server) = self.replicas[id].counter_server.take() {
            server.shutdown();
        }
        self.replicas[id].node.crash();
    }

    /// Recover replica `id` on the addresses clients already know.
    ///
    /// The counter state is rebuilt the way a real restart would: the
    /// node's in-memory frontier is **discarded** and replayed from its
    /// WAL (torn tail truncated), then caught up past any indexes it
    /// missed via `counter_catchup` through this replica's own transports
    /// — over the wire in wire mode. Only then do the listeners come
    /// back. The listener ports were freed by [`ReplicaSet::kill`];
    /// rebinding retries briefly in case the OS is slow to release them.
    pub fn recover(&mut self, id: usize) -> std::io::Result<()> {
        let replica = &self.replicas[id];
        replica.node.reload_from_wal()?;
        replica.node.revive();
        // `committed()` polls every member (self locally, peers over the
        // wire) — the max is the cluster frontier to adopt.
        let frontier = replica.cluster.committed();
        replica.node.adopt(frontier)?;

        if let (None, Some(addr)) = (&replica.counter_server, replica.counter_addr) {
            let server = Endpoint::bind_retry(
                replica.front.clone(),
                EndpointScope::Vote,
                HttpServerConfig {
                    bind: Some(addr),
                    ..vote_server_config()
                },
            )?;
            self.replicas[id].counter_server = Some(server);
        }
        if self.replicas[id].server.is_none() {
            let server = Endpoint::bind_retry(
                self.replicas[id].front.clone(),
                EndpointScope::Public,
                HttpServerConfig {
                    bind: Some(self.replicas[id].addr),
                    faults: Some(self.replicas[id].faults.clone()),
                    ..self.config.http.clone()
                },
            )?;
            self.replicas[id].server = Some(server);
        }
        Ok(())
    }

    /// Crash only replica `id`'s *counter node* — the replica keeps
    /// serving HTTP (its vote endpoint answers `counter_unavailable`),
    /// but the consensus group lost a member: a partition between the
    /// node and its peers. Enough of these and one-time issuance fails
    /// closed everywhere.
    pub fn partition_counter(&self, id: usize) {
        self.replicas[id].node.crash();
    }

    /// Heal a counter partition: the node rejoins and catches up. Errs if
    /// the caught-up frontier cannot be made durable (the node then keeps
    /// its old state — fail closed).
    pub fn heal_counter(&self, id: usize) -> std::io::Result<()> {
        self.replicas[id].node.revive();
        let frontier = self.replicas[id].cluster.committed();
        self.replicas[id].node.adopt(frontier)
    }

    /// Whether the counter group currently has quorum (one-time issuance
    /// possible).
    pub fn has_quorum(&self) -> bool {
        self.counter.has_quorum()
    }

    /// Owner-side rule replacement, propagated to every replica through
    /// the shared shards.
    pub fn set_rules(&self, rules: RuleBook) {
        self.rules.store_all(rules);
    }

    /// Publish discovery metadata for `contract` to **every** replica's
    /// directory, stamped with the full replica URL list (primary = the
    /// publishing set's first replica). Any reachable replica can then
    /// hand a client the whole directory.
    pub fn publish(&self, contract: Address, name: impl Into<String>) {
        let urls = self.urls();
        let metadata = ContractMetadata {
            name: name.into(),
            compiler: "smacs replica-set".into(),
            token_service_url: urls.first().cloned(),
            replica_urls: urls,
        };
        for replica in &self.replicas {
            replica.front.publish(contract, metadata.clone());
        }
    }

    /// Set every replica's TS-local clock.
    pub fn set_time(&self, now: u64) {
        for replica in &self.replicas {
            replica.front.set_time(now);
        }
    }

    /// Advance every replica's TS-local clock.
    pub fn advance_time(&self, secs: u64) {
        for replica in &self.replicas {
            replica.front.advance_time(secs);
        }
    }

    /// Stop every replica (both listeners) and join every thread; remove
    /// the WAL temp directory if this set created one.
    pub fn shutdown(mut self) {
        for replica in &mut self.replicas {
            if let Some(server) = replica.server.take() {
                server.shutdown();
            }
            if let Some(server) = replica.counter_server.take() {
                server.shutdown();
            }
        }
        if let Some(dir) = self.owned_wal_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ErrorCode;
    use crate::http::HttpClient;
    use crate::TsApi;
    use smacs_token::TokenRequest;

    fn request(low: u64) -> TokenRequest {
        TokenRequest::super_token(Address::from_low_u64(0xC0), Address::from_low_u64(low))
    }

    fn small_set(replicas: usize) -> ReplicaSet {
        ReplicaSet::start(
            Keypair::from_seed(900),
            RuleBook::permissive(),
            ReplicaSetConfig {
                replicas,
                ..ReplicaSetConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn every_replica_issues_verifiable_tokens() {
        let set = small_set(3);
        assert_eq!(set.live_count(), 3);
        for addr in set.addrs() {
            let client = HttpClient::connect(addr);
            let token = client.issue(&request(1)).unwrap();
            // Same signing identity everywhere.
            let ctx = smacs_token::PayloadContext {
                sender: Address::from_low_u64(1),
                contract: Address::from_low_u64(0xC0),
                selector: None,
                calldata: None,
            };
            let digest = smacs_token::signing_digest(token.ttype, token.expire, token.index, &ctx);
            assert_eq!(
                smacs_crypto::recover_address(&digest, &token.signature),
                Some(set.ts_address())
            );
        }
        set.shutdown();
    }

    #[test]
    fn rule_update_through_one_replica_binds_all() {
        let set = small_set(3);
        let clients: Vec<HttpClient> = set.addrs().into_iter().map(HttpClient::connect).collect();
        clients[0]
            .set_rules(&set.owner_secret(0), RuleBook::deny_all())
            .unwrap();
        for client in &clients {
            assert_eq!(
                client.issue(&request(1)).unwrap_err().code,
                ErrorCode::RuleViolation
            );
        }
        set.shutdown();
    }

    #[test]
    fn replica_credentials_do_not_cross_replicas() {
        let set = small_set(3);
        let clients: Vec<HttpClient> = set.addrs().into_iter().map(HttpClient::connect).collect();
        // Replica 1's credential is an opaque bearer secret to replica 0
        // (and the undifferentiated base secret works nowhere).
        assert_eq!(
            clients[0]
                .set_rules(&set.owner_secret(1), RuleBook::deny_all())
                .unwrap_err()
                .code,
            ErrorCode::Unauthorized
        );
        assert_eq!(
            clients[1]
                .set_rules("replica-owner", RuleBook::deny_all())
                .unwrap_err()
                .code,
            ErrorCode::Unauthorized
        );
        // The rejected updates changed nothing: issuance still flows.
        clients[2].issue(&request(1)).unwrap();
        // Each replica's own credential works against that replica.
        clients[1]
            .set_rules(&set.owner_secret(1), RuleBook::deny_all())
            .unwrap();
        set.shutdown();
    }

    #[test]
    fn one_time_indexes_are_unique_across_replicas() {
        let set = small_set(3);
        let clients: Vec<HttpClient> = set.addrs().into_iter().map(HttpClient::connect).collect();
        let mut indexes = Vec::new();
        for round in 0..4 {
            for (c, client) in clients.iter().enumerate() {
                let token = client
                    .issue(&request(10 + round * 10 + c as u64).one_time())
                    .unwrap();
                indexes.push(token.index);
            }
        }
        let total = indexes.len();
        indexes.sort_unstable();
        indexes.dedup();
        assert_eq!(indexes.len(), total, "replicas reused a one-time index");
        set.shutdown();
    }

    #[test]
    fn killed_replica_frees_its_address_and_recovers_on_it() {
        let mut set = small_set(3);
        let addr = set.addrs()[1];
        set.kill(1);
        assert!(!set.is_live(1));
        assert_eq!(set.live_count(), 2);
        // Dead replica refuses connections…
        assert!(HttpClient::connect(addr).ping().is_err());
        // …but the set still has counter quorum and the others serve.
        assert!(set.has_quorum());
        HttpClient::connect(set.addrs()[0])
            .issue(&request(1).one_time())
            .unwrap();

        set.recover(1).unwrap();
        assert!(set.is_live(1));
        // Same address as before.
        assert_eq!(set.addrs()[1], addr);
        HttpClient::connect(addr).ping().unwrap();
        set.shutdown();
    }

    #[test]
    fn discovery_metadata_lists_every_replica() {
        let set = small_set(3);
        let contract = Address::from_low_u64(0xCAFE);
        set.publish(contract, "Vault");
        // Ask a non-primary replica: it still knows the whole directory.
        let client = HttpClient::connect(set.addrs()[2]);
        let metadata = client.discover(contract).unwrap().unwrap();
        assert_eq!(metadata.replica_urls, set.urls());
        assert_eq!(metadata.all_service_urls(), set.urls());
        set.shutdown();
    }

    #[test]
    fn vote_endpoints_answer_the_counter_op_family() {
        let set = small_set(3);
        let vote_addr = set.counter_addr(1).expect("wire mode has vote endpoints");
        let client = HttpClient::connect(vote_addr);
        // Phase-1 read.
        let body = client
            .call_detailed("counter_prepare", None, true)
            .expect("prepare answers");
        assert_eq!(CounterStateBody::from_json(&body).unwrap().committed, 0);
        // An external commit at the frontier is accepted; its echo is not.
        let commit = |value: u64| {
            let body = client
                .call_detailed(
                    "counter_commit",
                    Some(CounterCommitBody { value }.to_json()),
                    false,
                )
                .expect("commit answers");
            CounterVoteBody::from_json(&body).unwrap()
        };
        assert!(commit(0).accepted);
        assert!(!commit(0).accepted, "duplicate vote rejected over the wire");
        assert_eq!(commit(0).committed, 1);
        set.shutdown();
    }

    #[test]
    fn public_endpoints_refuse_the_counter_op_family() {
        // The vote ops are replica-internal. A client aiming them at the
        // *public* address must get `counter_unavailable` — otherwise any
        // outsider could burn or skip one-time index ranges and subvert
        // the quorum the chaos suite certifies.
        let set = small_set(3);
        let client = HttpClient::connect(set.addrs()[1]);
        let err = client
            .call_detailed(
                "counter_commit",
                Some(CounterCommitBody { value: 0 }.to_json()),
                false,
            )
            .expect_err("public endpoint must refuse vote ops")
            .into_api();
        assert_eq!(err.code, ErrorCode::CounterUnavailable);
        for op in ["counter_prepare", "counter_catchup"] {
            let err = client
                .call_detailed(op, None, true)
                .expect_err("public endpoint must refuse vote ops")
                .into_api();
            assert_eq!(err.code, ErrorCode::CounterUnavailable);
        }
        // Nothing was burned or skipped by the refused commit: the next
        // legitimate one-time issuance still gets index 0.
        assert_eq!(set.counter().committed(), 0);
        let token = client.issue(&request(1).one_time()).unwrap();
        assert_eq!(token.index, 0);
        set.shutdown();
    }

    #[test]
    fn in_process_mode_still_serves_one_time_issuance() {
        let set = ReplicaSet::start(
            Keypair::from_seed(901),
            RuleBook::permissive(),
            ReplicaSetConfig {
                counter_mode: CounterMode::InProcess,
                ..ReplicaSetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(set.counter_addr(0), None, "no vote endpoints in-process");
        let client = HttpClient::connect(set.addrs()[2]);
        let a = client.issue(&request(1).one_time()).unwrap();
        let b = client.issue(&request(2).one_time()).unwrap();
        assert_ne!(a.index, b.index);
        assert_eq!(set.counter().committed(), 2);
        set.shutdown();
    }

    #[test]
    fn wire_set_survives_full_stop_and_restart_via_wal() {
        // Kill *every* replica (all RAM state discarded), recover all:
        // without the WAL the counter would restart at 0 and re-issue
        // index 0 — the exact §VII-B violation this layer exists to stop.
        let mut set = small_set(3);
        let client = HttpClient::connect(set.addrs()[0]);
        for low in 1..=4 {
            client.issue(&request(low).one_time()).unwrap();
        }
        assert_eq!(set.counter().committed(), 4);
        for id in 0..3 {
            set.kill(id);
        }
        for id in 0..3 {
            set.recover(id).unwrap();
        }
        assert_eq!(
            set.counter().committed(),
            4,
            "committed state must survive a whole-set restart"
        );
        let client = HttpClient::connect(set.addrs()[1]);
        let token = client.issue(&request(9).one_time()).unwrap();
        assert_eq!(
            token.index, 4,
            "post-restart issuance continues, not repeats"
        );
        set.shutdown();
    }
}
