//! # smacs-ts — the off-chain Token Service
//!
//! The TS (§III-A, §IV) is "responsible for verifying requests from clients
//! and issuing access control tokens accordingly". It consists of the three
//! modules Fig. 1 draws:
//!
//! - the **client-facing API** ([`api`]): the transport-agnostic [`TsApi`]
//!   trait (`issue`, `issue_batch`, `set_rules`, `discover`, `ping`) with
//!   an [`InProcessClient`] for co-located callers and an
//!   [`http::HttpClient`] speaking the versioned wire protocol v2 over a
//!   keep-alive connection — batch issuance amortizes per-request wire
//!   overhead, and error codes mirror [`IssueError`] without leaking rule
//!   detail (§VII-A d);
//! - the **front end** ([`front`] for the JSON protocols — v2 envelopes
//!   plus the legacy v1 shapes — and [`http`] for the threaded TCP/HTTP
//!   server) through which owners and clients interact;
//! - the **access granting** module ([`service`]) that checks rule
//!   compliance ([`rules`] — Fig. 6's white/blacklists, dynamically
//!   updatable by the owner without touching the deployed contract) and
//!   signs tokens;
//! - the **validation** module ([`validation`]) hosting pluggable
//!   runtime-verification tools (Hydra uniformity and the ECF checker live
//!   in the `smacs-verifiers` crate and plug in through the
//!   [`validation::ValidationTool`] trait, running against a forked local
//!   testnet as §V describes).
//!
//! For availability (§VII-B), one-time indexes can come from a
//! [`replica::CounterCluster`] — a majority-quorum replicated counter —
//! instead of the single-node atomic counter. [`discovery`] implements the
//! §VII-B service-discovery metadata (contract address → TS URL), and
//! [`store`] persists rules and the signing key to disk (the prototype's
//! node-localStorage analog).
//!
//! # Threading model
//!
//! The whole TS hot path scales with cores through one shared
//! [`smacs_primitives::pool::WorkerPool`] fed by a readiness-driven
//! reactor (epoll) — no thread ever sweeps or sleeps per connection:
//!
//! ```text
//! reactor (1 thread, epoll_wait) ──readable conn──▶ high-priority lane ─┐
//!   │  owns: listener + every parked                                    │
//!   │  keep-alive conn + eventfd wake     worker pool (fixed N threads)─┤
//!   ├──listener readable──▶ low-priority lane ──▶ accept drain          │
//!   │       (signing never queues behind accepts)                       │
//!   ◀──────── park idle conn back / hand back pipelined conn ───────────┘
//!
//! issue_batch ──▶ scope_map fan-out: calling thread + idle workers sign
//!                 in parallel, results in request order
//! rules ────────▶ EpochCell<RuleBook>: issuers pin an immutable Arc
//!                 snapshot per request (lock-free steady state);
//!                 set_rules swaps the book atomically
//! ```
//!
//! - **Connections** cost `O(workers)` threads, not `O(connections)`: a
//!   worker serves a connection only while it is talking, then parks it
//!   in the reactor's epoll set, where 50 000+ idle keep-alive
//!   connections cost zero steady-state CPU — the reactor blocks in
//!   `epoll_wait` until one becomes readable, closes, or idles out
//!   ([`http::HttpServerConfig::builder`] exposes `workers`,
//!   `queue_capacity`, `accept_queue_capacity`, `max_connections`,
//!   `accept_backlog`, `keepalive_grace`, `idle_timeout`, and an
//!   optional shared `pool`).
//! - **Endpoint bring-up is one API**: the public listener and every
//!   vote endpoint bind through [`endpoint::Endpoint`] /
//!   [`EndpointScope`](front::EndpointScope), so they ride the same
//!   reactor machinery and the same [`fault::FaultPlan`] injection
//!   points.
//! - **Batch signing** fans the ~90 µs per-token `k·G` across the pool
//!   with caller participation (no pool-within-pool deadlock), preserving
//!   per-item partial failure and request-order results; one-time indexes
//!   stay atomic/replicated and globally unique.
//! - **Rule reads never lock**: issuance validates against an epoch
//!   snapshot ([`smacs_primitives::epoch::EpochCell`]), so a `set_rules`
//!   burst cannot stall the issuance path, and signature work (`recover`,
//!   `k·G`) always runs outside any lock.
//!
//! # Failure model (§VII-B availability)
//!
//! A production TS must stay available through crashes and partitions; the
//! replication layer ([`cluster`], [`failover`], [`replica`], [`fault`])
//! implements the paper's replication sketch with explicit, testable
//! semantics:
//!
//! - **What replicates.** A [`cluster::ReplicaSet`] runs N full service
//!   instances sharing the signing key (tokens from any replica verify
//!   against the one on-chain `pk_TS`), the rule shards
//!   ([`service::ShardedRules`] — an owner update through any replica
//!   binds all of them), and a majority-quorum one-time counter
//!   ([`replica::CounterCluster`]).
//!
//! - **How the counter quorum votes.** By default the counter is a real
//!   distributed protocol ([`cluster::CounterMode::Wire`]): each replica
//!   serves the protocol-v2 `counter_*` op family on a dedicated vote
//!   endpoint — and *only* there: the client-facing listener runs with
//!   [`front::EndpointScope::Public`] and refuses vote ops with
//!   `counter_unavailable`, so a hostile client cannot burn or skip
//!   index ranges. Allocating one index is two wire rounds driven by the
//!   issuing replica as coordinator:
//!
//!   ```text
//!   coordinator ──counter_prepare──▶ every node     (read frontiers,
//!               ◀──{committed:f}────                 value = max f)
//!   coordinator ──counter_commit{value}──▶ every node
//!               ◀──{accepted,committed}──            node accepts iff
//!                                                    value ≥ its frontier,
//!                                                    WAL-fsyncs, then
//!                                                    frontier := value+1
//!   ```
//!
//!   The index is allocated iff a **majority of the full membership**
//!   accepted; a losing coordinator refreshes `value` from the replies
//!   and retries. Safety needs no ballots: for any one value each node
//!   accepts at most once, so racing coordinators' accept sets are
//!   disjoint and cannot both reach majority — duplicated, reordered,
//!   and stale vote deliveries are rejected the same way (see
//!   [`replica`] for the full argument). A commit that reached only a
//!   minority *skips* that index; it is never handed out twice.
//!
//! - **What survives a crash.** Every accepted vote is appended to the
//!   replica's write-ahead log ([`wal`]) and fsynced *before* the ack
//!   leaves — 12-byte records `[value u64 LE | crc32 LE]`, strictly
//!   increasing, no header. Recovery replays the log forward and stops
//!   at the first short, checksum-failing, or non-monotonic record: that
//!   tail is a torn write and is physically truncated, never trusted.
//!   The invariants: recovery never invents state (the recovered
//!   frontier is a committed prefix) and never loses an acked vote (the
//!   fsync happened first). [`cluster::ReplicaSet::recover`] then
//!   discards the node's RAM, reloads from WAL, and closes any remaining
//!   gap via `counter_catchup` against live peers — so even an index
//!   whose record the disk tore cannot be re-issued while a quorum
//!   remembers it.
//!
//! - **What is retried.** [`failover::FailoverClient`] classifies every
//!   failure by how far the round trip got. A *connect-phase* failure
//!   transmitted nothing and is always replayed on the next replica. Once
//!   the request may have been sent, only idempotent operations are
//!   replayed: `ping` and `discover` (reads), `set_rules` (replaying a
//!   whole-book replacement converges), and issuance *without* the
//!   one-time property (a re-mint is byte-identical). Retries back off
//!   exponentially with jitter, bounded by an attempt budget and a
//!   per-call deadline; per-endpoint circuit breakers stop paying a dead
//!   replica's timeout on every call.
//!
//! - **What is at-most-once.** A one-time issue whose *answer* was lost
//!   (timeout, truncated response, connection drop after send) is
//!   surfaced as an [`ErrorCode::Transport`] error, never blind-retried —
//!   the counter index may already be burned, and minting again would
//!   produce a second live token. The wallet decides, because only it
//!   learns whether the first token reached the chain.
//!
//! - **What fails closed.** When the counter group loses its majority,
//!   one-time issuance answers [`ErrorCode::CounterUnavailable`] rather
//!   than risk duplicate indexes; expiry-token issuance — which needs no
//!   coordination — keeps working. Degradation is partial and explicit,
//!   and [`replica::CounterCluster::recover`] restores full service with
//!   the counter caught up past every index ever committed.
//!
//! The [`fault::FaultPlan`] hooks in the HTTP server (drop, 500, delay,
//! truncate) and on the vote-sending side (address-scoped partitions,
//! vote delays, duplicated deliveries) exist so the chaos suite
//! (`tests/chaos.rs`) can prove each of these claims over the real wire
//! path — including crash-mid-commit WAL recovery, asymmetric vote
//! partitions, and torn-tail re-fetch.

pub mod api;
pub mod cluster;
pub mod discovery;
pub mod endpoint;
pub mod failover;
pub mod fault;
pub mod front;
pub mod http;
pub(crate) mod reactor;
pub mod replica;
pub mod rules;
pub mod service;
pub mod store;
pub mod validation;
pub mod wal;

pub use api::{ApiError, ErrorCode, InProcessClient, TsApi, MAX_BATCH, PROTOCOL_VERSION};
pub use cluster::{CounterMode, ReplicaSet, ReplicaSetConfig};
pub use discovery::ServiceDirectory;
pub use endpoint::Endpoint;
pub use failover::{BreakerConfig, FailoverClient, RetryPolicy};
pub use fault::FaultPlan;
pub use http::{
    HttpClient, HttpClientConfig, HttpServer, HttpServerConfig, HttpServerConfigBuilder,
};
pub use replica::{CommitReply, CounterCluster, CounterNode, CounterTransport, LocalTransport};
pub use rules::{ListPolicy, RuleBook, RuleViolation, TypeRules};
pub use service::{IssueError, ShardedRules, TokenService, TokenServiceConfig};
pub use store::RuleStore;
pub use validation::{NullTool, ValidationTool};
pub use wal::Wal;
