//! # smacs-ts — the off-chain Token Service
//!
//! The TS (§III-A, §IV) is "responsible for verifying requests from clients
//! and issuing access control tokens accordingly". It consists of the three
//! modules Fig. 1 draws:
//!
//! - the **client-facing API** ([`api`]): the transport-agnostic [`TsApi`]
//!   trait (`issue`, `issue_batch`, `set_rules`, `discover`, `ping`) with
//!   an [`InProcessClient`] for co-located callers and an
//!   [`http::HttpClient`] speaking the versioned wire protocol v2 over a
//!   keep-alive connection — batch issuance amortizes per-request wire
//!   overhead, and error codes mirror [`IssueError`] without leaking rule
//!   detail (§VII-A d);
//! - the **front end** ([`front`] for the JSON protocols — v2 envelopes
//!   plus the legacy v1 shapes — and [`http`] for the threaded TCP/HTTP
//!   server) through which owners and clients interact;
//! - the **access granting** module ([`service`]) that checks rule
//!   compliance ([`rules`] — Fig. 6's white/blacklists, dynamically
//!   updatable by the owner without touching the deployed contract) and
//!   signs tokens;
//! - the **validation** module ([`validation`]) hosting pluggable
//!   runtime-verification tools (Hydra uniformity and the ECF checker live
//!   in the `smacs-verifiers` crate and plug in through the
//!   [`validation::ValidationTool`] trait, running against a forked local
//!   testnet as §V describes).
//!
//! For availability (§VII-B), one-time indexes can come from a
//! [`replica::CounterCluster`] — a majority-quorum replicated counter —
//! instead of the single-node atomic counter. [`discovery`] implements the
//! §VII-B service-discovery metadata (contract address → TS URL), and
//! [`store`] persists rules and the signing key to disk (the prototype's
//! node-localStorage analog).

pub mod api;
pub mod discovery;
pub mod front;
pub mod http;
pub mod replica;
pub mod rules;
pub mod service;
pub mod store;
pub mod validation;

pub use api::{ApiError, ErrorCode, InProcessClient, TsApi, MAX_BATCH, PROTOCOL_VERSION};
pub use discovery::ServiceDirectory;
pub use http::{HttpClient, HttpServer};
pub use replica::CounterCluster;
pub use rules::{ListPolicy, RuleBook, RuleViolation, TypeRules};
pub use service::{IssueError, TokenService, TokenServiceConfig};
pub use store::RuleStore;
pub use validation::{NullTool, ValidationTool};
