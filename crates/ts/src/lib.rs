//! # smacs-ts — the off-chain Token Service
//!
//! The TS (§III-A, §IV) is "responsible for verifying requests from clients
//! and issuing access control tokens accordingly". It consists of the three
//! modules Fig. 1 draws:
//!
//! - the **client-facing API** ([`api`]): the transport-agnostic [`TsApi`]
//!   trait (`issue`, `issue_batch`, `set_rules`, `discover`, `ping`) with
//!   an [`InProcessClient`] for co-located callers and an
//!   [`http::HttpClient`] speaking the versioned wire protocol v2 over a
//!   keep-alive connection — batch issuance amortizes per-request wire
//!   overhead, and error codes mirror [`IssueError`] without leaking rule
//!   detail (§VII-A d);
//! - the **front end** ([`front`] for the JSON protocols — v2 envelopes
//!   plus the legacy v1 shapes — and [`http`] for the threaded TCP/HTTP
//!   server) through which owners and clients interact;
//! - the **access granting** module ([`service`]) that checks rule
//!   compliance ([`rules`] — Fig. 6's white/blacklists, dynamically
//!   updatable by the owner without touching the deployed contract) and
//!   signs tokens;
//! - the **validation** module ([`validation`]) hosting pluggable
//!   runtime-verification tools (Hydra uniformity and the ECF checker live
//!   in the `smacs-verifiers` crate and plug in through the
//!   [`validation::ValidationTool`] trait, running against a forked local
//!   testnet as §V describes).
//!
//! For availability (§VII-B), one-time indexes can come from a
//! [`replica::CounterCluster`] — a majority-quorum replicated counter —
//! instead of the single-node atomic counter. [`discovery`] implements the
//! §VII-B service-discovery metadata (contract address → TS URL), and
//! [`store`] persists rules and the signing key to disk (the prototype's
//! node-localStorage analog).
//!
//! # Threading model
//!
//! The whole TS hot path scales with cores through one shared
//! [`smacs_primitives::pool::WorkerPool`]:
//!
//! ```text
//! accept loop ──▶ bounded job queue ──▶ worker pool (fixed N threads)
//!                      │ full? fast 503         │
//!                      │                        ├─ serve connection turn
//! poller ◀── parked idle keep-alive conns ◀─────┘   (requests back-to-back,
//!   └─ readiness sweep, re-submit / reap            then park when idle)
//!
//! issue_batch ──▶ scope_map fan-out: calling thread + idle workers sign
//!                 in parallel, results in request order
//! rules ────────▶ EpochCell<RuleBook>: issuers pin an immutable Arc
//!                 snapshot per request (lock-free steady state);
//!                 set_rules swaps the book atomically
//! ```
//!
//! - **Connections** cost `O(workers)` threads, not `O(connections)`: a
//!   worker serves a connection only while it is talking, then parks it
//!   for the single poller thread to watch ([`http::HttpServerConfig`]
//!   exposes `workers`, `queue_capacity`, `poll_interval`,
//!   `keepalive_grace`, `idle_timeout`, and an optional shared `pool`).
//! - **Batch signing** fans the ~90 µs per-token `k·G` across the pool
//!   with caller participation (no pool-within-pool deadlock), preserving
//!   per-item partial failure and request-order results; one-time indexes
//!   stay atomic/replicated and globally unique.
//! - **Rule reads never lock**: issuance validates against an epoch
//!   snapshot ([`smacs_primitives::epoch::EpochCell`]), so a `set_rules`
//!   burst cannot stall the issuance path, and signature work (`recover`,
//!   `k·G`) always runs outside any lock.

pub mod api;
pub mod discovery;
pub mod front;
pub mod http;
pub mod replica;
pub mod rules;
pub mod service;
pub mod store;
pub mod validation;

pub use api::{ApiError, ErrorCode, InProcessClient, TsApi, MAX_BATCH, PROTOCOL_VERSION};
pub use discovery::ServiceDirectory;
pub use http::{HttpClient, HttpServer, HttpServerConfig};
pub use replica::CounterCluster;
pub use rules::{ListPolicy, RuleBook, RuleViolation, TypeRules};
pub use service::{IssueError, TokenService, TokenServiceConfig};
pub use store::RuleStore;
pub use validation::{NullTool, ValidationTool};
