//! Crash-durable write-ahead log for committed one-time counter indexes.
//!
//! Each counter replica appends one record per index it votes to commit,
//! *before* applying the commit to its in-memory state, and fsyncs the
//! record (`sync_data`) so an acknowledged vote survives a crash. This is
//! what makes the quorum-intersection argument hold across restarts: a
//! node that acked index `v` must still remember `v` after recovering,
//! otherwise two disjoint "quorums" separated in time could both commit
//! the same index.
//!
//! ## Format
//!
//! The log is a flat sequence of fixed-size 12-byte records:
//!
//! ```text
//! [ value: u64 LE ][ crc: u32 LE ]      crc = CRC-32 (IEEE) of the 8 value bytes
//! ```
//!
//! Values are strictly increasing (committed counter indexes; gaps are
//! legal — a catch-up adopt logs only the frontier). There is no header:
//! an empty file is a valid empty log, and recovery is a single forward
//! scan.
//!
//! ## Recovery invariants
//!
//! [`Wal::open`] replays the file and stops at the first record that is
//! short, fails its checksum, or breaks monotonicity; everything from
//! that offset on is a **torn tail** (a crash mid-`write`) and is
//! physically truncated away. The invariants:
//!
//! - recovery never *invents* state: the recovered frontier is always a
//!   prefix of what was appended (fail-closed — an index whose record was
//!   torn is simply not remembered, and the node re-learns the cluster
//!   frontier via `counter_catchup`);
//! - recovery never *loses* an acked commit: `append` returns only after
//!   `sync_data`, so every record a vote was acknowledged against is a
//!   complete, checksummed 12 bytes before the torn tail — and
//!   [`Wal::open`] fsyncs the parent directory, so the file's very
//!   existence (a fresh log's creation, a recovery's truncation) is as
//!   durable as its records.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// On-disk size of one log record: 8 value bytes + 4 checksum bytes.
pub const RECORD_SIZE: usize = 12;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
///
/// Bitwise, no table: records are 8 bytes, so the ~64 shift/xor steps per
/// byte are noise next to the `sync_data` each append already pays.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Fsync the directory holding `path`, so the file's directory entry (a
/// creation or truncation) is as durable as its contents. A relative
/// path with no parent component lives in the current directory.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => File::open(dir)?.sync_all(),
        _ => File::open(".")?.sync_all(),
    }
}

/// Encode one record for `value`.
fn encode_record(value: u64) -> [u8; RECORD_SIZE] {
    let mut record = [0u8; RECORD_SIZE];
    record[..8].copy_from_slice(&value.to_le_bytes());
    record[8..].copy_from_slice(&crc32(&value.to_le_bytes()).to_le_bytes());
    record
}

/// What [`Wal::open`] reconstructed from disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Recovery {
    /// Recovered committed frontier: one past the highest logged index
    /// (0 for an empty log) — directly the counter node's `committed`.
    pub committed: u64,
    /// Number of valid records replayed.
    pub records: usize,
    /// Bytes of torn/corrupt tail discarded (0 for a clean log).
    pub discarded_bytes: u64,
}

/// An open, append-only counter log.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Highest value logged so far (`None` for an empty log); guards the
    /// strictly-increasing invariant.
    last: Option<u64>,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, replay it, and
    /// truncate any torn tail.
    pub fn open(path: &Path) -> io::Result<(Wal, Recovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut last: Option<u64> = None;
        let mut records = 0usize;
        let mut good = 0usize; // byte offset of the end of the valid prefix
        while bytes.len() - good >= RECORD_SIZE {
            let rec = &bytes[good..good + RECORD_SIZE];
            let value = u64::from_le_bytes(rec[..8].try_into().unwrap());
            let crc = u32::from_le_bytes(rec[8..].try_into().unwrap());
            let monotonic = last.is_none_or(|prev| value > prev);
            if crc != crc32(&rec[..8]) || !monotonic {
                break;
            }
            last = Some(value);
            records += 1;
            good += RECORD_SIZE;
        }

        let discarded_bytes = (bytes.len() - good) as u64;
        if discarded_bytes > 0 {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        // Make the directory entry itself durable: a freshly created (or
        // just-truncated) log otherwise exists only in the unsynced parent
        // directory and can vanish wholesale on power failure — taking
        // fsynced records with it and breaking "an acked vote survives a
        // crash" for a node's earliest commits.
        sync_parent_dir(path)?;

        let recovery = Recovery {
            committed: last.map_or(0, |v| v + 1),
            records,
            discarded_bytes,
        };
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                last,
            },
            recovery,
        ))
    }

    /// Durably log index `value` as committed. Returns only after the
    /// record is written **and** fsynced — callers may ack the vote once
    /// this returns. `value` must exceed every previously logged value,
    /// and `u64::MAX` is refused outright: its recovered frontier
    /// (`value + 1`) is unrepresentable, so a record for it could never
    /// be replayed faithfully.
    pub fn append(&mut self, value: u64) -> io::Result<()> {
        if value == u64::MAX {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "index u64::MAX is unloggable (recovered frontier would overflow)",
            ));
        }
        debug_assert!(
            self.last.is_none_or(|prev| value > prev),
            "WAL values must be strictly increasing (last {:?}, got {value})",
            self.last
        );
        self.file.write_all(&encode_record(value))?;
        self.file.sync_data()?;
        self.last = Some(value);
        Ok(())
    }

    /// Where this log lives (so a crash simulation can reopen it).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Highest value logged (`None` for an empty log).
    pub fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "smacs-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_log_recovers_to_zero() {
        let path = temp_path("empty");
        let (_wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(
            rec,
            Recovery {
                committed: 0,
                records: 0,
                discarded_bytes: 0
            }
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_then_reopen_replays_frontier() {
        let path = temp_path("replay");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for v in 0..5 {
                wal.append(v).unwrap();
            }
        }
        let (wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.committed, 5);
        assert_eq!(rec.records, 5);
        assert_eq!(rec.discarded_bytes, 0);
        assert_eq!(wal.last(), Some(4));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gaps_from_adopts_replay() {
        let path = temp_path("gaps");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(0).unwrap();
            wal.append(7).unwrap(); // catch-up adopt logs only the frontier
            wal.append(8).unwrap();
        }
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.committed, 9);
        assert_eq!(rec.records, 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_log_stays_appendable() {
        let path = temp_path("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for v in 0..3 {
                wal.append(v).unwrap();
            }
        }
        // Simulate a crash mid-write: half a record of the next append.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&3u64.to_le_bytes()[..5]);
        fs::write(&path, &bytes).unwrap();

        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.committed, 3, "torn record is not resurrected");
        assert_eq!(rec.discarded_bytes, 5);
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            (3 * RECORD_SIZE) as u64,
            "tail physically truncated"
        );
        wal.append(3).unwrap();
        let (_, rec2) = Wal::open(&path).unwrap();
        assert_eq!(rec2.committed, 4);
        fs::remove_file(&path).unwrap();
    }

    /// Fuzz the tail record exhaustively: for a 3-record log, truncate
    /// the file at *every* byte length inside the tail record, and
    /// separately flip a bit at *every* byte offset of the tail record.
    /// Whatever the damage, recovery must land on a committed prefix —
    /// `committed` is exactly 3 (tail intact) or exactly 2 (tail
    /// discarded), never anything else, never an uncommitted index
    /// resurrected — and the log must stay appendable afterwards.
    #[test]
    fn every_tail_truncation_and_corruption_recovers_to_a_prefix() {
        let path = temp_path("fuzz");
        let pristine = {
            {
                let (mut wal, _) = Wal::open(&path).unwrap();
                for v in 0..3 {
                    wal.append(v).unwrap();
                }
            }
            fs::read(&path).unwrap()
        };
        let tail_start = 2 * RECORD_SIZE;

        let check = |damaged: &[u8], what: &str| {
            fs::write(&path, damaged).unwrap();
            let (mut wal, rec) = Wal::open(&path).unwrap();
            assert!(
                rec.committed == 2 || rec.committed == 3,
                "{what}: recovered committed {} is not a committed prefix",
                rec.committed
            );
            if rec.committed == 3 {
                // Only an undamaged tail may be trusted in full.
                assert_eq!(damaged, pristine, "{what}: damaged tail accepted");
            }
            // The survivor is a working log: the next index appends fine
            // and survives a clean reopen.
            wal.append(rec.committed).unwrap();
            drop(wal);
            let (_, rec2) = Wal::open(&path).unwrap();
            assert_eq!(rec2.committed, rec.committed + 1, "{what}: not appendable");
            assert_eq!(rec2.discarded_bytes, 0);
        };

        // Truncation at every length within the tail record (a torn
        // write that stopped after N bytes), including zero.
        for cut in 0..RECORD_SIZE {
            check(
                &pristine[..tail_start + cut],
                &format!("truncate at +{cut}"),
            );
        }
        // Single-bit corruption at every byte of the tail record (a torn
        // sector / bit rot). CRC-32 catches every single-bit error.
        for offset in 0..RECORD_SIZE {
            let mut damaged = pristine.clone();
            damaged[tail_start + offset] ^= 1 << (offset % 8);
            check(&damaged, &format!("flip bit at +{offset}"));
        }
        // The undamaged log still recovers whole.
        check(&pristine, "pristine");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appending_u64_max_is_refused() {
        let path = temp_path("max");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(3).unwrap();
        let err = wal.append(u64::MAX).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // The refusal left no record behind, and the log still works.
        drop(wal);
        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.committed, 4);
        assert_eq!(rec.records, 1);
        wal.append(4).unwrap();
        drop(wal);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_monotonic_tail_is_treated_as_torn() {
        let path = temp_path("monotonic");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(0).unwrap();
            wal.append(1).unwrap();
        }
        // A checksum-valid record that goes backwards (e.g. a misdirected
        // write) still ends the valid prefix.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_record(1));
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.committed, 2);
        assert_eq!(rec.discarded_bytes, RECORD_SIZE as u64);
        fs::remove_file(&path).unwrap();
    }
}
