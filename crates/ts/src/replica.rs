//! A replicated counter for one-time token indexes (§VII-B availability).
//!
//! "If a TS service is offering one-time tokens, then its replicas have to
//! coordinate on the current counter value. That can be efficiently
//! realized via a replicated counter primitive usually implemented upon a
//! standard consensus algorithm." This module implements that primitive as
//! a majority-quorum state machine: a proposal (the next counter value) is
//! replicated to all live nodes and commits iff a majority of the *full*
//! membership acknowledges. Losing quorum makes the counter unavailable
//! (fail-closed — the TS then refuses one-time issuance rather than risk
//! duplicate indexes).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One replica of the counter.
struct Node {
    /// Highest committed counter value this node has applied.
    committed: AtomicU64,
    /// Liveness flag (false = crashed / partitioned away).
    alive: AtomicBool,
}

/// A majority-quorum replicated counter.
#[derive(Clone)]
pub struct CounterCluster {
    nodes: Arc<Vec<Node>>,
    /// Serializes proposals, playing the leader's log-ordering role.
    proposal_lock: Arc<Mutex<()>>,
}

impl CounterCluster {
    /// A cluster of `n` replicas, counter starting at 0.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        let nodes = (0..n)
            .map(|_| Node {
                committed: AtomicU64::new(0),
                alive: AtomicBool::new(true),
            })
            .collect();
        CounterCluster {
            nodes: Arc::new(nodes),
            proposal_lock: Arc::new(Mutex::new(())),
        }
    }

    /// Cluster size.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the cluster has no nodes (never: `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive.load(Ordering::SeqCst))
            .count()
    }

    /// Majority threshold over the full membership.
    pub fn quorum(&self) -> usize {
        self.nodes.len() / 2 + 1
    }

    /// Whether a majority of nodes is live.
    pub fn has_quorum(&self) -> bool {
        self.live_count() >= self.quorum()
    }

    /// Crash node `id` (for failure-injection tests).
    pub fn kill(&self, id: usize) {
        self.nodes[id].alive.store(false, Ordering::SeqCst);
    }

    /// Recover node `id`: it rejoins and catches up to the highest
    /// committed value among live nodes.
    pub fn recover(&self, id: usize) {
        let _guard = self.proposal_lock.lock();
        let max_committed = self
            .nodes
            .iter()
            .filter(|n| n.alive.load(Ordering::SeqCst))
            .map(|n| n.committed.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0);
        self.nodes[id]
            .committed
            .store(max_committed, Ordering::SeqCst);
        self.nodes[id].alive.store(true, Ordering::SeqCst);
    }

    /// The highest committed counter value across all nodes — how many
    /// indexes have ever been allocated. A diagnostics/test peek: the
    /// chaos suite uses it to prove a lost-response issuance burned
    /// exactly one index (at-most-once), and recovery tests use it to
    /// check catch-up.
    pub fn committed(&self) -> u64 {
        let _guard = self.proposal_lock.lock();
        self.nodes
            .iter()
            .map(|n| n.committed.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0)
    }

    /// Atomically allocate the next index. Returns `None` when quorum is
    /// lost — the caller must refuse issuance.
    pub fn next_index(&self) -> Option<u64> {
        let _guard = self.proposal_lock.lock();
        // Leader = lowest-id live node; it proposes its committed value.
        let leader = self.nodes.iter().find(|n| n.alive.load(Ordering::SeqCst))?;
        let value = leader.committed.load(Ordering::SeqCst);
        // Replicate: every live node acks and pre-applies value + 1.
        let mut acks = 0;
        for node in self.nodes.iter() {
            if node.alive.load(Ordering::SeqCst) {
                acks += 1;
            }
        }
        if acks < self.quorum() {
            return None;
        }
        for node in self.nodes.iter() {
            if node.alive.load(Ordering::SeqCst) {
                node.committed.store(value + 1, Ordering::SeqCst);
            }
        }
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_allocation() {
        let cluster = CounterCluster::new(3);
        let values: Vec<u64> = (0..10).filter_map(|_| cluster.next_index()).collect();
        assert_eq!(values, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_allocation_is_duplicate_free() {
        let cluster = CounterCluster::new(5);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = cluster.clone();
            handles.push(thread::spawn(move || {
                (0..100)
                    .filter_map(|_| c.next_index())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut seen = HashSet::new();
        for handle in handles {
            for v in handle.join().unwrap() {
                assert!(seen.insert(v), "duplicate index {v}");
            }
        }
        assert_eq!(seen.len(), 800);
    }

    #[test]
    fn survives_minority_failure() {
        let cluster = CounterCluster::new(5);
        assert_eq!(cluster.next_index(), Some(0));
        cluster.kill(0); // leader dies
        cluster.kill(1);
        assert!(cluster.has_quorum());
        // New leader continues without reusing indexes.
        assert_eq!(cluster.next_index(), Some(1));
        assert_eq!(cluster.next_index(), Some(2));
    }

    #[test]
    fn majority_failure_fails_closed() {
        let cluster = CounterCluster::new(3);
        assert_eq!(cluster.next_index(), Some(0));
        cluster.kill(0);
        cluster.kill(1);
        assert!(!cluster.has_quorum());
        assert_eq!(cluster.next_index(), None);
    }

    #[test]
    fn recovered_node_catches_up() {
        let cluster = CounterCluster::new(3);
        cluster.kill(2);
        for _ in 0..5 {
            cluster.next_index().unwrap();
        }
        cluster.recover(2);
        // Kill the nodes that saw all the traffic; the recovered node must
        // carry the state forward without reissuing.
        cluster.kill(0);
        assert_eq!(cluster.next_index(), Some(5));
    }

    #[test]
    fn quorum_math() {
        assert_eq!(CounterCluster::new(1).quorum(), 1);
        assert_eq!(CounterCluster::new(3).quorum(), 2);
        assert_eq!(CounterCluster::new(4).quorum(), 3);
        assert_eq!(CounterCluster::new(5).quorum(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        CounterCluster::new(0);
    }
}
