//! A replicated counter for one-time token indexes (§VII-B availability).
//!
//! "If a TS service is offering one-time tokens, then its replicas have to
//! coordinate on the current counter value. That can be efficiently
//! realized via a replicated counter primitive usually implemented upon a
//! standard consensus algorithm." This module implements that primitive as
//! a majority-quorum state machine split into three pieces:
//!
//! - [`CounterNode`] — one replica's vote state: a `committed` frontier
//!   (the next free index) guarded by a mutex, an `alive` flag, and an
//!   optional crash-durable [`crate::wal::Wal`] appended-and-fsynced
//!   *before* a commit vote is acknowledged;
//! - [`CounterTransport`] — how a coordinator reaches a node's vote
//!   endpoint. [`LocalTransport`] calls the node in-process (unit tests,
//!   single-process clusters); the wire impl in [`crate::cluster`] speaks
//!   the protocol-v2 `counter_*` op family over TCP;
//! - [`CounterCluster`] — the coordinator: allocates the next index by a
//!   prepare round (read every reachable node's frontier, take the max)
//!   followed by a commit round (every node conditionally applies
//!   `frontier := value + 1` iff `value >= frontier` — i.e. iff it has
//!   never voted for `value` or anything beyond). An index is allocated
//!   iff a **majority of the full membership** accepted the commit;
//!   anything less fails closed (`None` → the TS refuses one-time
//!   issuance rather than risk duplicates).
//!
//! ## Why the conditional commit is enough
//!
//! Two coordinators racing for the same `value` each gather accepts from
//! disjoint node sets (a node's frontier moves past `value` the moment it
//! accepts, so it rejects the second commit). Disjoint sets cannot both
//! reach majority, so at most one coordinator allocates `value`; the
//! loser re-reads the frontier from the replies and retries at the next
//! value. The same argument covers every schedule: for any single
//! `value`, each node accepts at most one commit in its lifetime, so
//! duplicated, reordered, and stale re-deliveries are rejected
//! (`value < frontier`) and at most one coordinator ever reaches
//! majority for it. Accepting `value` *above* the frontier is what lets
//! a lagging node rejoin the voting majority without an out-of-band
//! catch-up: the vote itself advances its frontier (the skipped range
//! was voted on elsewhere or burned). A commit that reached only a
//! minority burns those nodes' frontiers without allocating the index —
//! the index is *skipped*, never *duplicated*, which is the right trade
//! for at-most-once issuance.

use crate::wal::{Recovery, Wal};
use parking_lot::Mutex;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Bound on commit-round retries after losing a race to a concurrent
/// coordinator. Each retry re-reads the frontier from the losing round's
/// replies, so contention resolves in a round or two; the bound only
/// keeps pathological schedules from spinning forever.
const MAX_PROPOSE_ROUNDS: usize = 64;

/// A node's answer to a `counter_commit` vote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitReply {
    /// True iff the node applied the proposed value (it was at or past
    /// the node's frontier — never voted on before).
    pub accepted: bool,
    /// The node's frontier after processing the vote — lets a losing
    /// coordinator refresh without another prepare round.
    pub committed: u64,
}

/// One replica of the counter: the vote state machine.
///
/// All vote handling is serialized under one mutex so "check frontier,
/// append WAL, apply" is atomic; the `alive` flag is separate so a chaos
/// harness can partition a node away without touching its state.
pub struct CounterNode {
    state: Mutex<NodeState>,
    alive: AtomicBool,
}

struct NodeState {
    /// Next free index (= number of indexes ever burned at this node).
    committed: u64,
    /// Durable log of burned indexes; `None` = memory-only (unit tests).
    wal: Option<Wal>,
}

impl CounterNode {
    /// A fresh, memory-only node (state dies with the process).
    pub fn new() -> Arc<CounterNode> {
        Arc::new(CounterNode {
            state: Mutex::new(NodeState {
                committed: 0,
                wal: None,
            }),
            alive: AtomicBool::new(true),
        })
    }

    /// A node whose commits are write-ahead logged at `path`; replays the
    /// log (discarding any torn tail) to recover its frontier.
    pub fn with_wal(path: &Path) -> io::Result<(Arc<CounterNode>, Recovery)> {
        let (wal, recovery) = Wal::open(path)?;
        Ok((
            Arc::new(CounterNode {
                state: Mutex::new(NodeState {
                    committed: recovery.committed,
                    wal: Some(wal),
                }),
                alive: AtomicBool::new(true),
            }),
            recovery,
        ))
    }

    /// The node's current frontier (diagnostics/tests).
    pub fn committed(&self) -> u64 {
        self.state.lock().committed
    }

    /// Whether the node is answering votes.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Phase-1 read: the node's frontier, or `None` if dead/partitioned.
    pub fn prepare(&self) -> Option<u64> {
        if !self.is_alive() {
            return None;
        }
        Some(self.state.lock().committed)
    }

    /// Phase-2 vote: conditionally burn `value`. Accepts iff `value >=
    /// frontier` — at or past the frontier means the node has never voted
    /// for `value` (or anything beyond), which is all a vote attests; a
    /// `value` *below* the frontier was already voted on here and is
    /// rejected, which is what makes duplicated, reordered, and stale
    /// deliveries no-ops. On accept the index is WAL-logged and fsynced
    /// **before** the ack leaves (a WAL write error refuses the vote —
    /// fail closed, never ack what isn't durable).
    pub fn commit(&self, value: u64) -> Option<CommitReply> {
        if !self.is_alive() {
            return None;
        }
        let mut state = self.state.lock();
        // `u64::MAX` has no successor: accepting it would wrap the
        // frontier to 0 and reopen every burned index. An exhausted
        // counter fails closed instead (the index space outlives any
        // realistic deployment; this guards the network-reachable op).
        if value < state.committed || value == u64::MAX {
            return Some(CommitReply {
                accepted: false,
                committed: state.committed,
            });
        }
        if let Some(wal) = state.wal.as_mut() {
            if wal.append(value).is_err() {
                return Some(CommitReply {
                    accepted: false,
                    committed: state.committed,
                });
            }
        }
        state.committed = value + 1;
        Some(CommitReply {
            accepted: true,
            committed: state.committed,
        })
    }

    /// Recovery read: the node's frontier, for a peer catching up.
    pub fn catchup(&self) -> Option<u64> {
        self.prepare()
    }

    /// Stop answering votes (crash / partition away).
    pub fn crash(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Resume answering votes with state as-is (the caller is responsible
    /// for catch-up; see [`CounterNode::adopt`]).
    pub fn revive(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }

    /// Max-merge a frontier learned from peers (`counter_catchup`); logs
    /// the adopted frontier *before* applying it so it, too, survives a
    /// crash. Fail-closed like [`CounterNode::commit`]: a WAL error
    /// leaves the in-memory frontier untouched and surfaces to the
    /// caller, rather than silently holding state that isn't durable.
    /// (Keeping the old, lower frontier is safe — it is the ordinary
    /// lagging-node state, caught up by the next vote or adopt.)
    pub fn adopt(&self, committed: u64) -> io::Result<()> {
        let mut state = self.state.lock();
        if committed > state.committed {
            if let Some(wal) = state.wal.as_mut() {
                // Log only the frontier (committed - 1): the skipped range
                // was never acked here, so durability isn't owed for it.
                wal.append(committed - 1)?;
            }
            state.committed = committed;
        }
        Ok(())
    }

    /// Simulate a crash-restart: discard in-memory state and rebuild it
    /// from the WAL alone (reopening the file replays the committed
    /// prefix and truncates any torn tail). Memory-only nodes reset to 0
    /// — exactly the data loss the WAL exists to prevent.
    pub fn reload_from_wal(&self) -> io::Result<Recovery> {
        let mut state = self.state.lock();
        let recovery = match state.wal.as_ref().map(|w| w.path().to_path_buf()) {
            Some(path) => {
                // Drop the old handle first so truncation happens on the
                // freshly opened descriptor.
                state.wal = None;
                let (wal, recovery) = Wal::open(&path)?;
                state.wal = Some(wal);
                recovery
            }
            None => Recovery {
                committed: 0,
                records: 0,
                discarded_bytes: 0,
            },
        };
        state.committed = recovery.committed;
        Ok(recovery)
    }
}

/// How a quorum coordinator reaches one counter node's vote endpoint.
///
/// Every method returns `None` when the node is unreachable (dead,
/// partitioned, timed out) — the coordinator counts `None` as a missing
/// vote, never as a rejection.
pub trait CounterTransport: Send + Sync {
    /// Phase-1 read of the node's frontier.
    fn prepare(&self) -> Option<u64>;
    /// Phase-2 conditional commit of `value`.
    fn commit(&self, value: u64) -> Option<CommitReply>;
    /// Recovery fetch of the node's frontier (same read as `prepare`,
    /// kept distinct so the wire protocol names the intent).
    fn catchup(&self) -> Option<u64>;
}

/// In-process transport: the coordinator calls the node directly.
pub struct LocalTransport(pub Arc<CounterNode>);

impl CounterTransport for LocalTransport {
    fn prepare(&self) -> Option<u64> {
        self.0.prepare()
    }

    fn commit(&self, value: u64) -> Option<CommitReply> {
        self.0.commit(value)
    }

    fn catchup(&self) -> Option<u64> {
        self.0.catchup()
    }
}

/// A majority-quorum replicated counter, seen from one coordinator.
///
/// Each replica process holds its own `CounterCluster` whose member
/// transports point at the full membership (itself via
/// [`LocalTransport`], peers over the wire). The single-process form
/// ([`CounterCluster::new`]) keeps every node in-process and is what the
/// unit tests and non-replicated benches use.
#[derive(Clone)]
pub struct CounterCluster {
    /// Full membership, coordinator's view; index = replica id.
    members: Arc<Vec<Arc<dyn CounterTransport>>>,
    /// In-process node handles for lifecycle control (`kill`/`recover`).
    /// Populated by [`CounterCluster::new`]; wired clusters manage node
    /// lifecycle through `ReplicaSet` instead and leave this empty.
    nodes: Arc<Vec<Arc<CounterNode>>>,
    /// Serializes proposals *from this coordinator* (peers still race —
    /// the commit round's conditional apply is what guarantees safety).
    proposal_lock: Arc<Mutex<()>>,
}

impl CounterCluster {
    /// A single-process cluster of `n` memory-only nodes, counter
    /// starting at 0.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        Self::from_nodes((0..n).map(|_| CounterNode::new()).collect())
    }

    /// A single-process cluster over pre-built nodes (e.g. WAL-backed
    /// ones). Lifecycle methods operate on the given nodes by index.
    ///
    /// # Panics
    /// Panics if `nodes` is empty.
    pub fn from_nodes(nodes: Vec<Arc<CounterNode>>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        let members = nodes
            .iter()
            .map(|node| Arc::new(LocalTransport(node.clone())) as Arc<dyn CounterTransport>)
            .collect();
        CounterCluster {
            members: Arc::new(members),
            nodes: Arc::new(nodes),
            proposal_lock: Arc::new(Mutex::new(())),
        }
    }

    /// A coordinator over an explicit member list (one transport per
    /// replica, own node local, peers wired). Lifecycle methods
    /// ([`CounterCluster::kill`]/[`CounterCluster::recover`]) are
    /// unavailable on this form.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn from_transports(members: Vec<Arc<dyn CounterTransport>>) -> Self {
        assert!(!members.is_empty(), "cluster needs at least one node");
        CounterCluster {
            members: Arc::new(members),
            nodes: Arc::new(Vec::new()),
            proposal_lock: Arc::new(Mutex::new(())),
        }
    }

    /// Cluster size (full membership).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff the cluster has no nodes (never: constructors require a
    /// non-empty membership).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of members currently answering votes, from this
    /// coordinator's vantage point.
    pub fn live_count(&self) -> usize {
        self.members
            .iter()
            .filter(|t| t.prepare().is_some())
            .count()
    }

    /// Majority threshold over the full membership.
    pub fn quorum(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// Whether a majority of members is reachable.
    pub fn has_quorum(&self) -> bool {
        self.live_count() >= self.quorum()
    }

    /// Crash node `id` (single-process clusters only).
    pub fn kill(&self, id: usize) {
        self.nodes[id].crash();
    }

    /// Recover node `id` (single-process clusters only): it rejoins and
    /// catches up to the highest committed value among reachable members.
    /// Errs if the caught-up frontier cannot be WAL-logged (the node then
    /// rejoins with its old state — safe, just lagging).
    pub fn recover(&self, id: usize) -> io::Result<()> {
        let _guard = self.proposal_lock.lock();
        self.nodes[id].revive();
        let frontier = self
            .members
            .iter()
            .filter_map(|t| t.catchup())
            .max()
            .unwrap_or(0);
        self.nodes[id].adopt(frontier)
    }

    /// The highest committed counter value across reachable members — how
    /// many indexes have ever been burned. A diagnostics/test peek: the
    /// chaos suite uses it to prove a lost-response issuance burned
    /// exactly one index (at-most-once), and recovery tests use it to
    /// check catch-up.
    pub fn committed(&self) -> u64 {
        let _guard = self.proposal_lock.lock();
        self.members
            .iter()
            .filter_map(|t| t.catchup())
            .max()
            .unwrap_or(0)
    }

    /// Atomically allocate the next index. Returns `None` when quorum is
    /// unreachable — the caller must refuse issuance (fail closed).
    pub fn next_index(&self) -> Option<u64> {
        let _guard = self.proposal_lock.lock();
        let quorum = self.quorum();

        // Phase 1: read the frontier from every reachable member.
        let mut replies = 0usize;
        let mut value = 0u64;
        for member in self.members.iter() {
            if let Some(committed) = member.prepare() {
                replies += 1;
                value = value.max(committed);
            }
        }
        if replies < quorum {
            return None;
        }

        // Phase 2: commit `value` everywhere; majority accept = allocated.
        // On a lost race the replies carry the new frontier — retry there.
        for _ in 0..MAX_PROPOSE_ROUNDS {
            let mut reachable = 0usize;
            let mut accepts = 0usize;
            let mut frontier = value;
            for member in self.members.iter() {
                if let Some(reply) = member.commit(value) {
                    reachable += 1;
                    if reply.accepted {
                        accepts += 1;
                    }
                    frontier = frontier.max(reply.committed);
                }
            }
            if accepts >= quorum {
                return Some(value);
            }
            if reachable < quorum {
                return None;
            }
            // A concurrent coordinator won `value` (or a stale minority
            // burn skipped it): move to the observed frontier. Guard
            // against a frontier that didn't move so the loop always
            // makes progress toward the round bound; saturate so an
            // exhausted counter (frontier at `u64::MAX`, which every node
            // refuses) retries to the bound and fails closed instead of
            // wrapping to 0.
            value = frontier.max(value.saturating_add(1));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_allocation() {
        let cluster = CounterCluster::new(3);
        let values: Vec<u64> = (0..10).filter_map(|_| cluster.next_index()).collect();
        assert_eq!(values, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_allocation_is_duplicate_free() {
        let cluster = CounterCluster::new(5);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = cluster.clone();
            handles.push(thread::spawn(move || {
                (0..100)
                    .filter_map(|_| c.next_index())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut seen = HashSet::new();
        for handle in handles {
            for v in handle.join().unwrap() {
                assert!(seen.insert(v), "duplicate index {v}");
            }
        }
        assert_eq!(seen.len(), 800);
    }

    #[test]
    fn racing_coordinators_never_duplicate_an_index() {
        // Two independent coordinators over the *same* nodes (distinct
        // proposal locks — the real multi-replica shape). Safety must
        // come from the conditional commit alone.
        let nodes: Vec<Arc<CounterNode>> = (0..3).map(|_| CounterNode::new()).collect();
        let coordinator = || {
            CounterCluster::from_transports(
                nodes
                    .iter()
                    .map(|n| Arc::new(LocalTransport(n.clone())) as Arc<dyn CounterTransport>)
                    .collect(),
            )
        };
        let a = coordinator();
        let b = coordinator();
        let mut handles = Vec::new();
        for cluster in [a, b] {
            handles.push(thread::spawn(move || {
                (0..200)
                    .filter_map(|_| cluster.next_index())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut seen = HashSet::new();
        let mut total = 0;
        for handle in handles {
            for v in handle.join().unwrap() {
                total += 1;
                assert!(seen.insert(v), "duplicate index {v}");
            }
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn survives_minority_failure() {
        let cluster = CounterCluster::new(5);
        assert_eq!(cluster.next_index(), Some(0));
        cluster.kill(0); // leader dies
        cluster.kill(1);
        assert!(cluster.has_quorum());
        // New leader continues without reusing indexes.
        assert_eq!(cluster.next_index(), Some(1));
        assert_eq!(cluster.next_index(), Some(2));
    }

    #[test]
    fn majority_failure_fails_closed() {
        let cluster = CounterCluster::new(3);
        assert_eq!(cluster.next_index(), Some(0));
        cluster.kill(0);
        cluster.kill(1);
        assert!(!cluster.has_quorum());
        assert_eq!(cluster.next_index(), None);
    }

    #[test]
    fn recovered_node_catches_up() {
        let cluster = CounterCluster::new(3);
        cluster.kill(2);
        for _ in 0..5 {
            cluster.next_index().unwrap();
        }
        cluster.recover(2).unwrap();
        // Kill the nodes that saw all the traffic; the recovered node must
        // carry the state forward without reissuing.
        cluster.kill(0);
        assert_eq!(cluster.next_index(), Some(5));
    }

    #[test]
    fn minority_burn_skips_an_index_instead_of_duplicating() {
        // A commit that reaches only a minority must not hand out the
        // index; the next successful allocation moves past it.
        let nodes: Vec<Arc<CounterNode>> = (0..3).map(|_| CounterNode::new()).collect();
        // Stale/delayed commit delivered to a single node out of band.
        assert!(nodes[2].commit(0).unwrap().accepted);
        let cluster = CounterCluster::from_transports(
            nodes
                .iter()
                .map(|n| Arc::new(LocalTransport(n.clone())) as Arc<dyn CounterTransport>)
                .collect(),
        );
        // The coordinator observes the burned frontier via prepare and
        // allocates 1, never re-issuing 0 (which only node 2 burned) and
        // never double-issuing anything.
        assert_eq!(cluster.next_index(), Some(1));
        assert_eq!(cluster.next_index(), Some(2));
    }

    #[test]
    fn quorum_math() {
        assert_eq!(CounterCluster::new(1).quorum(), 1);
        assert_eq!(CounterCluster::new(3).quorum(), 2);
        assert_eq!(CounterCluster::new(4).quorum(), 3);
        assert_eq!(CounterCluster::new(5).quorum(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        CounterCluster::new(0);
    }

    #[test]
    fn commit_at_u64_max_is_refused_not_wrapped() {
        // Accepting u64::MAX would set the frontier to MAX + 1 = 0 and
        // reopen every burned index. The vote is network-reachable, so
        // this must be a refusal, not an overflow.
        let node = CounterNode::new();
        assert!(node.commit(0).unwrap().accepted);
        let reply = node.commit(u64::MAX).unwrap();
        assert!(!reply.accepted);
        assert_eq!(reply.committed, 1, "frontier must be untouched");
        assert_eq!(node.committed(), 1);
        // The node still votes normally afterwards.
        assert!(node.commit(1).unwrap().accepted);

        // A node already at the end of the index space refuses forever
        // (fails closed) rather than wrapping.
        assert!(node.commit(u64::MAX - 1).unwrap().accepted);
        assert_eq!(node.committed(), u64::MAX);
        assert!(!node.commit(u64::MAX).unwrap().accepted);
        assert_eq!(node.committed(), u64::MAX);
    }

    #[test]
    fn exhausted_cluster_fails_closed_instead_of_reissuing() {
        // Drive every node's frontier to u64::MAX: allocation must answer
        // None (counter exhausted), never an index from the burned past.
        let cluster = CounterCluster::new(3);
        for id in 0..3 {
            // Direct minority burns, as a stale coordinator could send.
            assert!(cluster.nodes[id].commit(u64::MAX - 1).unwrap().accepted);
        }
        assert_eq!(cluster.committed(), u64::MAX);
        assert_eq!(cluster.next_index(), None);
        assert_eq!(cluster.committed(), u64::MAX, "no frontier wrapped");
    }

    #[test]
    fn wal_backed_node_survives_a_simulated_crash() {
        let mut path = std::env::temp_dir();
        path.push(format!("smacs-replica-wal-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (node, recovery) = CounterNode::with_wal(&path).unwrap();
        assert_eq!(recovery.committed, 0);
        for v in 0..4 {
            assert!(node.commit(v).unwrap().accepted);
        }
        node.crash();
        // RAM gone: reload must rebuild the frontier from the log alone.
        let recovery = node.reload_from_wal().unwrap();
        assert_eq!(recovery.committed, 4);
        node.revive();
        assert_eq!(node.committed(), 4);
        assert!(node.commit(4).unwrap().accepted);
        std::fs::remove_file(&path).unwrap();
    }
}
