//! The readiness reactor behind [`crate::http::HttpServer`]: one thread
//! multiplexing *all* parked keep-alive sockets and the accept listener
//! through epoll (via the in-repo `libc` shim), so an idle connection
//! costs one registered fd and **zero CPU** until its next byte arrives —
//! replacing the poller-era 1 ms sweep whose cost grew O(n) with parked
//! connections.
//!
//! Mechanics:
//!
//! - Parked items are registered level-triggered with `EPOLLONESHOT`:
//!   the kernel reports each readiness exactly once, and the reactor
//!   removes the item from its table (plus `EPOLL_CTL_DEL`, so a later
//!   re-park can `ADD` again) before handing it to the client.
//! - The listener is also one-shot: an accept burst is a single event,
//!   answered by queueing one *low-priority* drain job; the job re-arms
//!   the registration when the backlog is empty. Level-triggered re-arm
//!   means connections that raced in meanwhile re-fire immediately.
//! - An `eventfd` wakes the loop for shutdown and for items workers hand
//!   back (hot connections re-entering the queue after their turn quota)
//!   — no self-connect hack, no polling.
//! - When the client's queue refuses a dispatch ([`ReactorClient::
//!   on_ready`] returns the item), the reactor parks it in a retry
//!   backlog and polls with a short timeout instead of blocking forever;
//!   the bytes wait in the socket, nothing is dropped.
//!
//! The reactor is generic over the parked item (anything `AsRawFd`) so
//! its register/re-arm/close races are unit-testable on bare
//! `TcpStream`s below, independent of HTTP.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Token values 0/1 are reserved; parked items get 2+.
const TOKEN_WAKE: u64 = 0;
const TOKEN_ACCEPT: u64 = 1;

/// Poll timeout while dispatches await queue space (retry backlog).
const RETRY_DELAY_MS: libc::c_int = 5;

/// Events drained per `epoll_wait` call.
const MAX_EVENTS: usize = 256;

/// How the reactor's owner reacts to readiness.
pub(crate) trait ReactorClient<T>: Send + Sync {
    /// The loop exits (closing everything it owns) once this is true.
    fn shutting_down(&self) -> bool;
    /// A parked item became readable (or closed — the client discovers
    /// which by reading). Return it to have the reactor retry shortly
    /// (dispatch queue full); the reactor never drops a ready item.
    fn on_ready(&self, item: T) -> Result<(), T>;
    /// The listener has pending connections: queue an accept-drain job.
    /// `false` means the queue refused and the reactor should retry.
    fn on_accept_ready(&self) -> bool;
}

struct ParkedItem<T> {
    item: T,
    since: Instant,
}

/// The readiness core: epoll fd + wake eventfd + listener + parked table.
pub(crate) struct Reactor<T> {
    epfd: libc::c_int,
    wake_fd: libc::c_int,
    listener: Mutex<Option<TcpListener>>,
    listener_fd: libc::c_int,
    parked: Mutex<HashMap<u64, ParkedItem<T>>>,
    /// Items workers hand back for immediate re-dispatch (quota-exhausted
    /// hot connections, or parked ones whose buffer still holds bytes).
    handback: Mutex<Vec<T>>,
    next_token: AtomicU64,
    /// Set by `close_all`: late `park` calls fail instead of leaking
    /// items into a table nobody will ever poll again.
    closed: AtomicBool,
    idle_timeout: Option<Duration>,
}

fn cvt(ret: libc::c_int) -> io::Result<libc::c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

impl<T: AsRawFd + Send> Reactor<T> {
    /// Build a reactor owning `listener` (switched to non-blocking and
    /// registered one-shot) plus a fresh epoll instance and wake eventfd.
    pub(crate) fn new(listener: TcpListener, idle_timeout: Option<Duration>) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let listener_fd = listener.as_raw_fd();
        let epfd = cvt(unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) })?;
        let wake_fd = match cvt(unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) })
        {
            Ok(fd) => fd,
            Err(e) => {
                unsafe { libc::close(epfd) };
                return Err(e);
            }
        };
        let reactor = Reactor {
            epfd,
            wake_fd,
            listener: Mutex::new(Some(listener)),
            listener_fd,
            parked: Mutex::new(HashMap::new()),
            handback: Mutex::new(Vec::new()),
            next_token: AtomicU64::new(2),
            closed: AtomicBool::new(false),
            idle_timeout,
        };
        reactor.ctl(libc::EPOLL_CTL_ADD, wake_fd, libc::EPOLLIN, TOKEN_WAKE)?;
        reactor.ctl(
            libc::EPOLL_CTL_ADD,
            listener_fd,
            libc::EPOLLIN | libc::EPOLLONESHOT,
            TOKEN_ACCEPT,
        )?;
        Ok(reactor)
    }

    fn ctl(&self, op: libc::c_int, fd: libc::c_int, events: u32, token: u64) -> io::Result<()> {
        let mut ev = libc::epoll_event { events, u64: token };
        cvt(unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Park an idle item: it costs nothing until its fd becomes readable
    /// (or the peer closes), at which point it is dispatched exactly once.
    /// Fails after `close_all` (the caller should drop the item).
    pub(crate) fn park(&self, item: T) -> io::Result<()> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "reactor closed",
            ));
        }
        let token = self.next_token.fetch_add(1, Ordering::SeqCst);
        let fd = item.as_raw_fd();
        // Insert before ADD so the event (which can fire on another
        // thread's epoll_wait immediately) always finds its item.
        self.parked.lock().expect("parked lock").insert(
            token,
            ParkedItem {
                item,
                since: Instant::now(),
            },
        );
        let armed = self.ctl(
            libc::EPOLL_CTL_ADD,
            fd,
            libc::EPOLLIN | libc::EPOLLRDHUP | libc::EPOLLONESHOT,
            token,
        );
        if armed.is_err() {
            self.parked.lock().expect("parked lock").remove(&token);
        }
        armed
    }

    /// Queue an item for immediate re-dispatch (no readiness wait) and
    /// wake the loop. Used by workers for quota-exhausted hot connections.
    pub(crate) fn hand_back(&self, item: T) {
        self.handback.lock().expect("handback lock").push(item);
        self.wake();
    }

    /// Wake a (possibly indefinitely) blocked `epoll_wait`.
    pub(crate) fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { libc::write(self.wake_fd, (&one as *const u64).cast(), 8) };
    }

    /// Non-blocking accept off the owned listener.
    pub(crate) fn try_accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        match &*self.listener.lock().expect("listener lock") {
            Some(listener) => listener.accept(),
            None => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "listener closed",
            )),
        }
    }

    /// Re-enable the one-shot listener registration after an accept
    /// drain. Level-triggered: pending connections re-fire immediately.
    pub(crate) fn rearm_accept(&self) {
        if self.listener.lock().expect("listener lock").is_some() {
            let _ = self.ctl(
                libc::EPOLL_CTL_MOD,
                self.listener_fd,
                libc::EPOLLIN | libc::EPOLLONESHOT,
                TOKEN_ACCEPT,
            );
        }
    }

    /// Items currently parked (diagnostics).
    pub(crate) fn parked_len(&self) -> usize {
        self.parked.lock().expect("parked lock").len()
    }

    /// Close the listener and drop every parked / handed-back item
    /// (dropping closes their sockets). Idempotent; later `park`s fail.
    pub(crate) fn close_all(&self) {
        self.closed.store(true, Ordering::SeqCst);
        *self.listener.lock().expect("listener lock") = None;
        self.parked.lock().expect("parked lock").clear();
        self.handback.lock().expect("handback lock").clear();
    }

    /// The reactor loop. Blocks in `epoll_wait` (indefinitely when
    /// nothing needs a timer) until shutdown; returns after `close_all`.
    pub(crate) fn run<C: ReactorClient<T>>(&self, client: &C) {
        let mut ready: VecDeque<T> = VecDeque::new();
        let mut accept_pending = false;
        let mut events = [libc::epoll_event { events: 0, u64: 0 }; MAX_EVENTS];
        loop {
            if client.shutting_down() {
                self.close_all();
                return;
            }
            let timeout_ms: libc::c_int = if !ready.is_empty() || accept_pending {
                RETRY_DELAY_MS
            } else if self.idle_timeout.is_some() && self.parked_len() > 0 {
                // Reap expired idlers at a quarter of the limit's
                // granularity; without a timeout, block indefinitely —
                // that's the "idle connections cost zero CPU" property.
                let limit = self.idle_timeout.expect("checked above");
                (limit.as_millis() / 4).clamp(1, 500) as libc::c_int
            } else {
                -1
            };
            let n = unsafe {
                libc::epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    MAX_EVENTS as libc::c_int,
                    timeout_ms,
                )
            };
            if client.shutting_down() {
                self.close_all();
                return;
            }
            for ev in events.iter().take(n.max(0) as usize) {
                let token = ev.u64;
                match token {
                    TOKEN_WAKE => self.drain_wake(),
                    TOKEN_ACCEPT => accept_pending = true,
                    token => {
                        let taken = self.parked.lock().expect("parked lock").remove(&token);
                        if let Some(parked) = taken {
                            // Fully deregister (one-shot only disarms) so
                            // a later re-park can ADD the fd again.
                            let _ = unsafe {
                                libc::epoll_ctl(
                                    self.epfd,
                                    libc::EPOLL_CTL_DEL,
                                    parked.item.as_raw_fd(),
                                    std::ptr::null_mut(),
                                )
                            };
                            ready.push_back(parked.item);
                        }
                    }
                }
            }
            ready.extend(self.handback.lock().expect("handback lock").drain(..));
            // Readable connections dispatch ahead of accepts — the
            // priority inversion the two-lane pool exists to prevent.
            while let Some(item) = ready.pop_front() {
                if let Err(item) = client.on_ready(item) {
                    ready.push_front(item);
                    break;
                }
            }
            if accept_pending && client.on_accept_ready() {
                accept_pending = false;
            }
            if let Some(limit) = self.idle_timeout {
                self.reap_idle(limit);
            }
        }
    }

    fn drain_wake(&self) {
        let mut buf: u64 = 0;
        // Nonblocking eventfd: one read collects all pending wakes.
        let _ = unsafe { libc::read(self.wake_fd, (&mut buf as *mut u64).cast(), 8) };
    }

    fn reap_idle(&self, limit: Duration) {
        let mut parked = self.parked.lock().expect("parked lock");
        let expired: Vec<u64> = parked
            .iter()
            .filter(|(_, p)| p.since.elapsed() >= limit)
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            if let Some(p) = parked.remove(&token) {
                let _ = unsafe {
                    libc::epoll_ctl(
                        self.epfd,
                        libc::EPOLL_CTL_DEL,
                        p.item.as_raw_fd(),
                        std::ptr::null_mut(),
                    )
                };
                // Dropping the item closes its socket.
            }
        }
    }
}

impl<T> Drop for Reactor<T> {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.wake_fd);
            libc::close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::{channel, Sender};
    use std::sync::{Arc, OnceLock};

    /// Test client: parks every accepted stream, forwards every ready
    /// stream through a channel.
    struct EchoClient {
        shutdown: AtomicBool,
        ready_tx: Mutex<Sender<TcpStream>>,
        reactor: OnceLock<Arc<Reactor<TcpStream>>>,
        accept_events: AtomicUsize,
    }

    impl ReactorClient<TcpStream> for EchoClient {
        fn shutting_down(&self) -> bool {
            self.shutdown.load(Ordering::SeqCst)
        }
        fn on_ready(&self, item: TcpStream) -> Result<(), TcpStream> {
            let _ = self.ready_tx.lock().unwrap().send(item);
            Ok(())
        }
        fn on_accept_ready(&self) -> bool {
            self.accept_events.fetch_add(1, Ordering::SeqCst);
            let reactor = self.reactor.get().expect("reactor set");
            while let Ok((stream, _)) = reactor.try_accept() {
                reactor.park(stream).unwrap();
            }
            reactor.rearm_accept();
            true
        }
    }

    struct Rig {
        reactor: Arc<Reactor<TcpStream>>,
        client: Arc<EchoClient>,
        addr: SocketAddr,
        rx: std::sync::mpsc::Receiver<TcpStream>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    fn rig(idle_timeout: Option<Duration>) -> Rig {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reactor = Arc::new(Reactor::new(listener, idle_timeout).unwrap());
        let (tx, rx) = channel();
        let client = Arc::new(EchoClient {
            shutdown: AtomicBool::new(false),
            ready_tx: Mutex::new(tx),
            reactor: OnceLock::new(),
            accept_events: AtomicUsize::new(0),
        });
        client.reactor.set(reactor.clone()).ok().unwrap();
        let (r, c) = (reactor.clone(), client.clone());
        let thread = std::thread::spawn(move || r.run(&*c));
        Rig {
            reactor,
            client,
            addr,
            rx,
            thread: Some(thread),
        }
    }

    impl Rig {
        fn stop(mut self) {
            self.client.shutdown.store(true, Ordering::SeqCst);
            self.reactor.wake();
            self.thread.take().unwrap().join().unwrap();
        }
    }

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn parked_stream_dispatches_once_per_readiness_and_rearms() {
        let rig = rig(None);
        let mut peer = TcpStream::connect(rig.addr).unwrap();
        peer.write_all(b"a").unwrap();
        // Accept → park → data already pending → immediate dispatch
        // (level-triggered ADD after the byte arrived still fires).
        let mut served = rig.rx.recv_timeout(WAIT).unwrap();
        let mut byte = [0u8; 1];
        served.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"a");
        // Nothing further pending: re-parking must NOT re-dispatch…
        rig.reactor.park(served).unwrap();
        assert!(rig.rx.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(rig.reactor.parked_len(), 1);
        // …until the next byte arrives (the re-arm race).
        peer.write_all(b"b").unwrap();
        let mut served = rig.rx.recv_timeout(WAIT).unwrap();
        served.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"b");
        assert_eq!(rig.reactor.parked_len(), 0);
        rig.stop();
    }

    #[test]
    fn peer_close_dispatches_the_parked_stream_for_reaping() {
        let rig = rig(None);
        let peer = TcpStream::connect(rig.addr).unwrap();
        // Quietly parked (no data): wait for the accept to land.
        let deadline = Instant::now() + WAIT;
        while rig.reactor.parked_len() == 0 {
            assert!(Instant::now() < deadline, "never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(peer); // FIN
        let mut served = rig.rx.recv_timeout(WAIT).unwrap();
        let mut byte = [0u8; 1];
        // The dispatched stream reads EOF — the client discovers the
        // close exactly the way a worker would.
        assert_eq!(served.read(&mut byte).unwrap(), 0);
        rig.stop();
    }

    #[test]
    fn handback_dispatches_without_a_readiness_event() {
        let rig = rig(None);
        let _peer = TcpStream::connect(rig.addr).unwrap();
        let deadline = Instant::now() + WAIT;
        while rig.reactor.parked_len() == 0 {
            assert!(Instant::now() < deadline, "never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Steal the parked stream (simulating a worker turn), then hand
        // it back: it must come around as ready with no bytes pending.
        let stream = {
            let mut parked = rig.reactor.parked.lock().unwrap();
            let token = *parked.keys().next().unwrap();
            parked.remove(&token).unwrap().item
        };
        rig.reactor.hand_back(stream);
        assert!(rig.rx.recv_timeout(WAIT).is_ok());
        rig.stop();
    }

    #[test]
    fn idle_timeout_reaps_parked_streams() {
        let rig = rig(Some(Duration::from_millis(30)));
        let peer = TcpStream::connect(rig.addr).unwrap();
        let deadline = Instant::now() + WAIT;
        while rig.reactor.parked_len() == 0 {
            assert!(Instant::now() < deadline, "never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Reaped without ever being dispatched: the peer sees the close.
        let deadline = Instant::now() + WAIT;
        while rig.reactor.parked_len() > 0 {
            assert!(Instant::now() < deadline, "never reaped");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(rig.rx.try_recv().is_err());
        let mut peer = peer;
        peer.set_read_timeout(Some(WAIT)).unwrap();
        let mut byte = [0u8; 1];
        assert_eq!(peer.read(&mut byte).unwrap_or(0), 0, "expected FIN");
        rig.stop();
    }

    #[test]
    fn shutdown_wake_exits_promptly_and_closes_parked_streams() {
        let rig = rig(None);
        let peer = TcpStream::connect(rig.addr).unwrap();
        let deadline = Instant::now() + WAIT;
        while rig.reactor.parked_len() == 0 {
            assert!(Instant::now() < deadline, "never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
        let reactor = rig.reactor.clone();
        let start = Instant::now();
        rig.stop(); // blocks in epoll_wait(-1) until the eventfd wake
        assert!(start.elapsed() < Duration::from_secs(2), "wake was slow");
        assert_eq!(reactor.parked_len(), 0);
        // Late parks fail instead of leaking into a dead table.
        assert!(reactor.park(peer.try_clone().unwrap()).is_err());
    }
}
