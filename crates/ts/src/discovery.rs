//! Service discovery (§VII-B b): clients "have to learn an URL address of
//! the service. We propose to implement this discovery process by adding
//! the service address as a smart contract instance metadata (similarly as
//! contract's name or the compiler version it was created with)."
//!
//! The simulator models contract metadata as an off-chain directory keyed
//! by contract address — the moral equivalent of the metadata JSON Solidity
//! toolchains publish per deployment.

use smacs_primitives::{json_codec, Address};
use std::collections::BTreeMap;

json_codec! {
    /// Per-contract deployment metadata.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct ContractMetadata {
        /// Human-readable contract name.
        pub name: String,
        /// Compiler/toolchain version string.
        pub compiler: String,
        /// URL of the Token Service protecting this contract, if any.
        pub token_service_url: Option<String>,
        /// Every replica of the protecting TS (§VII-B availability): a
        /// failover client rotates through these when one goes dark. Empty
        /// for single-node deployments; absent in pre-replication metadata
        /// JSON, which decodes to empty.
        pub replica_urls: Vec<String> = default,
    }
}

impl ContractMetadata {
    /// Every service URL a client may try, primary first, deduplicated,
    /// in stable order.
    pub fn all_service_urls(&self) -> Vec<String> {
        let mut urls: Vec<String> = Vec::new();
        if let Some(primary) = &self.token_service_url {
            urls.push(primary.clone());
        }
        for url in &self.replica_urls {
            if !urls.contains(url) {
                urls.push(url.clone());
            }
        }
        urls
    }
}

json_codec! {
    /// The metadata directory.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct ServiceDirectory {
        // Keyed by the contract's canonical hex address (JSON-friendly).
        entries: BTreeMap<String, ContractMetadata>,
    }
}

impl ServiceDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish metadata for a deployed contract.
    pub fn publish(&mut self, contract: Address, metadata: ContractMetadata) {
        self.entries.insert(contract.to_hex(), metadata);
    }

    /// Full metadata lookup.
    pub fn metadata(&self, contract: Address) -> Option<&ContractMetadata> {
        self.entries.get(&contract.to_hex())
    }

    /// The discovery operation a wallet performs: contract address → TS
    /// URL.
    pub fn ts_url(&self, contract: Address) -> Option<&str> {
        self.entries
            .get(&contract.to_hex())?
            .token_service_url
            .as_deref()
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_discover() {
        let mut dir = ServiceDirectory::new();
        let contract = Address::from_low_u64(7);
        dir.publish(
            contract,
            ContractMetadata {
                name: "Vault".into(),
                compiler: "smacs-chain 0.1".into(),
                token_service_url: Some("http://127.0.0.1:4545".into()),
                replica_urls: Vec::new(),
            },
        );
        assert_eq!(dir.ts_url(contract), Some("http://127.0.0.1:4545"));
        assert_eq!(dir.ts_url(Address::from_low_u64(8)), None);
        assert_eq!(dir.metadata(contract).unwrap().name, "Vault");
    }

    #[test]
    fn unprotected_contract_has_no_ts() {
        let mut dir = ServiceDirectory::new();
        let contract = Address::from_low_u64(7);
        dir.publish(
            contract,
            ContractMetadata {
                name: "Legacy".into(),
                compiler: "solc 0.4.24".into(),
                token_service_url: None,
                replica_urls: Vec::new(),
            },
        );
        assert_eq!(dir.ts_url(contract), None);
    }

    #[test]
    fn pre_replication_metadata_still_decodes() {
        // Metadata published before replica_urls existed omits the member;
        // the `= default` marker decodes it to empty.
        let json = r#"{"name":"Old","compiler":"solc","token_service_url":null}"#;
        let meta: ContractMetadata = smacs_primitives::json::from_str(json).unwrap();
        assert_eq!(meta.replica_urls, Vec::<String>::new());
        assert_eq!(meta.all_service_urls(), Vec::<String>::new());
    }

    #[test]
    fn directory_serializes() {
        let mut dir = ServiceDirectory::new();
        dir.publish(
            Address::from_low_u64(1),
            ContractMetadata {
                name: "A".into(),
                compiler: "x".into(),
                token_service_url: Some("http://ts".into()),
                replica_urls: vec!["http://ts".into(), "http://ts2".into()],
            },
        );
        let json = smacs_primitives::json::to_string(&dir);
        let back: ServiceDirectory = smacs_primitives::json::from_str(&json).unwrap();
        assert_eq!(back, dir);
    }
}
