//! The JSON front-end protocol: what flows over the TS's web interface.
//!
//! Owners and clients "interact with the TS through an HTTPS-enabled web
//! interface" (§IV). The protocol has two operations:
//!
//! - `POST /token` — a client submits a [`smacs_token::TokenRequest`]; the
//!   TS answers with a hex-encoded 86-byte token or a structured rejection;
//! - `POST /rules` — the owner replaces the rule book (authenticated by an
//!   owner bearer secret in this prototype; production would use TLS client
//!   auth).

use smacs_primitives::json::{FromJson, Json, JsonError, ToJson};
use smacs_token::{Token, TokenRequest};

use crate::rules::RuleBook;
use crate::service::TokenService;

/// A front-end request envelope.
#[derive(Clone, Debug)]
pub enum FrontRequest {
    /// Client: request a token.
    IssueToken {
        /// The token request body.
        request: TokenRequest,
    },
    /// Owner: replace the rule book.
    SetRules {
        /// Owner authentication secret.
        owner_secret: String,
        /// The new rules.
        rules: RuleBook,
    },
    /// Anyone: service liveness probe.
    Ping,
}

/// A front-end response envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontResponse {
    /// Token granted: the hex-encoded 86-byte wire image.
    Token {
        /// Hex of [`Token::to_bytes`].
        token_hex: String,
    },
    /// Request denied. The reason is deliberately coarse: rules stay
    /// private to the TS (§VII-A d).
    Denied {
        /// Human-readable rejection summary.
        reason: String,
    },
    /// Rules updated.
    RulesUpdated,
    /// Pong.
    Pong,
    /// Malformed request or bad owner secret.
    Error {
        /// What went wrong.
        message: String,
    },
}

// The wire shape matches what the original serde derive produced:
// internally tagged envelopes with snake_case tags —
// `{"op": "issue_token", "request": {...}}` / `{"status": "token", ...}`.

impl ToJson for FrontRequest {
    fn to_json(&self) -> Json {
        match self {
            FrontRequest::IssueToken { request } => Json::Obj(vec![
                ("op".into(), Json::Str("issue_token".into())),
                ("request".into(), request.to_json()),
            ]),
            FrontRequest::SetRules {
                owner_secret,
                rules,
            } => Json::Obj(vec![
                ("op".into(), Json::Str("set_rules".into())),
                ("owner_secret".into(), owner_secret.to_json()),
                ("rules".into(), rules.to_json()),
            ]),
            FrontRequest::Ping => Json::Obj(vec![("op".into(), Json::Str("ping".into()))]),
        }
    }
}

impl FromJson for FrontRequest {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.want("op")?.as_str() {
            Some("issue_token") => Ok(FrontRequest::IssueToken {
                request: TokenRequest::from_json(json.want("request")?)?,
            }),
            Some("set_rules") => Ok(FrontRequest::SetRules {
                owner_secret: String::from_json(json.want("owner_secret")?)?,
                rules: RuleBook::from_json(json.want("rules")?)?,
            }),
            Some("ping") => Ok(FrontRequest::Ping),
            other => Err(JsonError(format!("unknown op {other:?}"))),
        }
    }
}

impl ToJson for FrontResponse {
    fn to_json(&self) -> Json {
        match self {
            FrontResponse::Token { token_hex } => Json::Obj(vec![
                ("status".into(), Json::Str("token".into())),
                ("token_hex".into(), token_hex.to_json()),
            ]),
            FrontResponse::Denied { reason } => Json::Obj(vec![
                ("status".into(), Json::Str("denied".into())),
                ("reason".into(), reason.to_json()),
            ]),
            FrontResponse::RulesUpdated => {
                Json::Obj(vec![("status".into(), Json::Str("rules_updated".into()))])
            }
            FrontResponse::Pong => Json::Obj(vec![("status".into(), Json::Str("pong".into()))]),
            FrontResponse::Error { message } => Json::Obj(vec![
                ("status".into(), Json::Str("error".into())),
                ("message".into(), message.to_json()),
            ]),
        }
    }
}

impl FromJson for FrontResponse {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.want("status")?.as_str() {
            Some("token") => Ok(FrontResponse::Token {
                token_hex: String::from_json(json.want("token_hex")?)?,
            }),
            Some("denied") => Ok(FrontResponse::Denied {
                reason: String::from_json(json.want("reason")?)?,
            }),
            Some("rules_updated") => Ok(FrontResponse::RulesUpdated),
            Some("pong") => Ok(FrontResponse::Pong),
            Some("error") => Ok(FrontResponse::Error {
                message: String::from_json(json.want("message")?)?,
            }),
            other => Err(JsonError(format!("unknown status {other:?}"))),
        }
    }
}

/// The front end: a service plus its owner secret.
pub struct FrontEnd {
    service: TokenService,
    owner_secret: String,
    /// TS-local clock (seconds); tests and experiments advance it manually.
    now: std::sync::atomic::AtomicU64,
}

impl FrontEnd {
    /// Wrap a service.
    pub fn new(service: TokenService, owner_secret: impl Into<String>, now: u64) -> Self {
        FrontEnd {
            service,
            owner_secret: owner_secret.into(),
            now: std::sync::atomic::AtomicU64::new(now),
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &TokenService {
        &self.service
    }

    /// Advance the TS-local clock.
    pub fn advance_time(&self, secs: u64) {
        self.now
            .fetch_add(secs, std::sync::atomic::Ordering::SeqCst);
    }

    /// Handle a structured request.
    pub fn handle(&self, request: FrontRequest) -> FrontResponse {
        match request {
            FrontRequest::IssueToken { request } => {
                let now = self.now.load(std::sync::atomic::Ordering::SeqCst);
                match self.service.issue(&request, now) {
                    Ok(token) => FrontResponse::Token {
                        token_hex: hex_encode(&token),
                    },
                    Err(e) => FrontResponse::Denied {
                        reason: e.to_string(),
                    },
                }
            }
            FrontRequest::SetRules {
                owner_secret,
                rules,
            } => {
                if owner_secret != self.owner_secret {
                    return FrontResponse::Error {
                        message: "bad owner secret".into(),
                    };
                }
                self.service.set_rules(rules);
                FrontResponse::RulesUpdated
            }
            FrontRequest::Ping => FrontResponse::Pong,
        }
    }

    /// Handle a raw JSON request line (the wire form of [`FrontEnd::handle`]).
    pub fn handle_json(&self, body: &str) -> String {
        let response = match smacs_primitives::json::from_str::<FrontRequest>(body) {
            Ok(req) => self.handle(req),
            Err(e) => FrontResponse::Error {
                message: format!("bad request: {e}"),
            },
        };
        smacs_primitives::json::to_string(&response)
    }
}

fn hex_encode(token: &Token) -> String {
    let bytes = token.to_bytes();
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode a hex token string returned by the front end.
pub fn decode_token_hex(s: &str) -> Option<Token> {
    if s.len() != Token::SIZE * 2 {
        return None;
    }
    let mut bytes = Vec::with_capacity(Token::SIZE);
    for i in (0..s.len()).step_by(2) {
        bytes.push(u8::from_str_radix(&s[i..i + 2], 16).ok()?);
    }
    Token::from_bytes(&bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TokenServiceConfig;
    use smacs_crypto::Keypair;
    use smacs_primitives::Address;
    use smacs_token::TokenType;

    fn front() -> FrontEnd {
        let service = TokenService::new(
            Keypair::from_seed(1),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        FrontEnd::new(service, "hunter2", 1_000)
    }

    fn request() -> TokenRequest {
        TokenRequest::super_token(Address::from_low_u64(1), Address::from_low_u64(2))
    }

    #[test]
    fn issue_round_trip_through_json() {
        let front = front();
        let body =
            smacs_primitives::json::to_string(&FrontRequest::IssueToken { request: request() });
        let response: FrontResponse =
            smacs_primitives::json::from_str(&front.handle_json(&body)).unwrap();
        let FrontResponse::Token { token_hex } = response else {
            panic!("expected token, got {response:?}");
        };
        let token = decode_token_hex(&token_hex).unwrap();
        assert_eq!(token.ttype, TokenType::Super);
        assert_eq!(token.expire, 1_000 + 3_600);
    }

    #[test]
    fn denial_reports_reason_but_not_rules() {
        let front = front();
        front.service().set_rules(RuleBook::deny_all());
        let response = front.handle(FrontRequest::IssueToken { request: request() });
        let FrontResponse::Denied { reason } = response else {
            panic!("expected denial");
        };
        // The denial must not leak list contents.
        assert!(!reason.contains("0x"), "leaked rule detail: {reason}");
    }

    #[test]
    fn owner_secret_gates_rule_updates() {
        let front = front();
        let bad = front.handle(FrontRequest::SetRules {
            owner_secret: "wrong".into(),
            rules: RuleBook::deny_all(),
        });
        assert!(matches!(bad, FrontResponse::Error { .. }));
        // Service still permissive.
        assert!(matches!(
            front.handle(FrontRequest::IssueToken { request: request() }),
            FrontResponse::Token { .. }
        ));

        let good = front.handle(FrontRequest::SetRules {
            owner_secret: "hunter2".into(),
            rules: RuleBook::deny_all(),
        });
        assert_eq!(good, FrontResponse::RulesUpdated);
        assert!(matches!(
            front.handle(FrontRequest::IssueToken { request: request() }),
            FrontResponse::Denied { .. }
        ));
    }

    #[test]
    fn malformed_json_is_an_error() {
        let front = front();
        let response: FrontResponse =
            smacs_primitives::json::from_str(&front.handle_json("{not json")).unwrap();
        assert!(matches!(response, FrontResponse::Error { .. }));
    }

    #[test]
    fn ping_pong() {
        assert_eq!(front().handle(FrontRequest::Ping), FrontResponse::Pong);
    }

    #[test]
    fn clock_advances_expiry() {
        let front = front();
        front.advance_time(100);
        let FrontResponse::Token { token_hex } =
            front.handle(FrontRequest::IssueToken { request: request() })
        else {
            panic!()
        };
        assert_eq!(decode_token_hex(&token_hex).unwrap().expire, 1_100 + 3_600);
    }

    #[test]
    fn token_hex_rejects_garbage() {
        assert!(decode_token_hex("zz").is_none());
        assert!(decode_token_hex(&"00".repeat(Token::SIZE)).is_none()); // bad type byte
    }
}
