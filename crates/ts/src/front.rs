//! The JSON front-end: what flows over the TS's web interface.
//!
//! Owners and clients "interact with the TS through an HTTPS-enabled web
//! interface" (§IV). Two protocol generations coexist:
//!
//! - **v2** (current): versioned `{"v": 2, "op": …, "body": …}` envelopes
//!   with machine-readable error codes and batch issuance — the full
//!   grammar lives in [`crate::api`]. All five [`crate::api::TsApi`] ops
//!   dispatch through [`FrontEnd::handle_api`].
//! - **v1** (legacy): the unversioned `{"op": "issue_token", …}` /
//!   `{"op": "set_rules", …}` / `{"op": "ping"}` envelopes this prototype
//!   launched with. [`FrontEnd::handle_json`] recognizes the missing `v`
//!   field and answers in the original [`FrontResponse`] shape, so old
//!   clients keep working unchanged.
//!
//! Both generations funnel into the same [`FrontEnd::handle_api`] — the
//! single code path the in-process client exercises too.

use parking_lot::RwLock;
use smacs_primitives::json::{FromJson, Json, JsonError, ToJson};
use smacs_primitives::Address;
use smacs_token::{Token, TokenRequest};

use crate::api::{
    ApiError, BatchItem, BatchRequestBody, BatchResponseBody, CounterCommitBody, CounterStateBody,
    CounterVoteBody, DiscoverBody, DiscoverResponseBody, ErrorCode, IssueBody, RequestEnvelope,
    ResponseEnvelope, SetRulesBody, WireError, MAX_BATCH, PROTOCOL_VERSION,
};
use crate::discovery::{ContractMetadata, ServiceDirectory};
use crate::replica::CounterNode;
use crate::rules::RuleBook;
use crate::service::TokenService;
use std::sync::Arc;

/// Which op families a network endpoint dispatches.
///
/// The `counter_*` vote ops are replica-internal: a hostile client that
/// could reach them would burn or skip arbitrary one-time index ranges
/// and subvert the quorum. Only the dedicated vote endpoint serves them;
/// the client-facing endpoint refuses them with `counter_unavailable`
/// even when the front end has a counter node attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EndpointScope {
    /// Client-facing endpoint: the `counter_*` ops are refused.
    #[default]
    Public,
    /// Replica-internal vote endpoint: full dispatch, `counter_*`
    /// included.
    Vote,
}

/// A structured v2 API request — the transport-independent form both
/// [`crate::api::InProcessClient`] and the HTTP server dispatch.
#[derive(Clone, Debug)]
pub enum ApiRequest {
    /// Client: request one token.
    Issue(TokenRequest),
    /// Client: request up to [`MAX_BATCH`] tokens in one round trip.
    IssueBatch(Vec<TokenRequest>),
    /// Owner: replace the rule book.
    SetRules {
        /// Owner authentication secret.
        owner_secret: String,
        /// The new rules.
        rules: RuleBook,
    },
    /// Anyone: look up published contract metadata (§VII-B discovery).
    Discover {
        /// The contract of interest.
        contract: Address,
    },
    /// Anyone: liveness probe.
    Ping,
    /// Peer replica: phase-1 read of this replica's counter frontier.
    CounterPrepare,
    /// Peer replica: phase-2 vote to burn one-time index `value`.
    CounterCommit {
        /// The proposed index.
        value: u64,
    },
    /// Peer replica: recovery read of this replica's counter frontier.
    CounterCatchup,
}

/// A successful v2 API response.
#[derive(Clone, Debug)]
pub enum ApiOk {
    /// One minted token.
    Token(Token),
    /// Per-request batch outcomes, in request order.
    Batch(Vec<Result<Token, ApiError>>),
    /// Rules replaced.
    RulesSet,
    /// Discovery result (`None`: contract unknown to this TS).
    Discovered(Option<ContractMetadata>),
    /// Pong.
    Pong,
    /// The local counter node's frontier (`counter_prepare` /
    /// `counter_catchup`).
    CounterState {
        /// The node's next free one-time index.
        committed: u64,
    },
    /// The local counter node's `counter_commit` vote.
    CounterVote {
        /// True iff the node burned the proposed value.
        accepted: bool,
        /// The node's frontier after the vote.
        committed: u64,
    },
}

/// A front-end request envelope.
#[derive(Clone, Debug)]
pub enum FrontRequest {
    /// Client: request a token.
    IssueToken {
        /// The token request body.
        request: TokenRequest,
    },
    /// Owner: replace the rule book.
    SetRules {
        /// Owner authentication secret.
        owner_secret: String,
        /// The new rules.
        rules: RuleBook,
    },
    /// Anyone: service liveness probe.
    Ping,
}

/// A front-end response envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontResponse {
    /// Token granted: the hex-encoded 86-byte wire image.
    Token {
        /// Hex of [`Token::to_bytes`].
        token_hex: String,
    },
    /// Request denied. The reason is deliberately coarse: rules stay
    /// private to the TS (§VII-A d).
    Denied {
        /// Human-readable rejection summary.
        reason: String,
    },
    /// Rules updated.
    RulesUpdated,
    /// Pong.
    Pong,
    /// Malformed request or bad owner secret.
    Error {
        /// What went wrong.
        message: String,
    },
}

// The wire shape matches what the original serde derive produced:
// internally tagged envelopes with snake_case tags —
// `{"op": "issue_token", "request": {...}}` / `{"status": "token", ...}`.
// Hand-written because `json_codec!` only generates plain struct codecs.

impl ToJson for FrontRequest {
    fn to_json(&self) -> Json {
        match self {
            FrontRequest::IssueToken { request } => Json::Obj(vec![
                ("op".into(), Json::Str("issue_token".into())),
                ("request".into(), request.to_json()),
            ]),
            FrontRequest::SetRules {
                owner_secret,
                rules,
            } => Json::Obj(vec![
                ("op".into(), Json::Str("set_rules".into())),
                ("owner_secret".into(), owner_secret.to_json()),
                ("rules".into(), rules.to_json()),
            ]),
            FrontRequest::Ping => Json::Obj(vec![("op".into(), Json::Str("ping".into()))]),
        }
    }
}

impl FromJson for FrontRequest {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.want("op")?.as_str() {
            Some("issue_token") => Ok(FrontRequest::IssueToken {
                request: TokenRequest::from_json(json.want("request")?)?,
            }),
            Some("set_rules") => Ok(FrontRequest::SetRules {
                owner_secret: String::from_json(json.want("owner_secret")?)?,
                rules: RuleBook::from_json(json.want("rules")?)?,
            }),
            Some("ping") => Ok(FrontRequest::Ping),
            other => Err(JsonError(format!("unknown op {other:?}"))),
        }
    }
}

impl ToJson for FrontResponse {
    fn to_json(&self) -> Json {
        match self {
            FrontResponse::Token { token_hex } => Json::Obj(vec![
                ("status".into(), Json::Str("token".into())),
                ("token_hex".into(), token_hex.to_json()),
            ]),
            FrontResponse::Denied { reason } => Json::Obj(vec![
                ("status".into(), Json::Str("denied".into())),
                ("reason".into(), reason.to_json()),
            ]),
            FrontResponse::RulesUpdated => {
                Json::Obj(vec![("status".into(), Json::Str("rules_updated".into()))])
            }
            FrontResponse::Pong => Json::Obj(vec![("status".into(), Json::Str("pong".into()))]),
            FrontResponse::Error { message } => Json::Obj(vec![
                ("status".into(), Json::Str("error".into())),
                ("message".into(), message.to_json()),
            ]),
        }
    }
}

impl FromJson for FrontResponse {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.want("status")?.as_str() {
            Some("token") => Ok(FrontResponse::Token {
                token_hex: String::from_json(json.want("token_hex")?)?,
            }),
            Some("denied") => Ok(FrontResponse::Denied {
                reason: String::from_json(json.want("reason")?)?,
            }),
            Some("rules_updated") => Ok(FrontResponse::RulesUpdated),
            Some("pong") => Ok(FrontResponse::Pong),
            Some("error") => Ok(FrontResponse::Error {
                message: String::from_json(json.want("message")?)?,
            }),
            other => Err(JsonError(format!("unknown status {other:?}"))),
        }
    }
}

/// The front end: a service, its owner secret, the TS-local clock, and the
/// discovery metadata this TS publishes.
pub struct FrontEnd {
    service: TokenService,
    owner_secret: String,
    /// TS-local clock (seconds); tests and experiments drive it manually.
    now: std::sync::atomic::AtomicU64,
    directory: RwLock<ServiceDirectory>,
    /// This replica's counter node, when it participates in a wire-level
    /// counter quorum: the `counter_*` ops vote against it — but only
    /// through a [`EndpointScope::Vote`] dispatch; the public endpoint
    /// never reaches it. `None` (the single-service case) answers those
    /// ops `counter_unavailable` everywhere.
    counter: Option<Arc<CounterNode>>,
}

impl FrontEnd {
    /// Wrap a service.
    pub fn new(service: TokenService, owner_secret: impl Into<String>, now: u64) -> Self {
        FrontEnd {
            service,
            owner_secret: owner_secret.into(),
            now: std::sync::atomic::AtomicU64::new(now),
            directory: RwLock::new(ServiceDirectory::new()),
            counter: None,
        }
    }

    /// Attach the replica's counter node so this front end answers the
    /// `counter_*` vote ops (builder form; used by `ReplicaSet`).
    pub fn with_counter(mut self, node: Arc<CounterNode>) -> Self {
        self.counter = Some(node);
        self
    }

    /// The wrapped service.
    pub fn service(&self) -> &TokenService {
        &self.service
    }

    /// Advance the TS-local clock.
    pub fn advance_time(&self, secs: u64) {
        self.now
            .fetch_add(secs, std::sync::atomic::Ordering::SeqCst);
    }

    /// Set the TS-local clock.
    pub fn set_time(&self, now: u64) {
        self.now.store(now, std::sync::atomic::Ordering::SeqCst);
    }

    /// The TS-local clock.
    pub fn time(&self) -> u64 {
        self.now.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Publish discovery metadata for a contract this TS protects; served
    /// by the `discover` op.
    pub fn publish(&self, contract: Address, metadata: ContractMetadata) {
        self.directory.write().publish(contract, metadata);
    }

    /// Handle a structured v2 request — the one dispatch every transport
    /// funnels into.
    pub fn handle_api(&self, request: ApiRequest) -> Result<ApiOk, ApiError> {
        match request {
            ApiRequest::Issue(request) => self
                .service
                .issue(&request, self.time())
                .map(ApiOk::Token)
                .map_err(ApiError::from),
            ApiRequest::IssueBatch(requests) => {
                if requests.len() > MAX_BATCH {
                    return Err(ApiError::new(
                        ErrorCode::BadEnvelope,
                        format!("batch of {} exceeds limit {MAX_BATCH}", requests.len()),
                    ));
                }
                Ok(ApiOk::Batch(
                    self.service
                        .issue_batch(&requests, self.time())
                        .into_iter()
                        .map(|r| r.map_err(ApiError::from))
                        .collect(),
                ))
            }
            ApiRequest::SetRules {
                owner_secret,
                rules,
            } => {
                if owner_secret != self.owner_secret {
                    return Err(ApiError::new(ErrorCode::Unauthorized, "bad owner secret"));
                }
                self.service.set_rules(rules);
                Ok(ApiOk::RulesSet)
            }
            ApiRequest::Discover { contract } => Ok(ApiOk::Discovered(
                self.directory.read().metadata(contract).cloned(),
            )),
            ApiRequest::Ping => Ok(ApiOk::Pong),
            ApiRequest::CounterPrepare => self
                .counter_node()?
                .prepare()
                .map(|committed| ApiOk::CounterState { committed })
                .ok_or_else(counter_refusing),
            ApiRequest::CounterCommit { value } => self
                .counter_node()?
                .commit(value)
                .map(|vote| ApiOk::CounterVote {
                    accepted: vote.accepted,
                    committed: vote.committed,
                })
                .ok_or_else(counter_refusing),
            ApiRequest::CounterCatchup => self
                .counter_node()?
                .catchup()
                .map(|committed| ApiOk::CounterState { committed })
                .ok_or_else(counter_refusing),
        }
    }

    /// The local counter node, or `counter_unavailable` when this front
    /// end isn't part of a counter quorum.
    fn counter_node(&self) -> Result<&Arc<CounterNode>, ApiError> {
        self.counter.as_ref().ok_or_else(|| {
            ApiError::new(
                ErrorCode::CounterUnavailable,
                "no counter node at this endpoint",
            )
        })
    }

    /// Handle a structured v1 request — a shim over [`FrontEnd::handle_api`]
    /// that restates the outcome in the legacy response vocabulary.
    pub fn handle(&self, request: FrontRequest) -> FrontResponse {
        match request {
            FrontRequest::IssueToken { request } => {
                match self.handle_api(ApiRequest::Issue(request)) {
                    Ok(ApiOk::Token(token)) => FrontResponse::Token {
                        token_hex: encode_token_hex(&token),
                    },
                    Ok(other) => FrontResponse::Error {
                        message: format!("mismatched response {other:?}"),
                    },
                    Err(e) => FrontResponse::Denied { reason: e.message },
                }
            }
            FrontRequest::SetRules {
                owner_secret,
                rules,
            } => match self.handle_api(ApiRequest::SetRules {
                owner_secret,
                rules,
            }) {
                Ok(_) => FrontResponse::RulesUpdated,
                Err(e) => FrontResponse::Error { message: e.message },
            },
            FrontRequest::Ping => FrontResponse::Pong,
        }
    }

    /// Handle one raw JSON request body with [`EndpointScope::Public`]
    /// dispatch — the safe default for anything a client can reach.
    pub fn handle_json(&self, body: &str) -> String {
        self.handle_json_scoped(body, EndpointScope::Public)
    }

    /// Handle one raw JSON request body, dispatching on protocol version:
    /// a `"v"` member marks a v2 envelope; anything else takes the v1
    /// legacy path (including its free-text error responses). `scope`
    /// selects which op families this endpoint serves — only
    /// [`EndpointScope::Vote`] (the replica-internal vote endpoint)
    /// dispatches the `counter_*` family.
    pub fn handle_json_scoped(&self, body: &str, scope: EndpointScope) -> String {
        match Json::parse(body) {
            Ok(json) if json.get("v").is_some() => self.handle_v2_json(&json, scope).render(),
            Ok(json) => {
                let response = match FrontRequest::from_json(&json) {
                    Ok(req) => self.handle(req),
                    Err(e) => FrontResponse::Error {
                        message: format!("bad request: {e}"),
                    },
                };
                smacs_primitives::json::to_string(&response)
            }
            Err(e) => smacs_primitives::json::to_string(&FrontResponse::Error {
                message: format!("bad request: {e}"),
            }),
        }
    }

    /// Decode a v2 envelope, dispatch it, and encode the response envelope.
    fn handle_v2_json(&self, json: &Json, scope: EndpointScope) -> Json {
        let result = decode_v2_request(json).and_then(|req| {
            if scope == EndpointScope::Public && is_counter_op(&req) {
                Err(ApiError::new(
                    ErrorCode::CounterUnavailable,
                    "counter votes are replica-internal: not served on this endpoint",
                ))
            } else {
                self.handle_api(req)
            }
        });
        encode_v2_response(&result)
    }
}

/// Whether a request belongs to the replica-internal `counter_*` family.
fn is_counter_op(request: &ApiRequest) -> bool {
    matches!(
        request,
        ApiRequest::CounterPrepare | ApiRequest::CounterCommit { .. } | ApiRequest::CounterCatchup
    )
}

/// Parse a v2 envelope into an [`ApiRequest`].
fn decode_v2_request(json: &Json) -> Result<ApiRequest, ApiError> {
    let envelope = RequestEnvelope::from_json(json)
        .map_err(|e| ApiError::new(ErrorCode::BadEnvelope, format!("bad envelope: {e}")))?;
    if envelope.v != PROTOCOL_VERSION {
        return Err(ApiError::new(
            ErrorCode::UnsupportedVersion,
            format!("unsupported protocol version {}", envelope.v),
        ));
    }
    let body = envelope.body.unwrap_or(Json::Null);
    let bad_body = |e: JsonError| ApiError::new(ErrorCode::BadEnvelope, format!("bad body: {e}"));
    match envelope.op.as_str() {
        "issue" => Ok(ApiRequest::Issue(
            TokenRequest::from_json(&body).map_err(bad_body)?,
        )),
        "issue_batch" => Ok(ApiRequest::IssueBatch(
            BatchRequestBody::from_json(&body)
                .map_err(bad_body)?
                .requests,
        )),
        "set_rules" => {
            let body = SetRulesBody::from_json(&body).map_err(bad_body)?;
            Ok(ApiRequest::SetRules {
                owner_secret: body.owner_secret,
                rules: body.rules,
            })
        }
        "discover" => Ok(ApiRequest::Discover {
            contract: DiscoverBody::from_json(&body).map_err(bad_body)?.contract,
        }),
        "ping" => Ok(ApiRequest::Ping),
        "counter_prepare" => Ok(ApiRequest::CounterPrepare),
        "counter_commit" => Ok(ApiRequest::CounterCommit {
            value: CounterCommitBody::from_json(&body).map_err(bad_body)?.value,
        }),
        "counter_catchup" => Ok(ApiRequest::CounterCatchup),
        other => Err(ApiError::new(
            ErrorCode::BadEnvelope,
            format!("unknown op {other:?}"),
        )),
    }
}

/// The error a live quorum member answers with while its node is crashed
/// or partitioned away from the consensus group.
fn counter_refusing() -> ApiError {
    ApiError::new(ErrorCode::CounterUnavailable, "counter node not answering")
}

/// Encode an API outcome as a v2 response envelope.
fn encode_v2_response(result: &Result<ApiOk, ApiError>) -> Json {
    let envelope = match result {
        Ok(ok) => ResponseEnvelope {
            v: PROTOCOL_VERSION,
            ok: true,
            body: Some(match ok {
                ApiOk::Token(token) => IssueBody {
                    token_hex: encode_token_hex(token),
                }
                .to_json(),
                ApiOk::Batch(results) => BatchResponseBody {
                    results: results.iter().map(BatchItem::from_result).collect(),
                }
                .to_json(),
                ApiOk::RulesSet => Json::Obj(vec![]),
                ApiOk::Discovered(metadata) => DiscoverResponseBody {
                    metadata: metadata.clone(),
                }
                .to_json(),
                ApiOk::Pong => Json::Obj(vec![("pong".into(), Json::Bool(true))]),
                ApiOk::CounterState { committed } => CounterStateBody {
                    committed: *committed,
                }
                .to_json(),
                ApiOk::CounterVote {
                    accepted,
                    committed,
                } => CounterVoteBody {
                    accepted: *accepted,
                    committed: *committed,
                }
                .to_json(),
            }),
            error: None,
        },
        Err(e) => ResponseEnvelope {
            v: PROTOCOL_VERSION,
            ok: false,
            body: None,
            error: Some(WireError::from(e)),
        },
    };
    envelope.to_json()
}

/// Hex-encode a token's 86-byte wire image (the `token_hex` fields of both
/// protocol generations).
pub fn encode_token_hex(token: &Token) -> String {
    let bytes = token.to_bytes();
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode a hex token string returned by the front end.
pub fn decode_token_hex(s: &str) -> Option<Token> {
    if s.len() != Token::SIZE * 2 {
        return None;
    }
    let mut bytes = Vec::with_capacity(Token::SIZE);
    for i in (0..s.len()).step_by(2) {
        bytes.push(u8::from_str_radix(&s[i..i + 2], 16).ok()?);
    }
    Token::from_bytes(&bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TokenServiceConfig;
    use smacs_crypto::Keypair;
    use smacs_primitives::Address;
    use smacs_token::TokenType;

    fn front() -> FrontEnd {
        let service = TokenService::new(
            Keypair::from_seed(1),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        FrontEnd::new(service, "hunter2", 1_000)
    }

    fn request() -> TokenRequest {
        TokenRequest::super_token(Address::from_low_u64(1), Address::from_low_u64(2))
    }

    #[test]
    fn issue_round_trip_through_json() {
        let front = front();
        let body =
            smacs_primitives::json::to_string(&FrontRequest::IssueToken { request: request() });
        let response: FrontResponse =
            smacs_primitives::json::from_str(&front.handle_json(&body)).unwrap();
        let FrontResponse::Token { token_hex } = response else {
            panic!("expected token, got {response:?}");
        };
        let token = decode_token_hex(&token_hex).unwrap();
        assert_eq!(token.ttype, TokenType::Super);
        assert_eq!(token.expire, 1_000 + 3_600);
    }

    #[test]
    fn denial_reports_reason_but_not_rules() {
        let front = front();
        front.service().set_rules(RuleBook::deny_all());
        let response = front.handle(FrontRequest::IssueToken { request: request() });
        let FrontResponse::Denied { reason } = response else {
            panic!("expected denial");
        };
        // The denial must not leak list contents.
        assert!(!reason.contains("0x"), "leaked rule detail: {reason}");
    }

    #[test]
    fn owner_secret_gates_rule_updates() {
        let front = front();
        let bad = front.handle(FrontRequest::SetRules {
            owner_secret: "wrong".into(),
            rules: RuleBook::deny_all(),
        });
        assert!(matches!(bad, FrontResponse::Error { .. }));
        // Service still permissive.
        assert!(matches!(
            front.handle(FrontRequest::IssueToken { request: request() }),
            FrontResponse::Token { .. }
        ));

        let good = front.handle(FrontRequest::SetRules {
            owner_secret: "hunter2".into(),
            rules: RuleBook::deny_all(),
        });
        assert_eq!(good, FrontResponse::RulesUpdated);
        assert!(matches!(
            front.handle(FrontRequest::IssueToken { request: request() }),
            FrontResponse::Denied { .. }
        ));
    }

    #[test]
    fn malformed_json_is_an_error() {
        let front = front();
        let response: FrontResponse =
            smacs_primitives::json::from_str(&front.handle_json("{not json")).unwrap();
        assert!(matches!(response, FrontResponse::Error { .. }));
    }

    #[test]
    fn ping_pong() {
        assert_eq!(front().handle(FrontRequest::Ping), FrontResponse::Pong);
    }

    #[test]
    fn clock_advances_expiry() {
        let front = front();
        front.advance_time(100);
        let FrontResponse::Token { token_hex } =
            front.handle(FrontRequest::IssueToken { request: request() })
        else {
            panic!()
        };
        assert_eq!(decode_token_hex(&token_hex).unwrap().expire, 1_100 + 3_600);
    }

    #[test]
    fn token_hex_rejects_garbage() {
        assert!(decode_token_hex("zz").is_none());
        assert!(decode_token_hex(&"00".repeat(Token::SIZE)).is_none()); // bad type byte
    }

    #[test]
    fn counter_ops_without_a_node_fail_closed() {
        let front = front();
        for request in [
            ApiRequest::CounterPrepare,
            ApiRequest::CounterCommit { value: 0 },
            ApiRequest::CounterCatchup,
        ] {
            let err = front.handle_api(request).unwrap_err();
            assert_eq!(err.code, ErrorCode::CounterUnavailable);
        }
    }

    #[test]
    fn public_scope_refuses_counter_ops_even_with_a_node_attached() {
        let service = TokenService::new(
            Keypair::from_seed(1),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        let node = CounterNode::new();
        let front = FrontEnd::new(service, "hunter2", 1_000).with_counter(node.clone());
        let commit = r#"{"v":2,"op":"counter_commit","body":{"value":0}}"#;

        // Public dispatch (what the client-facing listener uses) must not
        // let an outsider burn indexes…
        let response = front.handle_json_scoped(commit, EndpointScope::Public);
        assert!(
            response.contains("counter_unavailable"),
            "public endpoint served a vote op: {response}"
        );
        assert_eq!(node.committed(), 0, "refused vote must not touch state");
        // …and `handle_json` defaults to the public scope.
        assert!(front.handle_json(commit).contains("counter_unavailable"));

        // The vote scope (the dedicated replica-internal endpoint) serves
        // the same envelope.
        let response = front.handle_json_scoped(commit, EndpointScope::Vote);
        assert!(
            response.contains("\"accepted\""),
            "vote refused: {response}"
        );
        assert_eq!(node.committed(), 1);
    }

    #[test]
    fn counter_ops_vote_against_the_attached_node() {
        let service = TokenService::new(
            Keypair::from_seed(1),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        let node = CounterNode::new();
        let front = FrontEnd::new(service, "hunter2", 1_000).with_counter(node.clone());

        let Ok(ApiOk::CounterState { committed }) = front.handle_api(ApiRequest::CounterPrepare)
        else {
            panic!("prepare refused");
        };
        assert_eq!(committed, 0);

        // In-order commit accepted; replayed duplicate rejected.
        let Ok(ApiOk::CounterVote {
            accepted,
            committed,
        }) = front.handle_api(ApiRequest::CounterCommit { value: 0 })
        else {
            panic!("commit refused");
        };
        assert!(accepted);
        assert_eq!(committed, 1);
        let Ok(ApiOk::CounterVote { accepted, .. }) =
            front.handle_api(ApiRequest::CounterCommit { value: 0 })
        else {
            panic!("commit refused");
        };
        assert!(!accepted, "duplicate vote must be rejected");

        // A crashed/partitioned node refuses votes with the same
        // fail-closed code the issuance path uses.
        node.crash();
        let err = front
            .handle_api(ApiRequest::CounterCatchup)
            .expect_err("dead node answers counter_unavailable");
        assert_eq!(err.code, ErrorCode::CounterUnavailable);
    }
}
