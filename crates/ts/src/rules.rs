//! Access Control Rules: the Fig. 6 white/blacklist structure.
//!
//! ```json
//! {
//!   "sender":   { "whitelist": ["0x366c…", "0xd488…"] },
//!   "method":   { "methodA": { "blacklist": ["0xBa7F…"] } },
//!   "argument": { "argA":    { "whitelist": ["0x3540…"] } }
//! }
//! ```
//!
//! Rules are organized per token type ("for every token type, there is a
//! set of rules associated with it", §IV-E): each type carries its own
//! sender policy, per-method sender policies, and per-argument value
//! policies, so "an address whitelisted for super tokens can be blacklisted
//! for argument tokens". All lists are dynamically updatable by the owner
//! — no contract change required.

use smacs_primitives::json::{FromJson, Json, JsonError, ToJson};
use smacs_primitives::Address;
use smacs_token::{TokenRequest, TokenType};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A whitelist or blacklist over string-rendered subjects (addresses are
/// stored in their canonical `0x…` form; argument values verbatim, so
/// "it is possible to blacklist dangerous argument values", §IV-E).
///
/// ```
/// use smacs_ts::ListPolicy;
///
/// let mut employees = ListPolicy::deny_all(); // empty whitelist
/// employees.insert("0xaa..01");
/// assert!(employees.permits("0xaa..01"));
/// assert!(!employees.permits("0xbb..02"));
/// employees.remove("0xaa..01"); // dynamic update, no gas, no contract change
/// assert!(!employees.permits("0xaa..01"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListPolicy {
    /// Only listed subjects pass.
    Whitelist(BTreeSet<String>),
    /// Listed subjects are rejected; everyone else passes.
    Blacklist(BTreeSet<String>),
}

impl ListPolicy {
    /// Empty whitelist (denies everything).
    pub fn deny_all() -> Self {
        ListPolicy::Whitelist(BTreeSet::new())
    }

    /// Empty blacklist (allows everything).
    pub fn allow_all() -> Self {
        ListPolicy::Blacklist(BTreeSet::new())
    }

    /// Whether `subject` passes this policy.
    pub fn permits(&self, subject: &str) -> bool {
        match self {
            ListPolicy::Whitelist(set) => set.contains(subject),
            ListPolicy::Blacklist(set) => !set.contains(subject),
        }
    }

    /// Add a subject to the list (meaning depends on the polarity).
    pub fn insert(&mut self, subject: impl Into<String>) {
        match self {
            ListPolicy::Whitelist(set) | ListPolicy::Blacklist(set) => {
                set.insert(subject.into());
            }
        }
    }

    /// Remove a subject from the list.
    pub fn remove(&mut self, subject: &str) -> bool {
        match self {
            ListPolicy::Whitelist(set) | ListPolicy::Blacklist(set) => set.remove(subject),
        }
    }

    /// Number of listed subjects.
    pub fn len(&self) -> usize {
        match self {
            ListPolicy::Whitelist(set) | ListPolicy::Blacklist(set) => set.len(),
        }
    }

    /// True iff no subjects are listed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why a request violated the rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleViolation {
    /// The sender failed the type-level sender policy.
    SenderRejected(Address),
    /// The sender failed the per-method policy.
    MethodRejected {
        /// The method whose policy rejected the sender.
        method: String,
        /// The rejected sender.
        sender: Address,
    },
    /// An argument value failed its per-argument policy.
    ArgumentRejected {
        /// The argument name.
        name: String,
        /// The rejected value.
        value: String,
    },
    /// The request's type has no rules configured at all (deny by
    /// default: an unconfigured TS issues nothing).
    TypeNotConfigured(TokenType),
}

impl fmt::Display for RuleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleViolation::SenderRejected(addr) => write!(f, "sender {addr} rejected"),
            RuleViolation::MethodRejected { method, sender } => {
                write!(f, "sender {sender} rejected for method {method}")
            }
            RuleViolation::ArgumentRejected { name, value } => {
                write!(f, "argument {name}={value} rejected")
            }
            RuleViolation::TypeNotConfigured(ttype) => {
                write!(f, "no rules configured for {ttype} tokens")
            }
        }
    }
}

impl std::error::Error for RuleViolation {}

/// The Fig. 6 rule structure for one token type.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TypeRules {
    /// Sender policy (who may obtain tokens of this type).
    pub sender: Option<ListPolicy>,
    /// Per-method sender policies, keyed by canonical method signature.
    pub method: BTreeMap<String, ListPolicy>,
    /// Per-argument value policies, keyed by argument name.
    pub argument: BTreeMap<String, ListPolicy>,
}

impl TypeRules {
    /// Rules that admit every request of the type.
    pub fn permissive() -> Self {
        TypeRules {
            sender: Some(ListPolicy::allow_all()),
            method: BTreeMap::new(),
            argument: BTreeMap::new(),
        }
    }

    fn check(&self, req: &TokenRequest) -> Result<(), RuleViolation> {
        let sender_hex = req.sender.to_hex();
        if let Some(policy) = &self.sender {
            if !policy.permits(&sender_hex) {
                return Err(RuleViolation::SenderRejected(req.sender));
            }
        }
        if let Some(method) = &req.method {
            if let Some(policy) = self.method.get(method) {
                if !policy.permits(&sender_hex) {
                    return Err(RuleViolation::MethodRejected {
                        method: method.clone(),
                        sender: req.sender,
                    });
                }
            }
        }
        for arg in &req.args {
            if let Some(policy) = self.argument.get(&arg.name) {
                if !policy.permits(&arg.value) {
                    return Err(RuleViolation::ArgumentRejected {
                        name: arg.name.clone(),
                        value: arg.value.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The complete, per-type rule book a TS enforces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleBook {
    /// Rules for each token type. Absent type ⇒ requests of that type are
    /// denied ([`RuleViolation::TypeNotConfigured`]).
    pub types: BTreeMap<TokenType, TypeRules>,
}

impl RuleBook {
    /// Empty book: denies everything.
    pub fn deny_all() -> Self {
        RuleBook::default()
    }

    /// Book admitting every well-formed request of every type — the
    /// baseline for throughput benchmarks.
    pub fn permissive() -> Self {
        let mut types = BTreeMap::new();
        for ttype in TokenType::ALL {
            types.insert(ttype, TypeRules::permissive());
        }
        RuleBook { types }
    }

    /// Access the rules for one type, creating them if absent.
    pub fn rules_mut(&mut self, ttype: TokenType) -> &mut TypeRules {
        self.types.entry(ttype).or_default()
    }

    /// Check a request against the rules of its type.
    pub fn check(&self, req: &TokenRequest) -> Result<(), RuleViolation> {
        let rules = self
            .types
            .get(&req.ttype)
            .ok_or(RuleViolation::TypeNotConfigured(req.ttype))?;
        rules.check(req)
    }
}

// Kept hand-written rather than `json_codec!`: ListPolicy is an enum
// (single-member tag objects), TypeRules uses the Fig. 6 omit-empty shape,
// and RuleBook keys its map by numeric token type — none of which the
// struct-shaped macro expresses.
impl ToJson for ListPolicy {
    fn to_json(&self) -> Json {
        match self {
            ListPolicy::Whitelist(set) => Json::Obj(vec![("whitelist".into(), set.to_json())]),
            ListPolicy::Blacklist(set) => Json::Obj(vec![("blacklist".into(), set.to_json())]),
        }
    }
}

impl FromJson for ListPolicy {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if let Some(set) = json.get("whitelist") {
            return Ok(ListPolicy::Whitelist(BTreeSet::from_json(set)?));
        }
        if let Some(set) = json.get("blacklist") {
            return Ok(ListPolicy::Blacklist(BTreeSet::from_json(set)?));
        }
        Err(JsonError("expected whitelist or blacklist".into()))
    }
}

impl ToJson for TypeRules {
    fn to_json(&self) -> Json {
        // Fig. 6 shape: omit empty sections, as the serde version did.
        let mut members = Vec::new();
        if let Some(sender) = &self.sender {
            members.push(("sender".into(), sender.to_json()));
        }
        if !self.method.is_empty() {
            members.push(("method".into(), self.method.to_json()));
        }
        if !self.argument.is_empty() {
            members.push(("argument".into(), self.argument.to_json()));
        }
        Json::Obj(members)
    }
}

impl FromJson for TypeRules {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TypeRules {
            sender: match json.get("sender") {
                None | Some(Json::Null) => None,
                Some(policy) => Some(ListPolicy::from_json(policy)?),
            },
            method: match json.get("method") {
                None => BTreeMap::new(),
                Some(map) => BTreeMap::from_json(map)?,
            },
            argument: match json.get("argument") {
                None => BTreeMap::new(),
                Some(map) => BTreeMap::from_json(map)?,
            },
        })
    }
}

impl ToJson for RuleBook {
    fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "types".into(),
            Json::Obj(
                self.types
                    .iter()
                    .map(|(ttype, rules)| (ttype.to_string(), rules.to_json()))
                    .collect(),
            ),
        )])
    }
}

impl FromJson for RuleBook {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let mut types = BTreeMap::new();
        if let Some(map) = json.get("types") {
            for (key, rules) in map.as_obj().ok_or(JsonError("expected object".into()))? {
                let ttype = TokenType::from_json(&Json::Str(key.clone()))?;
                types.insert(ttype, TypeRules::from_json(rules)?);
            }
        }
        Ok(RuleBook { types })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_token::request::ArgBinding;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    fn whitelist(addrs: &[Address]) -> ListPolicy {
        ListPolicy::Whitelist(addrs.iter().map(|a| a.to_hex()).collect())
    }

    fn blacklist(addrs: &[Address]) -> ListPolicy {
        ListPolicy::Blacklist(addrs.iter().map(|a| a.to_hex()).collect())
    }

    #[test]
    fn policy_semantics() {
        let wl = whitelist(&[addr(1)]);
        assert!(wl.permits(&addr(1).to_hex()));
        assert!(!wl.permits(&addr(2).to_hex()));
        let bl = blacklist(&[addr(1)]);
        assert!(!bl.permits(&addr(1).to_hex()));
        assert!(bl.permits(&addr(2).to_hex()));
        assert!(!ListPolicy::deny_all().permits("x"));
        assert!(ListPolicy::allow_all().permits("x"));
    }

    #[test]
    fn policy_updates() {
        let mut wl = ListPolicy::deny_all();
        wl.insert(addr(5).to_hex());
        assert!(wl.permits(&addr(5).to_hex()));
        assert!(wl.remove(&addr(5).to_hex()));
        assert!(!wl.permits(&addr(5).to_hex()));
        assert!(wl.is_empty());
    }

    #[test]
    fn deny_all_book_rejects_everything() {
        let book = RuleBook::deny_all();
        let req = TokenRequest::super_token(addr(9), addr(1));
        assert_eq!(
            book.check(&req),
            Err(RuleViolation::TypeNotConfigured(TokenType::Super))
        );
    }

    #[test]
    fn example1_whitelist_of_employees() {
        // Paper Example 1: methods callable only by a dynamic set of
        // addresses.
        let mut book = RuleBook::deny_all();
        book.rules_mut(TokenType::Super).sender = Some(whitelist(&[addr(1), addr(2)]));
        assert!(book
            .check(&TokenRequest::super_token(addr(9), addr(1)))
            .is_ok());
        assert_eq!(
            book.check(&TokenRequest::super_token(addr(9), addr(3))),
            Err(RuleViolation::SenderRejected(addr(3)))
        );
        // Dynamic update: hire employee 3, fire employee 1.
        let senders = book.rules_mut(TokenType::Super).sender.as_mut().unwrap();
        senders.insert(addr(3).to_hex());
        senders.remove(&addr(1).to_hex());
        assert!(book
            .check(&TokenRequest::super_token(addr(9), addr(3)))
            .is_ok());
        assert!(book
            .check(&TokenRequest::super_token(addr(9), addr(1)))
            .is_err());
    }

    #[test]
    fn example2_blacklist() {
        // Paper Example 2: block a predefined set of addresses.
        let mut book = RuleBook::deny_all();
        book.rules_mut(TokenType::Super).sender = Some(blacklist(&[addr(13)]));
        assert!(book
            .check(&TokenRequest::super_token(addr(9), addr(1)))
            .is_ok());
        assert!(book
            .check(&TokenRequest::super_token(addr(9), addr(13)))
            .is_err());
    }

    #[test]
    fn example3_per_method_and_per_argument() {
        // Paper Example 3: only authorized parties may call a specific
        // method, optionally with specific arguments.
        let mut book = RuleBook::permissive();
        book.rules_mut(TokenType::Method)
            .method
            .insert("moveMoney(address)".into(), whitelist(&[addr(1)]));
        book.rules_mut(TokenType::Argument).argument.insert(
            "recipient".into(),
            ListPolicy::Blacklist(std::iter::once("0xEVIL".to_string()).collect()),
        );

        let ok = TokenRequest::method_token(addr(9), addr(1), "moveMoney(address)");
        assert!(book.check(&ok).is_ok());
        let bad_sender = TokenRequest::method_token(addr(9), addr(2), "moveMoney(address)");
        assert!(matches!(
            book.check(&bad_sender),
            Err(RuleViolation::MethodRejected { .. })
        ));

        let bad_arg = TokenRequest::argument_token(
            addr(9),
            addr(1),
            "moveMoney(address)",
            vec![ArgBinding {
                name: "recipient".into(),
                value: "0xEVIL".into(),
            }],
            vec![1, 2, 3],
        );
        assert!(matches!(
            book.check(&bad_arg),
            Err(RuleViolation::ArgumentRejected { .. })
        ));
    }

    #[test]
    fn per_type_independence() {
        // An address whitelisted for super tokens can be blacklisted for
        // argument tokens (§IV-E).
        let mut book = RuleBook::deny_all();
        book.rules_mut(TokenType::Super).sender = Some(whitelist(&[addr(1)]));
        book.rules_mut(TokenType::Argument).sender = Some(blacklist(&[addr(1)]));
        assert!(book
            .check(&TokenRequest::super_token(addr(9), addr(1)))
            .is_ok());
        let arg_req = TokenRequest::argument_token(addr(9), addr(1), "f()", vec![], vec![]);
        assert!(matches!(
            book.check(&arg_req),
            Err(RuleViolation::SenderRejected(_))
        ));
    }

    #[test]
    fn fig6_json_shape_round_trips() {
        let mut book = RuleBook::deny_all();
        book.rules_mut(TokenType::Super).sender = Some(whitelist(&[addr(0x366c), addr(0xd488)]));
        book.rules_mut(TokenType::Method)
            .method
            .insert("methodA()".into(), blacklist(&[addr(0xBA7F)]));
        book.rules_mut(TokenType::Argument)
            .argument
            .insert("argA".into(), whitelist(&[addr(0x3540)]));
        let json = smacs_primitives::json::to_string_pretty(&book);
        assert!(json.contains("whitelist"));
        assert!(json.contains("blacklist"));
        let back: RuleBook = smacs_primitives::json::from_str(&json).unwrap();
        assert_eq!(back, book);
    }
}
