//! Concurrency stress: many client threads hammering one pooled
//! [`HttpServer`] with `issue` and `issue_batch`, checking the three
//! properties the worker-pool refactor must preserve:
//!
//! 1. every request gets exactly one response (no lost or duplicated
//!    replies across parking/promotion cycles);
//! 2. one-time indexes stay globally unique under parallel signing
//!    (atomic allocation, no replay through the fan-out);
//! 3. shutdown joins cleanly with the pool draining — no hang, no panic.

use smacs_crypto::Keypair;
use smacs_primitives::{Address, WorkerPool};
use smacs_token::TokenRequest;
use smacs_ts::front::FrontEnd;
use smacs_ts::http::{HttpClient, HttpServer, HttpServerConfig};
use smacs_ts::{RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn front(seed: u64) -> Arc<FrontEnd> {
    let service = TokenService::new(
        Keypair::from_seed(seed),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    );
    Arc::new(FrontEnd::new(service, "stress-owner", 0))
}

fn one_time_request(sender: u64) -> TokenRequest {
    TokenRequest::super_token(Address::from_low_u64(0xC0), Address::from_low_u64(sender)).one_time()
}

#[test]
fn hammering_clients_get_unique_indexes_and_clean_shutdown() {
    const CLIENTS: usize = 8;
    const SINGLES: usize = 12;
    const BATCHES: usize = 3;
    const BATCH: usize = 16;

    let server =
        HttpServer::start_with(front(77), HttpServerConfig::builder().workers(4).build()).unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..CLIENTS as u64)
        .map(|t| {
            std::thread::spawn(move || {
                let client = HttpClient::connect(addr);
                let mut indexes = Vec::new();
                for i in 0..SINGLES as u64 {
                    let token = client
                        .issue(&one_time_request(1_000 * t + i))
                        .expect("single issue");
                    indexes.push(token.index);
                }
                for b in 0..BATCHES as u64 {
                    let requests: Vec<TokenRequest> = (0..BATCH as u64)
                        .map(|i| one_time_request(100_000 * t + 1_000 * b + i))
                        .collect();
                    let results = client.issue_batch(&requests).expect("batch envelope");
                    assert_eq!(results.len(), BATCH, "one outcome per batch item");
                    for result in results {
                        indexes.push(result.expect("batch item minted").index);
                    }
                }
                indexes
            })
        })
        .collect();

    let mut all_indexes: Vec<i128> = Vec::new();
    for handle in handles {
        all_indexes.extend(handle.join().expect("client thread panicked"));
    }

    // Every request answered exactly once…
    let expected = CLIENTS * (SINGLES + BATCHES * BATCH);
    assert_eq!(all_indexes.len(), expected);
    // …and every one-time index globally unique.
    all_indexes.sort_unstable();
    all_indexes.dedup();
    assert_eq!(
        all_indexes.len(),
        expected,
        "one-time indexes repeated under concurrency"
    );

    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown did not drain promptly: {:?}",
        start.elapsed()
    );
}

#[test]
fn one_pool_can_serve_connections_and_fan_out_signing() {
    // The tentpole wiring: connections and batch signing share one pool.
    // A batch arriving over HTTP is signed via scope_map *from inside* a
    // pool worker — caller participation must keep that deadlock-free
    // even with every worker busy.
    let pool = WorkerPool::new(2, 256);
    let service = TokenService::new(
        Keypair::from_seed(78),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    )
    .with_pool(pool.clone());
    let front = Arc::new(FrontEnd::new(service, "stress-owner", 0));
    let server = HttpServer::start_with(
        front,
        HttpServerConfig::builder().pool(pool.clone()).build(),
    )
    .unwrap();

    let client = HttpClient::connect(server.addr());
    let requests: Vec<TokenRequest> = (0..64).map(|i| one_time_request(500 + i)).collect();
    let results = client
        .issue_batch(&requests)
        .expect("batch over shared pool");
    assert_eq!(results.len(), 64);
    let mut indexes: Vec<i128> = results
        .into_iter()
        .map(|r| r.expect("minted").index)
        .collect();
    indexes.sort_unstable();
    indexes.dedup();
    assert_eq!(indexes.len(), 64);

    // Shutting the server down must NOT kill the externally owned pool.
    server.shutdown();
    assert!(
        pool.try_execute(|| {}).is_ok(),
        "shared pool must survive server shutdown"
    );
    pool.shutdown();
}

#[test]
fn rule_swaps_during_concurrent_issuance_are_atomic() {
    // Lock-free snapshots: issuers racing a set_rules flip must each see
    // either the old book or the new one — never a torn mix, never a
    // deadlock. The old book permits supers, the new one denies all.
    let front = front(79);
    let server = HttpServer::start(front.clone()).unwrap();
    let addr = server.addr();

    // Thread 0 signals after its tenth response; the flip happens then,
    // so every thread still has requests in flight on both sides of it.
    let (warmed_tx, warmed_rx) = std::sync::mpsc::channel::<()>();
    let issuers: Vec<_> = (0..4u64)
        .map(|t| {
            let warmed_tx = warmed_tx.clone();
            std::thread::spawn(move || {
                let client = HttpClient::connect(addr);
                let mut granted = 0usize;
                let mut denied = 0usize;
                for i in 0..40u64 {
                    match client.issue(&one_time_request(10_000 * t + i)) {
                        Ok(_) => granted += 1,
                        Err(e) => {
                            assert_eq!(
                                e.code,
                                smacs_ts::ErrorCode::RuleViolation,
                                "unexpected failure: {e:?}"
                            );
                            denied += 1;
                        }
                    }
                    if t == 0 && i == 9 {
                        let _ = warmed_tx.send(());
                    }
                }
                (granted, denied)
            })
        })
        .collect();

    warmed_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("issuers never warmed up");
    front.service().set_rules(RuleBook::deny_all());

    let mut total_granted = 0;
    let mut total_denied = 0;
    for handle in issuers {
        let (granted, denied) = handle.join().expect("issuer thread");
        total_granted += granted;
        total_denied += denied;
    }
    assert_eq!(total_granted + total_denied, 4 * 40);
    assert!(total_granted >= 10, "the permissive book never served");
    assert!(total_denied > 0, "the deny-all swap never took effect");
    server.shutdown();
}

#[test]
fn connection_storm_does_not_stall_batch_signing() {
    // The reactor's priority split under fire: with hundreds of idle
    // keep-alive connections parked in the epoll set, an accept storm
    // (a burst of fresh connections, each served once) rides the
    // low-priority lane while `issue_batch` keeps flowing through the
    // high-priority lane. Every request — batch and storm — must be
    // answered (nothing dropped), and batch latency must not collapse.
    const PARKED: usize = 300;
    const STORM_THREADS: usize = 4;
    const STORM_PER_THREAD: usize = 50;
    const BATCHES: usize = 24;
    const BATCH: usize = 8;

    let server =
        HttpServer::start_with(front(80), HttpServerConfig::builder().workers(4).build()).unwrap();
    let addr = server.addr();

    // Fill the epoll set: hundreds of established, idle connections.
    let parked: Vec<HttpClient> = (0..PARKED).map(|_| HttpClient::connect(addr)).collect();
    for client in &parked {
        client.ping().expect("establish parked connection");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.parked_connections() < PARKED {
        assert!(
            Instant::now() < deadline,
            "only {} of {PARKED} connections parked",
            server.parked_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Batch issuance flows for the whole duration of the storm.
    let signer = std::thread::spawn(move || {
        let client = HttpClient::connect(addr);
        let mut latencies = Vec::with_capacity(BATCHES);
        for b in 0..BATCHES as u64 {
            let requests: Vec<TokenRequest> = (0..BATCH as u64)
                .map(|i| one_time_request(7_000_000 + 1_000 * b + i))
                .collect();
            let start = Instant::now();
            let results = client.issue_batch(&requests).expect("batch under storm");
            latencies.push(start.elapsed());
            assert_eq!(results.len(), BATCH, "batch item lost under storm");
            for result in results {
                result.expect("batch item minted under storm");
            }
        }
        latencies
    });

    // The storm: four threads each opening a burst of fresh connections,
    // every one of which must be accepted and served.
    let storm: Vec<_> = (0..STORM_THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..STORM_PER_THREAD {
                    HttpClient::connect(addr).ping().expect("storm request");
                }
            })
        })
        .collect();
    for handle in storm {
        handle.join().expect("storm thread panicked");
    }

    let mut latencies = signer.join().expect("signer thread panicked");
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    // Generous ceiling — the point is "accepts did not starve signing",
    // not a microbenchmark. Debug builds sign ~100× slower.
    let bound = if cfg!(debug_assertions) {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(1)
    };
    assert!(
        p99 < bound,
        "batch p99 {p99:?} collapsed under the accept storm"
    );

    drop(parked);
    server.shutdown();
}
