//! Front-end protocol coverage: v1↔v2 coexistence, malformed-envelope
//! rejection, batch partial-failure semantics, and keep-alive connection
//! reuse.

use smacs_crypto::Keypair;
use smacs_primitives::json::{FromJson, Json, ToJson};
use smacs_primitives::Address;
use smacs_token::{TokenRequest, TokenType};
use smacs_ts::front::{decode_token_hex, FrontEnd, FrontRequest, FrontResponse};
use smacs_ts::http::{post_json, HttpClient, HttpServer};
use smacs_ts::{
    ErrorCode, ListPolicy, RuleBook, TokenService, TokenServiceConfig, TsApi, MAX_BATCH,
    PROTOCOL_VERSION,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn front() -> Arc<FrontEnd> {
    Arc::new(FrontEnd::new(
        TokenService::new(
            Keypair::from_seed(42),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        1_000,
    ))
}

fn request(low: u64) -> TokenRequest {
    TokenRequest::super_token(Address::from_low_u64(0xC0), Address::from_low_u64(low))
}

fn v2(op: &str, body: Json) -> String {
    Json::Obj(vec![
        ("v".into(), Json::Int(PROTOCOL_VERSION as i128)),
        ("op".into(), Json::Str(op.into())),
        ("body".into(), body),
    ])
    .render()
}

fn parse(response: &str) -> Json {
    Json::parse(response).expect("valid response JSON")
}

fn error_code(response: &Json) -> &str {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error code")
}

// ---- v1 ↔ v2 round trips ----

#[test]
fn same_front_end_answers_both_protocol_generations() {
    let front = front();

    // v1: unversioned envelope, v1 response vocabulary.
    let v1_body = smacs_primitives::json::to_string(&FrontRequest::IssueToken {
        request: request(1),
    });
    let v1_response: FrontResponse =
        smacs_primitives::json::from_str(&front.handle_json(&v1_body)).unwrap();
    let FrontResponse::Token { token_hex } = v1_response else {
        panic!("v1 expected token, got {v1_response:?}");
    };
    let v1_token = decode_token_hex(&token_hex).unwrap();

    // v2: versioned envelope, enveloped response.
    let v2_response = parse(&front.handle_json(&v2("issue", request(1).to_json())));
    assert_eq!(v2_response.get("v").and_then(Json::as_int), Some(2));
    assert_eq!(v2_response.get("ok").and_then(Json::as_bool), Some(true));
    let token_hex = v2_response
        .get("body")
        .and_then(|b| b.get("token_hex"))
        .and_then(Json::as_str)
        .unwrap();
    let v2_token = decode_token_hex(token_hex).unwrap();

    // Same service, same clock, same request → identical tokens.
    assert_eq!(v1_token, v2_token);
}

#[test]
fn v1_and_v2_report_the_same_denial_with_different_vocabulary() {
    let front = front();
    front.service().set_rules(RuleBook::deny_all());

    let v1_body = smacs_primitives::json::to_string(&FrontRequest::IssueToken {
        request: request(1),
    });
    let v1: FrontResponse = smacs_primitives::json::from_str(&front.handle_json(&v1_body)).unwrap();
    let FrontResponse::Denied { reason } = v1 else {
        panic!("expected v1 denial, got {v1:?}");
    };

    let v2_response = parse(&front.handle_json(&v2("issue", request(1).to_json())));
    assert_eq!(v2_response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&v2_response), "rule_violation");
    let message = v2_response
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    // The coarse human-readable reason is shared between generations, and
    // leaks no rule contents (§VII-A d).
    assert_eq!(message, reason);
    assert!(!message.contains("0x"), "leaked rule detail: {message}");
}

// ---- malformed envelopes ----

#[test]
fn malformed_envelopes_are_rejected_with_machine_readable_codes() {
    let front = front();

    // Unsupported version.
    let response = parse(&front.handle_json(r#"{"v":3,"op":"ping"}"#));
    assert_eq!(error_code(&response), "unsupported_version");

    // Unknown op.
    let response = parse(&front.handle_json(r#"{"v":2,"op":"mint_money"}"#));
    assert_eq!(error_code(&response), "bad_envelope");

    // Missing op entirely.
    let response = parse(&front.handle_json(r#"{"v":2}"#));
    assert_eq!(error_code(&response), "bad_envelope");

    // Body of the wrong shape for the op.
    let response = parse(&front.handle_json(r#"{"v":2,"op":"issue","body":{"nope":1}}"#));
    assert_eq!(error_code(&response), "bad_envelope");

    // Wrong type for the version member.
    let response = parse(&front.handle_json(r#"{"v":"two","op":"ping"}"#));
    assert_eq!(error_code(&response), "bad_envelope");

    // Oversized batch.
    let requests: Vec<Json> = (0..MAX_BATCH + 1)
        .map(|i| request(i as u64).to_json())
        .collect();
    let body = Json::Obj(vec![("requests".into(), Json::Arr(requests))]);
    let response = parse(&front.handle_json(&v2("issue_batch", body)));
    assert_eq!(error_code(&response), "bad_envelope");

    // Invalid-but-parseable requests are *not* envelope errors: they run
    // the normal issuance checks.
    let mut bad = request(1);
    bad.ttype = TokenType::Method; // method token without a methodId
    let response = parse(&front.handle_json(&v2("issue", bad.to_json())));
    assert_eq!(error_code(&response), "invalid_request");

    // Unparseable JSON still answers in the legacy (v1) error shape —
    // there is no way to tell which generation the client speaks.
    let response: FrontResponse =
        smacs_primitives::json::from_str(&front.handle_json("{not json")).unwrap();
    assert!(matches!(response, FrontResponse::Error { .. }));
}

// ---- batch partial failure ----

#[test]
fn batch_partial_failure_keeps_per_item_outcomes_in_order() {
    let front = front();
    // Whitelist exactly one sender for super tokens.
    let mut rules = RuleBook::deny_all();
    let mut senders = ListPolicy::deny_all();
    senders.insert(Address::from_low_u64(1).to_hex());
    rules.rules_mut(TokenType::Super).sender = Some(senders);
    front.service().set_rules(rules);

    let body = Json::Obj(vec![(
        "requests".into(),
        Json::Arr(vec![
            request(1).to_json(), // allowed
            request(2).to_json(), // denied by rules
            request(1).to_json(), // allowed again
        ]),
    )]);
    let response = parse(&front.handle_json(&v2("issue_batch", body)));
    // Partial failure is still an ok envelope.
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let results = response
        .get("body")
        .and_then(|b| b.get("results"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(results[1].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        results[1]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("rule_violation")
    );
    assert_eq!(results[2].get("ok").and_then(Json::as_bool), Some(true));
    assert!(results[0].get("token_hex").and_then(Json::as_str).is_some());
}

#[test]
fn batch_partial_failure_over_the_http_client() {
    let server = HttpServer::start(front()).unwrap();
    let client = HttpClient::connect(server.addr());
    let mut bad = request(2);
    bad.args.push(smacs_token::request::ArgBinding {
        name: "x".into(),
        value: "1".into(),
    });
    let results = client.issue_batch(&[request(1), bad, request(3)]).unwrap();
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok());
    assert_eq!(
        results[1].as_ref().unwrap_err().code,
        ErrorCode::InvalidRequest
    );
    assert!(results[2].is_ok());
    server.shutdown();
}

// ---- counter availability over the wire (§VII-B) ----

/// A front end whose one-time counter is a 3-node quorum cluster with two
/// nodes down — quorum lost, one-time issuance must fail closed.
fn quorumless_front() -> Arc<FrontEnd> {
    let cluster = smacs_ts::CounterCluster::new(3);
    cluster.kill(1);
    cluster.kill(2);
    Arc::new(FrontEnd::new(
        TokenService::new(
            Keypair::from_seed(42),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        )
        .with_replicated_counter(cluster),
        "owner-secret",
        1_000,
    ))
}

#[test]
fn counter_unavailable_round_trips_the_v2_wire() {
    let front = quorumless_front();

    // One-time issuance: fail-closed with the machine-readable code, and
    // a message that leaks no cluster internals.
    let response = parse(&front.handle_json(&v2("issue", request(1).one_time().to_json())));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&response), "counter_unavailable");

    // Expiry issuance needs no counter: same service, still succeeding.
    let response = parse(&front.handle_json(&v2("issue", request(1).to_json())));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));

    // And through the typed HTTP client the code arrives as the enum.
    let server = HttpServer::start(front).unwrap();
    let client = HttpClient::connect(server.addr());
    let err = client.issue(&request(2).one_time()).unwrap_err();
    assert_eq!(err.code, ErrorCode::CounterUnavailable);
    client.issue(&request(2)).unwrap();
    server.shutdown();
}

#[test]
fn batch_partial_failure_with_counter_unavailable() {
    // A quorum-lost batch degrades per item: one-time slots answer
    // `counter_unavailable`, plain slots still mint — one coordination
    // outage never poisons the whole batch.
    let server = HttpServer::start(quorumless_front()).unwrap();
    let client = HttpClient::connect(server.addr());
    let results = client
        .issue_batch(&[
            request(1),
            request(2).one_time(),
            request(3),
            request(4).one_time(),
        ])
        .unwrap();
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok());
    assert_eq!(
        results[1].as_ref().unwrap_err().code,
        ErrorCode::CounterUnavailable
    );
    assert!(results[2].is_ok());
    assert_eq!(
        results[3].as_ref().unwrap_err().code,
        ErrorCode::CounterUnavailable
    );
    server.shutdown();
}

// ---- keep-alive ----

#[test]
fn one_connection_serves_many_requests() {
    let server = HttpServer::start(front()).unwrap();
    let addr = server.addr();

    // Raw socket: three requests down the same connection, three distinct
    // responses back, server keeps the connection open throughout.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..3u64 {
        let body = v2("issue", request(10 + i).to_json());
        write!(
            stream,
            "POST / HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        stream.flush().unwrap();

        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        let mut content_length = 0usize;
        let mut keep_alive = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_ascii_lowercase();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
            if line == "connection: keep-alive" {
                keep_alive = true;
            }
        }
        assert!(keep_alive, "server must advertise keep-alive");
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        let response = Json::parse(&String::from_utf8(body).unwrap()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    }
    drop(stream);

    // The HttpClient reuses its connection the same way: issue repeatedly
    // and confirm the local port never changes.
    let client = HttpClient::connect(addr);
    client.ping().unwrap();
    for i in 0..4 {
        client.issue(&request(20 + i)).unwrap();
    }
    server.shutdown();
}

#[test]
fn post_without_content_length_is_rejected_with_400_and_close() {
    // Guessing a length would desynchronize the keep-alive stream, so the
    // server must refuse to frame such a request and hang up.
    let server = HttpServer::start(front()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write!(stream, "POST / HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.to_ascii_lowercase().contains("connection: close"));
    server.shutdown();
}

#[test]
fn v1_close_semantics_still_honored_per_request() {
    // post_json sends `Connection: close`; the server must answer and hang
    // up, and a second call must open a fresh connection successfully.
    let server = HttpServer::start(front()).unwrap();
    for i in 0..3 {
        let body = smacs_primitives::json::to_string(&FrontRequest::IssueToken {
            request: request(30 + i),
        });
        let response = post_json(server.addr(), &body).unwrap();
        let parsed: FrontResponse = smacs_primitives::json::from_str(&response).unwrap();
        assert!(matches!(parsed, FrontResponse::Token { .. }), "{parsed:?}");
    }
    server.shutdown();
}

// ---- envelope codec round trips ----

#[test]
fn envelope_types_round_trip_through_their_codecs() {
    use smacs_ts::api::{RequestEnvelope, ResponseEnvelope, WireError};

    let req = RequestEnvelope {
        v: PROTOCOL_VERSION,
        op: "issue".into(),
        body: Some(request(1).to_json()),
    };
    let text = smacs_primitives::json::to_string(&req);
    assert_eq!(
        RequestEnvelope::from_json(&Json::parse(&text).unwrap()).unwrap(),
        req
    );

    let resp = ResponseEnvelope {
        v: PROTOCOL_VERSION,
        ok: false,
        body: None,
        error: Some(WireError {
            code: "rule_violation".into(),
            message: "denied".into(),
        }),
    };
    let text = smacs_primitives::json::to_string(&resp);
    assert_eq!(
        ResponseEnvelope::from_json(&Json::parse(&text).unwrap()).unwrap(),
        resp
    );

    // `body` may be omitted entirely on the wire (ping).
    let sparse = RequestEnvelope::from_json(&Json::parse(r#"{"v":2,"op":"ping"}"#).unwrap());
    assert_eq!(sparse.unwrap().body, None);
}
