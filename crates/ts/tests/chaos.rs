//! Chaos suite: the §VII-B availability claims, proven over the real wire
//! path against a live [`ReplicaSet`] with injected faults.
//!
//! Each test pins one invariant from the failure model (`smacs_ts` crate
//! docs):
//!
//! 1. replica loss is transparent to a failover client, and one-time
//!    indexes stay globally unique across the failover;
//! 2. counter-quorum loss fails *closed* for one-time issuance (v2
//!    `counter_unavailable` over the wire) while expiry issuance keeps
//!    working, and recovery restores full service;
//! 3. a one-time issue whose response was lost is **not** blind-retried —
//!    at most one counter index is burned (at-most-once);
//! 4. a hung replica surfaces as a distinguishable read-timeout transport
//!    error instead of blocking forever;
//! 5. a circuit breaker stops paying a dead replica's timeout on every
//!    call;
//! 6. a replica that crashed mid-commit (vote WAL-logged at a minority,
//!    coordinator dead) recovers from its WAL and the burned index is
//!    skipped, never re-issued;
//! 7. an asymmetric vote partition fails closed exactly where votes
//!    cannot flow, while replicas that still reach a majority keep
//!    issuing;
//! 8. delayed and duplicated vote deliveries never yield a duplicate
//!    one-time index;
//! 9. a torn WAL tail is discarded on recovery and the node re-fetches
//!    the lost frontier from its peers over the wire;
//! 10. request-side [`smacs_ts::FaultPlan`] faults (drop, delay) still
//!     fire on connections that were parked in the epoll reactor — the
//!     readiness rewrite moved the transport, not the injection points.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smacs_crypto::Keypair;
use smacs_primitives::Address;
use smacs_token::TokenRequest;
use smacs_ts::{
    BreakerConfig, ErrorCode, FailoverClient, HttpClient, HttpClientConfig, ReplicaSet,
    ReplicaSetConfig, RetryPolicy, RuleBook, TsApi,
};

fn contract() -> Address {
    Address::from_low_u64(0xC0FFEE)
}

fn request(low: u64) -> TokenRequest {
    TokenRequest::super_token(contract(), Address::from_low_u64(low))
}

fn set() -> ReplicaSet {
    ReplicaSet::start(
        Keypair::from_seed(4242),
        RuleBook::permissive(),
        ReplicaSetConfig::default(),
    )
    .unwrap()
}

/// Snappy client tuning so failure paths resolve in test time, not in
/// production-scale timeouts.
fn fast_client(set: &ReplicaSet) -> FailoverClient {
    FailoverClient::with_config(
        set.addrs(),
        HttpClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
        },
        RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            deadline: Duration::from_secs(10),
        },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(2),
        },
    )
}

/// Invariant 1: killing a replica mid-load is transparent to the failover
/// client, and no one-time index is ever issued twice across the set.
#[test]
fn failover_mid_load_keeps_one_time_indexes_unique() {
    let mut set = set();
    let client = Arc::new(fast_client(&set));

    // Warm every endpoint, then hammer one-time issuance from 4 threads
    // while replica 0 dies partway through.
    client.ping().unwrap();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let client = client.clone();
        handles.push(std::thread::spawn(move || {
            let mut indexes = Vec::new();
            for i in 0..40u64 {
                match client.issue(&request(1 + t * 1000 + i).one_time()) {
                    Ok(token) => indexes.push(token.index),
                    // A one-time issue caught mid-kill may legitimately
                    // fail (at-most-once forbids blind replay) — losing a
                    // token is acceptable, duplicating one is not.
                    Err(e) => assert!(
                        matches!(e.code, ErrorCode::Transport | ErrorCode::Internal),
                        "unexpected failure during failover: {e:?}"
                    ),
                }
            }
            indexes
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    set.kill(0);

    let mut seen = HashSet::new();
    let mut minted = 0usize;
    for handle in handles {
        for index in handle.join().unwrap() {
            assert!(seen.insert(index), "duplicate one-time index {index}");
            minted += 1;
        }
    }
    // The surviving majority must have kept the vast majority of traffic
    // flowing (most calls either hit live replicas or failed over on a
    // connect-phase error).
    assert!(minted >= 100, "only {minted}/160 issues succeeded");

    // And post-kill, issuance through the survivors is fully healthy.
    let token = client.issue(&request(999_999).one_time()).unwrap();
    assert!(seen.insert(token.index));
    set.shutdown();
}

/// Invariant 2: losing counter quorum degrades exactly one-time issuance
/// (fail-closed, `counter_unavailable` over the wire); expiry issuance
/// keeps working; healing the partition restores everything.
#[test]
fn quorum_loss_fails_closed_and_recovers() {
    let set = set();
    let client = fast_client(&set);

    client.issue(&request(1).one_time()).unwrap();

    // Partition two of three counter nodes away: replicas keep serving
    // HTTP, but the counter group has no majority.
    set.partition_counter(1);
    set.partition_counter(2);
    assert!(!set.has_quorum());

    let err = client.issue(&request(2).one_time()).unwrap_err();
    assert_eq!(err.code, ErrorCode::CounterUnavailable);
    // Degradation is partial: tokens that need no counter still mint, on
    // every replica.
    for addr in set.addrs() {
        HttpClient::connect(addr).issue(&request(3)).unwrap();
    }

    // Heal: quorum returns, one-time issuance resumes, and the recovered
    // nodes are caught up (no index reuse).
    set.heal_counter(1).unwrap();
    set.heal_counter(2).unwrap();
    assert!(set.has_quorum());
    let before = set.counter().committed();
    let token = client.issue(&request(4).one_time()).unwrap();
    assert_eq!(token.index as u64 + 1, set.counter().committed());
    assert_eq!(set.counter().committed(), before + 1);
    set.shutdown();
}

/// Invariant 3 (at-most-once): a one-time issue whose response is lost
/// after dispatch is surfaced as a transport error — not replayed on
/// another replica — and burns exactly one counter index.
#[test]
fn lost_response_one_time_issue_is_never_replayed() {
    let set = set();
    let client = fast_client(&set);
    client.ping().unwrap();

    let before = set.counter().committed();
    // Every replica truncates its next response: wherever the call lands,
    // the token is minted but the answer dies on the wire.
    for id in 0..set.len() {
        set.faults(id).truncate_responses(1);
    }
    let err = client.issue(&request(50).one_time()).unwrap_err();
    assert_eq!(err.code, ErrorCode::Transport);
    // Exactly one index was burned: the client did not blind-retry the
    // non-idempotent issue on the other (equally armed) replicas.
    assert_eq!(
        set.counter().committed(),
        before + 1,
        "a lost-response one-time issue must burn exactly one index"
    );
    for id in 0..set.len() {
        set.faults(id).clear();
    }

    // The same lost-response fault on an *expiry* issue is retried freely
    // (re-minting is byte-identical) and succeeds without burning indexes.
    set.faults(0).truncate_responses(1);
    set.faults(1).truncate_responses(1);
    client.issue(&request(51)).unwrap();
    assert_eq!(set.counter().committed(), before + 1);
    set.shutdown();
}

/// Invariant 4: a replica that accepts but never answers within the read
/// timeout surfaces a distinguishable "timed out" transport error.
#[test]
fn hung_replica_surfaces_a_read_timeout() {
    let set = set();
    // Single-endpoint client with a 200 ms read ceiling, no retries.
    let client = FailoverClient::with_config(
        vec![set.addrs()[0]],
        HttpClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(500),
        },
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        },
        BreakerConfig::default(),
    );
    client.ping().unwrap();

    set.faults(0).delay_responses(Duration::from_secs(5));
    let start = Instant::now();
    let err = client.issue(&request(60).one_time()).unwrap_err();
    let elapsed = start.elapsed();
    assert_eq!(err.code, ErrorCode::Transport);
    assert!(
        err.message.contains("timed out"),
        "timeout must be distinguishable from other transport failures: {}",
        err.message
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "read timeout must bound the wait, took {elapsed:?}"
    );
    set.faults(0).clear();
    set.shutdown();
}

/// Invariant 5: after a replica dies, its circuit breaker opens and later
/// calls stop paying its timeout — they go straight to the survivors.
#[test]
fn circuit_breaker_sheds_a_dead_replica() {
    let mut set = set();
    let client = FailoverClient::with_config(
        set.addrs(),
        HttpClientConfig {
            connect_timeout: Duration::from_millis(400),
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
        },
        RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(10),
        },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(30),
        },
    );
    client.ping().unwrap();
    set.kill(2);

    // Drive enough pings that the round-robin cursor visits the corpse at
    // least failure_threshold times.
    for _ in 0..12 {
        client.ping().unwrap();
    }
    assert_eq!(
        client.open_breakers(),
        1,
        "dead replica's breaker must open"
    );

    // With the breaker open, a burst of calls never touches the dead
    // endpoint: 20 pings complete far faster than a single connect
    // timeout would allow if each still probed it.
    let start = Instant::now();
    for _ in 0..20 {
        client.ping().unwrap();
    }
    assert!(
        start.elapsed() < Duration::from_millis(400),
        "open breaker must skip the dead replica, burst took {:?}",
        start.elapsed()
    );
    set.shutdown();
}

/// Invariant 6 (crash-mid-commit): a vote that was WAL-logged at one node
/// just before everything around it died must survive that node's crash —
/// the burned index is skipped on recovery, never handed out again.
#[test]
fn crash_mid_commit_recovers_from_wal_without_reissuing() {
    let mut set = set();
    let client = fast_client(&set);
    for low in 1..=3 {
        client.issue(&request(low).one_time()).unwrap();
    }
    assert_eq!(set.counter().committed(), 3);

    // A coordinator's commit(3) reached node 0 (vote fsynced to its WAL)
    // and then the coordinator died before gathering a quorum: index 3 is
    // burned at a minority.
    assert!(set.counter_node(0).commit(3).unwrap().accepted);
    // Node 0 itself now crashes. Its RAM view of the vote dies with it.
    set.kill(0);
    set.recover(0).unwrap();

    // Recovery replayed the WAL: the minority-burned vote is still there,
    // so the next allocation moves past index 3 instead of re-issuing it.
    assert_eq!(set.counter_node(0).committed(), 4);
    let token = client.issue(&request(9).one_time()).unwrap();
    assert_eq!(
        token.index, 4,
        "a minority-burned, WAL-logged index must be skipped, not re-issued"
    );
    set.shutdown();
}

/// Invariant 7 (asymmetric partition): replica 0 cannot send votes to its
/// peers, but its peers still reach replica 0's vote endpoint. One-time
/// issuance through replica 0 fails closed; through the others it keeps
/// working — and replica 0's node keeps voting for them.
#[test]
fn asymmetric_vote_partition_fails_closed_only_where_votes_cannot_flow() {
    let set = set();
    let r0 = HttpClient::connect(set.addrs()[0]);
    let r1 = HttpClient::connect(set.addrs()[1]);
    let mut indexes = HashSet::new();
    assert!(indexes.insert(r0.issue(&request(1).one_time()).unwrap().index));

    // Cut replica 0's *outgoing* vote links only.
    let vote_addr = |id| set.counter_addr(id).expect("wire mode");
    set.faults(0).partition_addr(vote_addr(1));
    set.faults(0).partition_addr(vote_addr(2));

    // Replica 0 can only reach itself: below quorum, fail closed — while
    // its expiry issuance (no coordination) keeps working.
    let err = r0.issue(&request(2).one_time()).unwrap_err();
    assert_eq!(err.code, ErrorCode::CounterUnavailable);
    r0.issue(&request(2)).unwrap();

    // The partition is one-way: replica 1 still reaches all three vote
    // endpoints, including replica 0's, and issues freely.
    for low in 3..=5 {
        assert!(indexes.insert(r1.issue(&request(low).one_time()).unwrap().index));
    }
    // Replica 0's node voted for those commits (its frontier moved), even
    // though replica 0 itself cannot coordinate.
    assert_eq!(set.counter_node(0).committed(), 4);

    // Heal the links: replica 0 coordinates again, still duplicate-free.
    set.faults(0).heal_addr(vote_addr(1));
    set.faults(0).heal_addr(vote_addr(2));
    assert!(indexes.insert(r0.issue(&request(6).one_time()).unwrap().index));
    assert_eq!(indexes.len(), 5);
    set.shutdown();
}

/// Invariant 8: delayed (reordered relative to the other peer) and
/// duplicated vote deliveries are no-ops for uniqueness — concurrent
/// issuance through two coordinators stays duplicate-free.
#[test]
fn delayed_and_duplicated_votes_never_duplicate_an_index() {
    let set = set();
    let vote_addr = |id| set.counter_addr(id).expect("wire mode");
    // Replica 0's votes to replica 1 lag behind its votes to replica 2,
    // and both coordinators double-send a budget of votes.
    set.faults(0)
        .delay_votes_to(vote_addr(1), Duration::from_millis(20));
    set.faults(0).duplicate_votes(16);
    set.faults(1).duplicate_votes(16);

    let mut handles = Vec::new();
    for (t, addr) in [set.addrs()[0], set.addrs()[1]].into_iter().enumerate() {
        handles.push(std::thread::spawn(move || {
            let client = HttpClient::connect(addr);
            (0..10u64)
                .map(|i| {
                    client
                        .issue(&request(100 + t as u64 * 100 + i).one_time())
                        .unwrap()
                        .index
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut seen = HashSet::new();
    for handle in handles {
        for index in handle.join().unwrap() {
            assert!(seen.insert(index), "duplicate one-time index {index}");
        }
    }
    assert_eq!(seen.len(), 20);
    set.shutdown();
}

/// Invariant 9 (torn write): a replica crashes with a torn/corrupted WAL
/// tail. Recovery discards the unverifiable tail rather than trusting it,
/// then re-fetches the lost frontier from its peers via `counter_catchup`
/// — so even state the local disk lost cannot be re-issued.
#[test]
fn torn_wal_tail_is_discarded_and_refetched_over_the_wire() {
    let wal_dir = std::env::temp_dir().join(format!("smacs-chaos-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let mut set = ReplicaSet::start(
        Keypair::from_seed(4242),
        RuleBook::permissive(),
        ReplicaSetConfig {
            wal_dir: Some(wal_dir.clone()),
            ..ReplicaSetConfig::default()
        },
    )
    .unwrap();
    let client = fast_client(&set);
    for low in 1..=5 {
        client.issue(&request(low).one_time()).unwrap();
    }
    set.kill(0);

    // The crash tore replica 0's log: its final record is half-written
    // garbage, and the record before that lost a bit of its checksum.
    let wal_path = wal_dir.join("counter-0.wal");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    assert_eq!(bytes.len(), 5 * 12, "five records of twelve bytes");
    let crc_byte = bytes.len() - 4;
    bytes[crc_byte] ^= 0x40;
    bytes.truncate(bytes.len() - 5);
    std::fs::write(&wal_path, &bytes).unwrap();

    set.recover(0).unwrap();
    // WAL replay alone could only prove 4 commits (the corrupted fifth
    // record and the torn tail are discarded) — the wire catch-up closed
    // the gap back to 5.
    assert_eq!(
        set.counter_node(0).committed(),
        5,
        "recovery must re-fetch what the torn tail lost"
    );
    let token = client.issue(&request(9).one_time()).unwrap();
    assert_eq!(token.index, 5, "no index may come back from the dead");
    set.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Full-path integration: discovery hands a wallet the replica directory,
/// and the resulting failover client survives a kill + recover cycle.
#[test]
fn discovered_directory_survives_kill_and_recovery() {
    let mut set = set();
    set.publish(contract(), "ChaosVault");

    // Bootstrap from one seed replica, as a wallet would.
    let seed = HttpClient::connect(set.addrs()[1]);
    let client = FailoverClient::discover_replicas(&seed, contract())
        .unwrap()
        .expect("directory published");
    assert_eq!(client.endpoint_count(), set.len());

    client.issue(&request(70)).unwrap();
    set.kill(0);
    client.issue(&request(71)).unwrap();
    set.recover(0).unwrap();
    // The recovered replica answers on its original address — the one the
    // discovered directory still names.
    HttpClient::connect(set.addrs()[0]).ping().unwrap();
    client.issue(&request(72).one_time()).unwrap();
    set.shutdown();
}

/// Invariant 10: the reactor rewrite must not strand the fault hooks.
/// A connection that has been parked in the epoll set and woken by
/// readiness serves its next request through the same `FaultPlan`
/// gauntlet as before: an armed drop severs exactly one request, an
/// armed delay stalls the response.
#[test]
fn request_faults_fire_on_connections_parked_in_the_reactor() {
    let set = set();
    let client = HttpClient::connect(set.addrs()[0]);
    // Establish and let the connection park (keep-alive grace is ~1 ms;
    // the pause guarantees the next request arrives via epoll readiness,
    // not the same serving turn).
    client.ping().unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Drop: the one-time issue is NOT idempotent, so the client must
    // surface the severed connection instead of blind-retrying.
    set.faults(0).drop_requests(1);
    let err = client.issue(&request(90).one_time()).unwrap_err();
    assert_eq!(err.code, ErrorCode::Transport, "drop fault did not fire");

    // The client reconnects; park again, then prove delay fires on the
    // freshly parked connection too.
    client.ping().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    set.faults(0).delay_responses(Duration::from_millis(200));
    let start = Instant::now();
    client.ping().unwrap();
    assert!(
        start.elapsed() >= Duration::from_millis(200),
        "delay fault did not fire: {:?}",
        start.elapsed()
    );
    set.faults(0).clear();

    // With faults cleared the same parked connection serves normally and
    // the dropped request burned no index.
    std::thread::sleep(Duration::from_millis(50));
    let token = client.issue(&request(91).one_time()).unwrap();
    assert_eq!(token.index, 0, "dropped request must not burn an index");
    set.shutdown();
}
