//! Chaos suite: the §VII-B availability claims, proven over the real wire
//! path against a live [`ReplicaSet`] with injected faults.
//!
//! Each test pins one invariant from the failure model (`smacs_ts` crate
//! docs):
//!
//! 1. replica loss is transparent to a failover client, and one-time
//!    indexes stay globally unique across the failover;
//! 2. counter-quorum loss fails *closed* for one-time issuance (v2
//!    `counter_unavailable` over the wire) while expiry issuance keeps
//!    working, and recovery restores full service;
//! 3. a one-time issue whose response was lost is **not** blind-retried —
//!    at most one counter index is burned (at-most-once);
//! 4. a hung replica surfaces as a distinguishable read-timeout transport
//!    error instead of blocking forever;
//! 5. a circuit breaker stops paying a dead replica's timeout on every
//!    call.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smacs_crypto::Keypair;
use smacs_primitives::Address;
use smacs_token::TokenRequest;
use smacs_ts::{
    BreakerConfig, ErrorCode, FailoverClient, HttpClient, HttpClientConfig, ReplicaSet,
    ReplicaSetConfig, RetryPolicy, RuleBook, TsApi,
};

fn contract() -> Address {
    Address::from_low_u64(0xC0FFEE)
}

fn request(low: u64) -> TokenRequest {
    TokenRequest::super_token(contract(), Address::from_low_u64(low))
}

fn set() -> ReplicaSet {
    ReplicaSet::start(
        Keypair::from_seed(4242),
        RuleBook::permissive(),
        ReplicaSetConfig::default(),
    )
    .unwrap()
}

/// Snappy client tuning so failure paths resolve in test time, not in
/// production-scale timeouts.
fn fast_client(set: &ReplicaSet) -> FailoverClient {
    FailoverClient::with_config(
        set.addrs(),
        HttpClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
        },
        RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            deadline: Duration::from_secs(10),
        },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(2),
        },
    )
}

/// Invariant 1: killing a replica mid-load is transparent to the failover
/// client, and no one-time index is ever issued twice across the set.
#[test]
fn failover_mid_load_keeps_one_time_indexes_unique() {
    let mut set = set();
    let client = Arc::new(fast_client(&set));

    // Warm every endpoint, then hammer one-time issuance from 4 threads
    // while replica 0 dies partway through.
    client.ping().unwrap();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let client = client.clone();
        handles.push(std::thread::spawn(move || {
            let mut indexes = Vec::new();
            for i in 0..40u64 {
                match client.issue(&request(1 + t * 1000 + i).one_time()) {
                    Ok(token) => indexes.push(token.index),
                    // A one-time issue caught mid-kill may legitimately
                    // fail (at-most-once forbids blind replay) — losing a
                    // token is acceptable, duplicating one is not.
                    Err(e) => assert!(
                        matches!(e.code, ErrorCode::Transport | ErrorCode::Internal),
                        "unexpected failure during failover: {e:?}"
                    ),
                }
            }
            indexes
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    set.kill(0);

    let mut seen = HashSet::new();
    let mut minted = 0usize;
    for handle in handles {
        for index in handle.join().unwrap() {
            assert!(seen.insert(index), "duplicate one-time index {index}");
            minted += 1;
        }
    }
    // The surviving majority must have kept the vast majority of traffic
    // flowing (most calls either hit live replicas or failed over on a
    // connect-phase error).
    assert!(minted >= 100, "only {minted}/160 issues succeeded");

    // And post-kill, issuance through the survivors is fully healthy.
    let token = client.issue(&request(999_999).one_time()).unwrap();
    assert!(seen.insert(token.index));
    set.shutdown();
}

/// Invariant 2: losing counter quorum degrades exactly one-time issuance
/// (fail-closed, `counter_unavailable` over the wire); expiry issuance
/// keeps working; healing the partition restores everything.
#[test]
fn quorum_loss_fails_closed_and_recovers() {
    let set = set();
    let client = fast_client(&set);

    client.issue(&request(1).one_time()).unwrap();

    // Partition two of three counter nodes away: replicas keep serving
    // HTTP, but the counter group has no majority.
    set.partition_counter(1);
    set.partition_counter(2);
    assert!(!set.has_quorum());

    let err = client.issue(&request(2).one_time()).unwrap_err();
    assert_eq!(err.code, ErrorCode::CounterUnavailable);
    // Degradation is partial: tokens that need no counter still mint, on
    // every replica.
    for addr in set.addrs() {
        HttpClient::connect(addr).issue(&request(3)).unwrap();
    }

    // Heal: quorum returns, one-time issuance resumes, and the recovered
    // nodes are caught up (no index reuse).
    set.heal_counter(1);
    set.heal_counter(2);
    assert!(set.has_quorum());
    let before = set.counter().committed();
    let token = client.issue(&request(4).one_time()).unwrap();
    assert_eq!(token.index as u64 + 1, set.counter().committed());
    assert_eq!(set.counter().committed(), before + 1);
    set.shutdown();
}

/// Invariant 3 (at-most-once): a one-time issue whose response is lost
/// after dispatch is surfaced as a transport error — not replayed on
/// another replica — and burns exactly one counter index.
#[test]
fn lost_response_one_time_issue_is_never_replayed() {
    let set = set();
    let client = fast_client(&set);
    client.ping().unwrap();

    let before = set.counter().committed();
    // Every replica truncates its next response: wherever the call lands,
    // the token is minted but the answer dies on the wire.
    for id in 0..set.len() {
        set.faults(id).truncate_responses(1);
    }
    let err = client.issue(&request(50).one_time()).unwrap_err();
    assert_eq!(err.code, ErrorCode::Transport);
    // Exactly one index was burned: the client did not blind-retry the
    // non-idempotent issue on the other (equally armed) replicas.
    assert_eq!(
        set.counter().committed(),
        before + 1,
        "a lost-response one-time issue must burn exactly one index"
    );
    for id in 0..set.len() {
        set.faults(id).clear();
    }

    // The same lost-response fault on an *expiry* issue is retried freely
    // (re-minting is byte-identical) and succeeds without burning indexes.
    set.faults(0).truncate_responses(1);
    set.faults(1).truncate_responses(1);
    client.issue(&request(51)).unwrap();
    assert_eq!(set.counter().committed(), before + 1);
    set.shutdown();
}

/// Invariant 4: a replica that accepts but never answers within the read
/// timeout surfaces a distinguishable "timed out" transport error.
#[test]
fn hung_replica_surfaces_a_read_timeout() {
    let set = set();
    // Single-endpoint client with a 200 ms read ceiling, no retries.
    let client = FailoverClient::with_config(
        vec![set.addrs()[0]],
        HttpClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(500),
        },
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        },
        BreakerConfig::default(),
    );
    client.ping().unwrap();

    set.faults(0).delay_responses(Duration::from_secs(5));
    let start = Instant::now();
    let err = client.issue(&request(60).one_time()).unwrap_err();
    let elapsed = start.elapsed();
    assert_eq!(err.code, ErrorCode::Transport);
    assert!(
        err.message.contains("timed out"),
        "timeout must be distinguishable from other transport failures: {}",
        err.message
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "read timeout must bound the wait, took {elapsed:?}"
    );
    set.faults(0).clear();
    set.shutdown();
}

/// Invariant 5: after a replica dies, its circuit breaker opens and later
/// calls stop paying its timeout — they go straight to the survivors.
#[test]
fn circuit_breaker_sheds_a_dead_replica() {
    let mut set = set();
    let client = FailoverClient::with_config(
        set.addrs(),
        HttpClientConfig {
            connect_timeout: Duration::from_millis(400),
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
        },
        RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(10),
        },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(30),
        },
    );
    client.ping().unwrap();
    set.kill(2);

    // Drive enough pings that the round-robin cursor visits the corpse at
    // least failure_threshold times.
    for _ in 0..12 {
        client.ping().unwrap();
    }
    assert_eq!(
        client.open_breakers(),
        1,
        "dead replica's breaker must open"
    );

    // With the breaker open, a burst of calls never touches the dead
    // endpoint: 20 pings complete far faster than a single connect
    // timeout would allow if each still probed it.
    let start = Instant::now();
    for _ in 0..20 {
        client.ping().unwrap();
    }
    assert!(
        start.elapsed() < Duration::from_millis(400),
        "open breaker must skip the dead replica, burst took {:?}",
        start.elapsed()
    );
    set.shutdown();
}

/// Full-path integration: discovery hands a wallet the replica directory,
/// and the resulting failover client survives a kill + recover cycle.
#[test]
fn discovered_directory_survives_kill_and_recovery() {
    let mut set = set();
    set.publish(contract(), "ChaosVault");

    // Bootstrap from one seed replica, as a wallet would.
    let seed = HttpClient::connect(set.addrs()[1]);
    let client = FailoverClient::discover_replicas(&seed, contract())
        .unwrap()
        .expect("directory published");
    assert_eq!(client.endpoint_count(), set.len());

    client.issue(&request(70)).unwrap();
    set.kill(0);
    client.issue(&request(71)).unwrap();
    set.recover(0).unwrap();
    // The recovered replica answers on its original address — the one the
    // discovered directory still names.
    HttpClient::connect(set.addrs()[0]).ping().unwrap();
    client.issue(&request(72).one_time()).unwrap();
    set.shutdown();
}
