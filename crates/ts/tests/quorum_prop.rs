//! Property test: the quorum counter state machine under adversarial vote
//! delivery.
//!
//! Two coordinators share one set of [`CounterNode`]s, but each reaches
//! them through a `ChaosTransport` that mangles commit deliveries
//! according to a proptest-generated script — dropped votes, votes that
//! are applied but whose reply is lost, duplicated deliveries, and votes
//! stashed and re-delivered *after* newer traffic (reordering). Across
//! arbitrary interleavings the protocol must uphold:
//!
//! 1. **uniqueness** — no one-time index is ever allocated twice, by
//!    either coordinator;
//! 2. **no sub-quorum commit** — every allocated index was genuinely
//!    accepted by at least a majority of the full membership (checked
//!    against a ground-truth accept log kept *inside* the transport, not
//!    against what the coordinator believes it saw).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use smacs_ts::{CommitReply, CounterCluster, CounterNode, CounterTransport};

#[derive(Clone, Copy, Debug)]
enum Action {
    /// Normal delivery.
    Deliver,
    /// The vote never arrives; the coordinator sees the peer unreachable.
    Drop,
    /// The node applies the vote but the reply is lost on the way back —
    /// the worst case for a coordinator, which must count it as missing.
    ApplyLoseReply,
    /// The vote arrives twice; the echo's reply is discarded.
    Duplicate,
    /// The vote is held back and re-delivered later, after newer traffic
    /// has moved the frontier — a stale, reordered arrival.
    Stash,
}

impl Action {
    fn from_u8(raw: u8) -> Action {
        match raw % 5 {
            0 => Action::Deliver,
            1 => Action::Drop,
            2 => Action::ApplyLoseReply,
            3 => Action::Duplicate,
            _ => Action::Stash,
        }
    }
}

/// Ground truth shared by every transport: which nodes actually accepted
/// which values, regardless of what any coordinator observed.
type AcceptLog = Arc<Mutex<Vec<(usize, u64)>>>;

struct ChaosTransport {
    node: Arc<CounterNode>,
    node_id: usize,
    /// Shared action script, consumed one entry per commit delivery.
    script: Arc<Mutex<Vec<u8>>>,
    /// Values held back by `Stash`, re-delivered before the next commit.
    stash: Mutex<Vec<u64>>,
    log: AcceptLog,
}

impl ChaosTransport {
    fn next_action(&self) -> Action {
        self.script
            .lock()
            .unwrap()
            .pop()
            .map(Action::from_u8)
            .unwrap_or(Action::Deliver)
    }

    fn deliver(&self, value: u64) -> Option<CommitReply> {
        let reply = self.node.commit(value);
        if let Some(r) = reply {
            if r.accepted {
                self.log.lock().unwrap().push((self.node_id, value));
            }
        }
        reply
    }
}

impl CounterTransport for ChaosTransport {
    fn prepare(&self) -> Option<u64> {
        self.node.prepare()
    }

    fn commit(&self, value: u64) -> Option<CommitReply> {
        let result = match self.next_action() {
            Action::Deliver => self.deliver(value),
            Action::Drop => None,
            Action::ApplyLoseReply => {
                self.deliver(value);
                None
            }
            Action::Duplicate => {
                let first = self.deliver(value);
                let _ = self.deliver(value);
                first
            }
            Action::Stash => {
                self.stash.lock().unwrap().push(value);
                None
            }
        };
        // Stale re-delivery: everything stashed earlier arrives now, after
        // the (possibly newer) value above. Replies go nowhere — their
        // coordinator round is long over.
        for stale in self.stash.lock().unwrap().drain(..) {
            if stale != value {
                let _ = self.deliver(stale);
            }
        }
        result
    }

    fn catchup(&self) -> Option<u64> {
        self.node.catchup()
    }
}

fn coordinator(
    nodes: &[Arc<CounterNode>],
    script: &Arc<Mutex<Vec<u8>>>,
    log: &AcceptLog,
) -> CounterCluster {
    CounterCluster::from_transports(
        nodes
            .iter()
            .enumerate()
            .map(|(node_id, node)| {
                Arc::new(ChaosTransport {
                    node: node.clone(),
                    node_id,
                    script: script.clone(),
                    stash: Mutex::new(Vec::new()),
                    log: log.clone(),
                }) as Arc<dyn CounterTransport>
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_vote_interleavings_stay_unique_and_quorum_backed(
        replicas in 3usize..6,
        raw_script in prop::collection::vec(0u8..5, 0..150),
        schedule in prop::collection::vec(0u8..2, 1..40),
    ) {
        let nodes: Vec<Arc<CounterNode>> =
            (0..replicas).map(|_| CounterNode::new()).collect();
        let log: AcceptLog = Arc::new(Mutex::new(Vec::new()));
        let script = Arc::new(Mutex::new(raw_script));
        let coordinators =
            [coordinator(&nodes, &script, &log), coordinator(&nodes, &script, &log)];
        let quorum = coordinators[0].quorum();

        let mut allocated = HashSet::new();
        for pick in schedule {
            // An allocation may legitimately fail under heavy vote loss
            // (fail closed); what it may never do is repeat.
            if let Some(index) = coordinators[pick as usize].next_index() {
                prop_assert!(
                    allocated.insert(index),
                    "index {index} allocated twice (replicas={replicas})"
                );
            }
        }

        // Ground truth: every allocated index was accepted by a majority
        // of distinct nodes — the coordinator never trusted a sub-quorum
        // round, no matter how replies were dropped or reordered.
        let mut accepts: HashMap<u64, HashSet<usize>> = HashMap::new();
        for (node_id, value) in log.lock().unwrap().iter() {
            accepts.entry(*value).or_default().insert(*node_id);
        }
        for index in &allocated {
            let voters = accepts.get(index).map_or(0, HashSet::len);
            prop_assert!(
                voters >= quorum,
                "index {index} allocated with only {voters}/{quorum} accepts"
            );
        }

        // And no node double-accepted a value (the frontier check makes
        // duplicate deliveries no-ops).
        let entries = log.lock().unwrap().len();
        let distinct: HashSet<(usize, u64)> =
            log.lock().unwrap().iter().copied().collect();
        prop_assert_eq!(entries, distinct.len());
    }
}
