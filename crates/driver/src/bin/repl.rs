//! `smacs-repl` — interactive (or scripted, via piped stdin) driver over
//! an in-process chain + Token Service. See the `smacs_driver` crate docs
//! for the command reference.

use smacs_driver::Repl;
use std::io::{BufRead, Write};

fn main() {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut repl = Repl::new(1);
    println!("smacs-repl — type 'help' for commands");
    loop {
        print!("smacs> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        match repl.eval(&line) {
            Ok(Some(out)) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Ok(None) => break,
            Err(err) => println!("error: {err}"),
        }
    }
    println!("bye");
}
