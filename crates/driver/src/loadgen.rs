//! Open-loop load generation with tail-latency percentiles.
//!
//! Closed-loop drivers (issue, wait, issue again — everything the bench
//! crate did before this module) implicitly *slow the offered load down*
//! when the service degrades: each in-flight request gates the next, so a
//! server drowning in queueing delay still looks "fully loaded but fine".
//! An **open-loop** generator decouples arrivals from completions: events
//! arrive on a precomputed schedule (uniform or Poisson at a target
//! rate), regardless of whether earlier requests finished. When the
//! service can't keep up, senders fall behind schedule and the
//! *end-to-end* latency — measured from the **scheduled arrival**, not
//! from the moment the request was actually written — grows without
//! bound. That queueing collapse is exactly what p999 must catch and what
//! closed-loop numbers structurally hide (the coordinated-omission trap).
//!
//! Two latencies per event:
//! - **issue**: actual send → response (the service time the TS delivered);
//! - **end-to-end**: scheduled arrival → response (service time *plus*
//!   the lag the sender accumulated behind its schedule).
//!
//! Senders are dedicated OS threads (not `WorkerPool` jobs): a generator
//! must never let its own scheduling contend with the system under test,
//! and the pool inside the TS server is part of that system.

use smacs_primitives::json::Json;
use smacs_token::TokenRequest;
use smacs_ts::TsApi;
use std::time::{Duration, Instant};

/// Arrival process for the open-loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrivals {
    /// Evenly spaced: event `k` arrives at `k / rate`.
    Uniform,
    /// Poisson: exponential inter-arrival times with mean `1 / rate`
    /// (memoryless — the bursty shape real traffic has).
    Poisson,
}

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Target arrival rate, events per second.
    pub offered_rps: u64,
    /// Total events in the run.
    pub events: usize,
    /// Dedicated sender threads (events are dealt round-robin).
    pub senders: usize,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// RNG seed for the Poisson schedule (uniform ignores it).
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            offered_rps: 500,
            events: 500,
            senders: 4,
            arrivals: Arrivals::Poisson,
            seed: 0x5eed,
        }
    }
}

/// Latency percentiles over one run, in nanoseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
}

impl LatencySummary {
    fn from_samples(mut ns: Vec<u64>) -> LatencySummary {
        if ns.is_empty() {
            return LatencySummary::default();
        }
        ns.sort_unstable();
        let pick = |q: f64| ns[((ns.len() - 1) as f64 * q).round() as usize];
        LatencySummary {
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
            p999_ns: pick(0.999),
            max_ns: *ns.last().unwrap(),
        }
    }
}

/// The outcome of one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The configured target rate.
    pub offered_rps: u64,
    /// Completions per second actually achieved over the wall-clock run.
    /// Tracks `offered_rps` while the service keeps up; falls below it
    /// when the service saturates.
    pub achieved_per_sec: u64,
    /// Events completed successfully.
    pub completed: usize,
    /// Events that returned an error.
    pub errors: usize,
    /// Send → response.
    pub issue: LatencySummary,
    /// Scheduled arrival → response (includes sender lag).
    pub e2e: LatencySummary,
}

/// xorshift64* — deterministic, dependency-free schedule randomness.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in (0, 1].
    fn next_unit(&mut self) -> f64 {
        (((self.next_u64() >> 11) + 1) as f64) / (1u64 << 53) as f64
    }
}

/// Precompute the absolute arrival offset of every event.
fn schedule(cfg: &LoadConfig) -> Vec<Duration> {
    let rate = cfg.offered_rps.max(1) as f64;
    let mut rng = XorShift::new(cfg.seed);
    let mut at = 0.0f64;
    (0..cfg.events)
        .map(|k| match cfg.arrivals {
            Arrivals::Uniform => Duration::from_secs_f64(k as f64 / rate),
            Arrivals::Poisson => {
                at += -rng.next_unit().ln() / rate;
                Duration::from_secs_f64(at)
            }
        })
        .collect()
}

/// Drive `api` open-loop: event `k` issues `requests[k % len]` at its
/// scheduled arrival time. Blocks until every event completed.
pub fn run_open_loop(api: &dyn TsApi, requests: &[TokenRequest], cfg: &LoadConfig) -> LoadReport {
    assert!(!requests.is_empty(), "need at least one issuance template");
    run_open_loop_with(cfg, |k| api.issue(&requests[k % requests.len()]).is_ok())
}

/// Drive an arbitrary per-event action open-loop: `event(k)` runs at
/// event `k`'s scheduled arrival time and returns success. This is the
/// core generator behind [`run_open_loop`]; use it directly when one
/// "event" is more than a single TS issuance — e.g. the full
/// issue-token → token-bearing on-chain call → receipt path, where the
/// e2e percentile must cover the whole client-visible pipeline.
pub fn run_open_loop_with<F>(cfg: &LoadConfig, event: F) -> LoadReport
where
    F: Fn(usize) -> bool + Sync,
{
    let offsets = schedule(cfg);
    let senders = cfg.senders.max(1);
    let start = Instant::now();

    // (issue_ns, e2e_ns) per completed event, or None on error.
    let results: Vec<Option<(u64, u64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..senders)
            .map(|lane| {
                let offsets = &offsets;
                let event = &event;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut k = lane;
                    while k < offsets.len() {
                        let due = offsets[k];
                        if let Some(wait) = due.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let sent = Instant::now();
                        let ok = event(k);
                        let done = start.elapsed();
                        out.push(if ok {
                            Some((
                                sent.elapsed().as_nanos() as u64,
                                done.saturating_sub(due).as_nanos() as u64,
                            ))
                        } else {
                            None
                        });
                        k += senders;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sender thread panicked"))
            .collect()
    });
    let wall = start.elapsed();

    let completed: Vec<(u64, u64)> = results.iter().filter_map(|r| *r).collect();
    let errors = results.len() - completed.len();
    let achieved = completed.len() as f64 / wall.as_secs_f64().max(1e-9);
    LoadReport {
        offered_rps: cfg.offered_rps,
        achieved_per_sec: achieved as u64,
        completed: completed.len(),
        errors,
        issue: LatencySummary::from_samples(completed.iter().map(|(i, _)| *i).collect()),
        e2e: LatencySummary::from_samples(completed.iter().map(|(_, e)| *e).collect()),
    }
}

/// Render a report for `BENCH_results.json` (integer leaves only; the
/// `*_ns` keys are gated lower-is-better by `perf_regression`, and
/// `achieved_per_sec` higher-is-better).
pub fn report_to_json(report: &LoadReport) -> Json {
    Json::Obj(vec![
        ("offered_rps".into(), Json::Int(report.offered_rps as i128)),
        (
            "achieved_per_sec".into(),
            Json::Int(report.achieved_per_sec as i128),
        ),
        ("completed".into(), Json::Int(report.completed as i128)),
        ("errors".into(), Json::Int(report.errors as i128)),
        (
            "issue_p50_ns".into(),
            Json::Int(report.issue.p50_ns as i128),
        ),
        (
            "issue_p99_ns".into(),
            Json::Int(report.issue.p99_ns as i128),
        ),
        (
            "issue_p999_ns".into(),
            Json::Int(report.issue.p999_ns as i128),
        ),
        ("e2e_p50_ns".into(), Json::Int(report.e2e.p50_ns as i128)),
        ("e2e_p99_ns".into(), Json::Int(report.e2e.p99_ns as i128)),
        ("e2e_p999_ns".into(), Json::Int(report.e2e.p999_ns as i128)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{self, OWNER_SECRET};
    use smacs_ts::InProcessClient;

    #[test]
    fn poisson_schedule_is_deterministic_and_roughly_on_rate() {
        let cfg = LoadConfig {
            offered_rps: 1_000,
            events: 2_000,
            arrivals: Arrivals::Poisson,
            seed: 9,
            ..LoadConfig::default()
        };
        let a = schedule(&cfg);
        let b = schedule(&cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "monotone arrivals");
        // 2000 events at 1000/s ≈ 2 s span, generously bounded.
        let span = a.last().unwrap().as_secs_f64();
        assert!((1.0..4.0).contains(&span), "span {span}");
    }

    #[test]
    fn uniform_schedule_is_evenly_spaced() {
        let cfg = LoadConfig {
            offered_rps: 100,
            events: 10,
            arrivals: Arrivals::Uniform,
            ..LoadConfig::default()
        };
        let offsets = schedule(&cfg);
        assert_eq!(offsets[0], Duration::ZERO);
        assert_eq!(offsets[5], Duration::from_millis(50));
    }

    #[test]
    fn percentiles_come_from_sorted_samples() {
        let s = LatencySummary::from_samples((1..=1000).rev().collect());
        assert_eq!(s.p50_ns, 501);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.p999_ns, 999);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn open_loop_run_reports_all_events() {
        let world = scenario::build("oracle", 11).unwrap();
        let requests = world.requests.clone();
        let api = InProcessClient::new(world.token_service(), OWNER_SECRET, world.now());
        let cfg = LoadConfig {
            offered_rps: 2_000,
            events: 120,
            senders: 2,
            arrivals: Arrivals::Poisson,
            seed: 3,
        };
        let report = run_open_loop(&api, &requests, &cfg);
        assert_eq!(report.completed, 120);
        assert_eq!(report.errors, 0);
        assert!(report.issue.p50_ns > 0);
        assert!(report.e2e.p99_ns >= report.issue.p99_ns || report.e2e.p99_ns > 0);
        assert!(report.achieved_per_sec > 0);
    }
}
