//! The scenario registry: named, reproducible worlds over the contract
//! corpus in `smacs-contracts`, shared by the REPL (`scenario <name>`) and
//! the open-loop load generator.
//!
//! Each scenario deploys its contracts behind shields, funds a set of
//! client wallets, builds the Access Control Rules the Token Service
//! should enforce, and yields a list of *issuance templates*
//! ([`TokenRequest`]s) that the load generator cycles through. The
//! template senders/contracts match the rules, so every template is
//! issuable — denied paths are exercised by the REPL and the attack
//! suite, not the load generator.

use smacs_chain::Chain;
use smacs_contracts::{Airdrop, LendingPool, PriceOracle, SessionGame, SmacsAmm};
use smacs_core::client::ClientWallet;
use smacs_core::owner::{OwnerToolkit, ShieldParams};
use smacs_crypto::Keypair;
use smacs_primitives::Address;
use smacs_token::{ArgBinding, TokenRequest, TokenType};
use smacs_ts::{ListPolicy, RuleBook, TokenService, TokenServiceConfig};
use std::sync::Arc;

/// Bearer secret the driver uses for `set_rules` against its own TS.
pub const OWNER_SECRET: &str = "driver-owner";

/// A registry entry.
pub struct ScenarioSpec {
    /// Scenario name (the `scenario <name>` argument).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
}

/// Every scenario the driver knows.
pub const SCENARIOS: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "oracle",
        about: "PriceOracle: postPrice gated by a method-token operator whitelist",
    },
    ScenarioSpec {
        name: "amm",
        about: "SmacsAmm + LendingPool: argument-token price bounds, cross-contract composition",
    },
    ScenarioSpec {
        name: "game",
        about: "SessionGame: short-lifetime method tokens as sessions",
    },
    ScenarioSpec {
        name: "airdrop",
        about: "Airdrop: one-time claim tokens at scale",
    },
];

/// A fully-built scenario world.
pub struct ScenarioWorld {
    /// The chain with all scenario contracts deployed (shielded).
    pub chain: Chain,
    /// Owner + TS keys that deployed the shields.
    pub toolkit: OwnerToolkit,
    /// Deployed shielded contracts, `(name, address)` in deploy order.
    pub contracts: Vec<(String, Address)>,
    /// Funded client wallets (the REPL names them `w0..wN`).
    pub wallets: Vec<ClientWallet>,
    /// The ACRs this scenario's TS should enforce.
    pub rules: RuleBook,
    /// TS config (the game scenario shortens token lifetime).
    pub ts_config: TokenServiceConfig,
    /// Issuance templates for the load generator (all permitted by
    /// `rules`; the generator cycles through them).
    pub requests: Vec<TokenRequest>,
}

impl ScenarioWorld {
    /// A `TokenService` enforcing this scenario's rules, signing with the
    /// toolkit's TS key.
    pub fn token_service(&self) -> TokenService {
        TokenService::new(
            self.toolkit.ts_keypair().clone(),
            self.rules.clone(),
            self.ts_config.clone(),
        )
    }

    /// The pending block timestamp (what the TS clock should start at).
    pub fn now(&self) -> u64 {
        self.chain.pending_env().timestamp
    }

    /// Address of a deployed contract by name.
    pub fn contract(&self, name: &str) -> Option<Address> {
        self.contracts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
    }
}

fn small_shield() -> ShieldParams {
    ShieldParams {
        token_lifetime_secs: 3_600,
        max_tx_per_second: 0.35,
        disable_one_time: false,
    }
}

fn base(seed: u64) -> (Chain, OwnerToolkit) {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(seed, 10u128.pow(24));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(seed + 9_000));
    (chain, toolkit)
}

fn wallets(chain: &mut Chain, seed: u64, n: usize) -> Vec<ClientWallet> {
    (0..n)
        .map(|i| ClientWallet::new(chain.funded_keypair(seed + 100 + i as u64, 10u128.pow(22))))
        .collect()
}

/// Build a scenario world by name. `seed` varies keys and addresses
/// deterministically; equal seeds give identical worlds.
pub fn build(name: &str, seed: u64) -> Result<ScenarioWorld, String> {
    match name {
        "oracle" => Ok(build_oracle(seed)),
        "amm" => Ok(build_amm(seed)),
        "game" => Ok(build_game(seed)),
        "airdrop" => Ok(build_airdrop(seed)),
        other => Err(format!(
            "unknown scenario '{other}' (try: {})",
            SCENARIOS
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Oracle-update authorization: only the first 4 wallets (the operators)
/// may obtain `postPrice` method tokens; everyone may read.
fn build_oracle(seed: u64) -> ScenarioWorld {
    let (mut chain, toolkit) = base(seed);
    let (oracle, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(PriceOracle), &small_shield())
        .unwrap();
    let ws = wallets(&mut chain, seed, 6);

    let mut rules = RuleBook::deny_all();
    let method_rules = rules.rules_mut(TokenType::Method);
    method_rules.sender = Some(ListPolicy::allow_all());
    let mut operators = ListPolicy::deny_all();
    for w in &ws[..4] {
        operators.insert(w.address().to_hex());
    }
    method_rules
        .method
        .insert(PriceOracle::POST_SIG.into(), operators);

    let requests = ws[..4]
        .iter()
        .map(|w| TokenRequest::method_token(oracle.address, w.address(), PriceOracle::POST_SIG))
        .collect();

    ScenarioWorld {
        chain,
        toolkit,
        contracts: vec![("oracle".into(), oracle.address)],
        wallets: ws,
        rules,
        ts_config: TokenServiceConfig::default(),
        requests,
    }
}

/// DeFi composition: a seeded AMM plus a lending pool routing through it.
/// Argument tokens carry `arg0`/`arg1` bindings (amountIn/minOut); the
/// rules blacklist `arg1 = "0"` — an unbounded-slippage swap is never
/// authorized, per-value, with no contract change (§IV-E).
fn build_amm(seed: u64) -> ScenarioWorld {
    let (mut chain, toolkit) = base(seed);
    let (amm, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(SmacsAmm), &small_shield())
        .unwrap();
    let (pool, _) = toolkit
        .deploy_shielded(
            &mut chain,
            Arc::new(LendingPool::routing_to(amm.address)),
            &small_shield(),
        )
        .unwrap();
    let ws = wallets(&mut chain, seed, 8);

    let mut rules = RuleBook::deny_all();
    rules.rules_mut(TokenType::Method).sender = Some(ListPolicy::allow_all());
    let arg_rules = rules.rules_mut(TokenType::Argument);
    arg_rules.sender = Some(ListPolicy::allow_all());
    let mut min_out = ListPolicy::allow_all();
    min_out.insert("0");
    arg_rules.argument.insert("arg1".into(), min_out);

    // Seed the pool through the shield with a one-off method token.
    let now = chain.pending_env().timestamp;
    let seeder = TokenService::new(
        toolkit.ts_keypair().clone(),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    );
    let owner_wallet = ClientWallet::new(toolkit.owner().clone());
    let req = TokenRequest::method_token(amm.address, owner_wallet.address(), SmacsAmm::SEED_SIG);
    let token = seeder.issue(&req, now).unwrap();
    let receipt = owner_wallet
        .call_with_token(
            &mut chain,
            amm.address,
            0,
            &SmacsAmm::seed_payload(1_000_000, 1_000_000),
            token,
        )
        .unwrap();
    assert!(receipt.status.is_success(), "AMM seeding failed");

    // Issuance templates: argument-token swaps with varied sizes, all with
    // a non-zero minOut so they pass the blacklist.
    let requests = ws
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let amount_in = 100 + 10 * i as u64;
            let min_out = 1 + i as u64;
            TokenRequest::argument_token(
                amm.address,
                w.address(),
                SmacsAmm::SWAP_SIG,
                vec![
                    ArgBinding {
                        name: "arg0".into(),
                        value: amount_in.to_string(),
                    },
                    ArgBinding {
                        name: "arg1".into(),
                        value: min_out.to_string(),
                    },
                ],
                SmacsAmm::swap_payload(amount_in, min_out),
            )
        })
        .collect();

    ScenarioWorld {
        chain,
        toolkit,
        contracts: vec![("amm".into(), amm.address), ("pool".into(), pool.address)],
        wallets: ws,
        rules,
        ts_config: TokenServiceConfig::default(),
        requests,
    }
}

/// Session-token game: the TS issues 120-second `play` method tokens —
/// a session — so a player re-authenticates by re-minting, never on
/// chain.
fn build_game(seed: u64) -> ScenarioWorld {
    let (mut chain, toolkit) = base(seed);
    let (game, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(SessionGame), &small_shield())
        .unwrap();
    let ws = wallets(&mut chain, seed, 8);

    let mut rules = RuleBook::deny_all();
    let method_rules = rules.rules_mut(TokenType::Method);
    method_rules.sender = Some(ListPolicy::allow_all());
    let mut players = ListPolicy::deny_all();
    for w in &ws {
        players.insert(w.address().to_hex());
    }
    method_rules
        .method
        .insert(SessionGame::PLAY_SIG.into(), players);
    // Joining uses auto-minted argument tokens (the REPL's default).
    rules.rules_mut(TokenType::Argument).sender = Some(ListPolicy::allow_all());

    let requests = ws
        .iter()
        .map(|w| TokenRequest::method_token(game.address, w.address(), SessionGame::PLAY_SIG))
        .collect();

    ScenarioWorld {
        chain,
        toolkit,
        contracts: vec![("game".into(), game.address)],
        wallets: ws,
        rules,
        ts_config: TokenServiceConfig {
            token_lifetime_secs: 120,
            ..TokenServiceConfig::default()
        },
        requests,
    }
}

/// Airdrop: every issuance template is a one-time claim token, so driving
/// this scenario at rate exercises the one-time counter (and, under a
/// `ReplicaSet`, the majority-quorum `CounterCluster`) on every event.
fn build_airdrop(seed: u64) -> ScenarioWorld {
    let (mut chain, toolkit) = base(seed);
    let (drop, _) = toolkit
        .deploy_shielded(
            &mut chain,
            Arc::new(Airdrop::granting(100)),
            &small_shield(),
        )
        .unwrap();
    let ws = wallets(&mut chain, seed, 16);

    let mut rules = RuleBook::deny_all();
    rules.rules_mut(TokenType::Method).sender = Some(ListPolicy::allow_all());

    let requests = ws
        .iter()
        .map(|w| {
            TokenRequest::method_token(drop.address, w.address(), Airdrop::CLAIM_SIG).one_time()
        })
        .collect();

    ScenarioWorld {
        chain,
        toolkit,
        contracts: vec![("airdrop".into(), drop.address)],
        wallets: ws,
        rules,
        ts_config: TokenServiceConfig::default(),
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_ts::TsApi;

    #[test]
    fn every_scenario_builds_and_its_templates_issue() {
        for spec in SCENARIOS {
            let world = build(spec.name, 7).unwrap();
            assert!(!world.requests.is_empty(), "{}: no templates", spec.name);
            let api =
                smacs_ts::InProcessClient::new(world.token_service(), OWNER_SECRET, world.now());
            for req in &world.requests {
                api.issue(req)
                    .unwrap_or_else(|e| panic!("{}: template rejected: {e:?}", spec.name));
            }
        }
    }

    #[test]
    fn amm_rules_deny_unbounded_slippage() {
        let world = build("amm", 3).unwrap();
        let amm = world.contract("amm").unwrap();
        let sender = world.wallets[0].address();
        let bad = TokenRequest::argument_token(
            amm,
            sender,
            SmacsAmm::SWAP_SIG,
            vec![
                ArgBinding {
                    name: "arg0".into(),
                    value: "100".into(),
                },
                ArgBinding {
                    name: "arg1".into(),
                    value: "0".into(),
                },
            ],
            SmacsAmm::swap_payload(100, 0),
        );
        assert!(world.rules.check(&bad).is_err());
    }

    #[test]
    fn oracle_rules_reject_non_operators() {
        let world = build("oracle", 5).unwrap();
        let oracle = world.contract("oracle").unwrap();
        let outsider = world.wallets[5].address();
        let req = TokenRequest::method_token(oracle, outsider, PriceOracle::POST_SIG);
        assert!(world.rules.check(&req).is_err());
    }
}
