//! The `smacs-repl` command language and session engine.
//!
//! Commands are tokenized with the Solidity-subset lexer from
//! `smacs-lang` (so string literals, hex numbers, parentheses, and `//`
//! comments come for free) and interpreted against an in-process
//! [`Chain`] + Token Service ([`InProcessClient`]). See the crate docs
//! for the full command reference.

use crate::scenario::{self, OWNER_SECRET};
use smacs_chain::abi::{self, AbiValue};
use smacs_chain::{Chain, Receipt};
use smacs_contracts::{Airdrop, LendingPool, PriceOracle, SessionGame, SmacsAmm};
use smacs_core::client::ClientWallet;
use smacs_core::owner::{OwnerToolkit, ShieldParams};
use smacs_crypto::Keypair;
use smacs_lang::lexer::{tokenize, Token as Lex};
use smacs_primitives::{Address, H256, U256};
use smacs_token::{ArgBinding, Token, TokenRequest, TokenType};
use smacs_ts::{
    ApiError, FailoverClient, InProcessClient, ListPolicy, ReplicaSet, ReplicaSetConfig, RuleBook,
    TokenService, TokenServiceConfig, TsApi,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// A parsed REPL command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `help`
    Help,
    /// `scenarios`
    Scenarios,
    /// `scenario <name>`
    Scenario(String),
    /// `deploy <kind>` — deploy a corpus contract behind a shield.
    Deploy(String),
    /// `wallet <name>` — create and fund a wallet.
    Wallet(String),
    /// `wallets`
    Wallets,
    /// `contracts`
    Contracts,
    /// `rules permissive` / `rules deny`
    Rules(bool),
    /// `allow <type> sender <wallet>`
    AllowSender(TokenType, String),
    /// `allow <type> method "<sig>" <wallet>`
    AllowMethod(TokenType, String, String),
    /// `allow <type> arg "<name>" "<value>"`
    AllowArg(TokenType, String, String),
    /// `deny <type> arg "<name>" "<value>"`
    DenyArg(TokenType, String, String),
    /// `mint <type> <wallet> <contract> ["<sig>"] [once]`
    Mint {
        /// Requested token type.
        ttype: TokenType,
        /// Requesting wallet name.
        wallet: String,
        /// Target contract name.
        contract: String,
        /// Method signature (method/argument tokens).
        method: Option<String>,
        /// Request the one-time property.
        once: bool,
    },
    /// `tokens`
    Tokens,
    /// `call <wallet> <contract> "<sig>" (<args>) [value <n>] [using <ids>]`
    Call {
        /// Calling wallet name.
        wallet: String,
        /// Target contract name.
        contract: String,
        /// Method signature.
        method: String,
        /// Call arguments.
        args: Vec<CallArg>,
        /// Wei sent with the call.
        value: u128,
        /// Pre-minted token ids to attach (auto-mints when empty).
        using: Vec<usize>,
    },
    /// `cluster <n>` — replace the single TS with a replicated set of
    /// `n` wire-quorum replicas behind a failover client.
    Cluster(usize),
    /// `kill <i>` — take replica `i` off the network.
    Kill(usize),
    /// `recover <i>` — bring replica `i` back (WAL replay + catch-up).
    Recover(usize),
    /// `quorum` — report the counter group's quorum state.
    Quorum,
    /// `receipt` — dump the last receipt including the trace.
    Receipt,
    /// `storage <contract> <slot>`
    Storage(String, u64),
    /// `advance <secs>` — advance chain + TS time.
    Advance(u64),
    /// `time`
    Time,
    /// `quit` / `exit`
    Quit,
}

/// One argument of a `call` command.
#[derive(Clone, Debug, PartialEq)]
pub enum CallArg {
    /// A uint literal.
    Num(u64),
    /// A wallet or contract name (resolved to its address).
    Name(String),
    /// A literal `0x…` address.
    Addr(Address),
}

fn ttype_of(word: &str) -> Result<TokenType, String> {
    match word {
        "super" => Ok(TokenType::Super),
        "method" => Ok(TokenType::Method),
        "argument" => Ok(TokenType::Argument),
        other => Err(format!(
            "unknown token type '{other}' (super|method|argument)"
        )),
    }
}

fn ident(tok: Option<&Lex>, what: &str) -> Result<String, String> {
    match tok {
        Some(Lex::Ident(s)) => Ok(s.clone()),
        other => Err(format!("expected {what}, got {other:?}")),
    }
}

fn string(tok: Option<&Lex>, what: &str) -> Result<String, String> {
    match tok {
        Some(Lex::Str(s)) => Ok(s.clone()),
        other => Err(format!("expected quoted {what}, got {other:?}")),
    }
}

fn number(tok: Option<&Lex>, what: &str) -> Result<u64, String> {
    match tok {
        Some(Lex::Number(s)) => parse_u64(s),
        other => Err(format!("expected {what}, got {other:?}")),
    }
}

fn parse_u64(text: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| format!("bad number '{text}'"))
}

/// Parse one input line into a [`Command`]. Blank lines and comment-only
/// lines return `Ok(None)`.
pub fn parse(line: &str) -> Result<Option<Command>, String> {
    let toks = tokenize(line).map_err(|e| e.to_string())?;
    if toks.is_empty() {
        return Ok(None);
    }
    let head = match &toks[0] {
        Lex::Ident(s) => s.as_str(),
        other => return Err(format!("expected a command, got {other}")),
    };
    let rest = &toks[1..];
    let cmd = match head {
        "help" => Command::Help,
        "scenarios" => Command::Scenarios,
        "scenario" => Command::Scenario(ident(rest.first(), "scenario name")?),
        "deploy" => Command::Deploy(ident(rest.first(), "contract kind")?),
        "wallet" => Command::Wallet(ident(rest.first(), "wallet name")?),
        "wallets" => Command::Wallets,
        "contracts" => Command::Contracts,
        "rules" => match ident(rest.first(), "permissive|deny")?.as_str() {
            "permissive" => Command::Rules(true),
            "deny" => Command::Rules(false),
            other => return Err(format!("rules takes permissive|deny, got '{other}'")),
        },
        "allow" | "deny" => {
            let ttype = ttype_of(&ident(rest.first(), "token type")?)?;
            let shape = ident(rest.get(1), "sender|method|arg")?;
            match (head, shape.as_str()) {
                ("allow", "sender") => {
                    Command::AllowSender(ttype, ident(rest.get(2), "wallet name")?)
                }
                ("allow", "method") => Command::AllowMethod(
                    ttype,
                    string(rest.get(2), "method signature")?,
                    ident(rest.get(3), "wallet name")?,
                ),
                ("allow", "arg") => Command::AllowArg(
                    ttype,
                    string(rest.get(2), "argument name")?,
                    string(rest.get(3), "argument value")?,
                ),
                ("deny", "arg") => Command::DenyArg(
                    ttype,
                    string(rest.get(2), "argument name")?,
                    string(rest.get(3), "argument value")?,
                ),
                _ => return Err(format!("'{head} {shape}' is not a command")),
            }
        }
        "mint" => {
            let ttype = ttype_of(&ident(rest.first(), "token type")?)?;
            let wallet = ident(rest.get(1), "wallet name")?;
            let contract = ident(rest.get(2), "contract name")?;
            let mut method = None;
            let mut once = false;
            let mut i = 3;
            while i < rest.len() {
                match &rest[i] {
                    Lex::Str(s) => method = Some(s.clone()),
                    Lex::Ident(w) if w == "once" => once = true,
                    other => return Err(format!("unexpected '{other}' in mint")),
                }
                i += 1;
            }
            Command::Mint {
                ttype,
                wallet,
                contract,
                method,
                once,
            }
        }
        "tokens" => Command::Tokens,
        "call" => parse_call(rest)?,
        "cluster" => Command::Cluster(number(rest.first(), "replica count")? as usize),
        "kill" => Command::Kill(number(rest.first(), "replica id")? as usize),
        "recover" => Command::Recover(number(rest.first(), "replica id")? as usize),
        "quorum" => Command::Quorum,
        "receipt" => Command::Receipt,
        "storage" => Command::Storage(
            ident(rest.first(), "contract name")?,
            number(rest.get(1), "slot number")?,
        ),
        "advance" => Command::Advance(number(rest.first(), "seconds")?),
        "time" => Command::Time,
        "quit" | "exit" => Command::Quit,
        other => return Err(format!("unknown command '{other}' (try help)")),
    };
    Ok(Some(cmd))
}

fn parse_call(rest: &[Lex]) -> Result<Command, String> {
    let wallet = ident(rest.first(), "wallet name")?;
    let contract = ident(rest.get(1), "contract name")?;
    let method = string(rest.get(2), "method signature")?;
    let mut i = 3;
    let mut args = Vec::new();
    if rest.get(i) == Some(&Lex::LParen) {
        i += 1;
        while rest.get(i) != Some(&Lex::RParen) {
            match rest.get(i) {
                Some(Lex::Number(n)) => {
                    if let Some(addr) = Address::from_hex(n) {
                        args.push(CallArg::Addr(addr));
                    } else {
                        args.push(CallArg::Num(parse_u64(n)?));
                    }
                }
                Some(Lex::Ident(name)) => args.push(CallArg::Name(name.clone())),
                Some(Lex::Comma) => {}
                other => return Err(format!("bad call argument {other:?}")),
            }
            i += 1;
        }
        i += 1; // consume ')'
    }
    let mut value = 0u128;
    let mut using = Vec::new();
    while i < rest.len() {
        match &rest[i] {
            Lex::Ident(w) if w == "value" => {
                value = number(rest.get(i + 1), "wei value")? as u128;
                i += 2;
            }
            Lex::Ident(w) if w == "using" => {
                i += 1;
                while i < rest.len() {
                    match &rest[i] {
                        Lex::Number(n) => using.push(parse_u64(n)? as usize),
                        Lex::Comma => {}
                        other => return Err(format!("bad token id {other:?}")),
                    }
                    i += 1;
                }
            }
            other => return Err(format!("unexpected '{other}' in call")),
        }
    }
    Ok(Command::Call {
        wallet,
        contract,
        method,
        args,
        value,
        using,
    })
}

/// Metadata kept alongside each minted token.
struct Minted {
    token: Token,
    contract: Address,
    summary: String,
}

/// How the session reaches its Token Service: one in-process instance, or
/// a live replicated set (started by `cluster <n>`) behind a failover
/// client — same signing identity either way, so minted tokens verify
/// against the shields already on the session's chain.
enum Backend {
    Local(InProcessClient),
    Replicated {
        set: Box<ReplicaSet>,
        client: FailoverClient,
    },
}

impl Backend {
    fn issue(&self, req: &TokenRequest) -> Result<Token, ApiError> {
        match self {
            Backend::Local(api) => api.issue(req),
            Backend::Replicated { client, .. } => client.issue(req),
        }
    }

    fn advance_time(&self, secs: u64) {
        match self {
            Backend::Local(api) => api.advance_time(secs),
            Backend::Replicated { set, .. } => set.advance_time(secs),
        }
    }
}

/// The interactive session: an in-process chain, shields deployed by one
/// owner toolkit, and a Token Service reached through [`InProcessClient`].
pub struct Repl {
    chain: Chain,
    toolkit: OwnerToolkit,
    backend: Backend,
    rules: RuleBook,
    wallets: BTreeMap<String, ClientWallet>,
    contracts: BTreeMap<String, Address>,
    tokens: Vec<Minted>,
    last_receipt: Option<Receipt>,
    wallet_seed: u64,
}

const HELP: &str = "\
commands:
  scenarios | scenario <name>         list / load a corpus scenario
  deploy <amm|pool|oracle|game|airdrop>
  wallet <name> | wallets | contracts
  rules <permissive|deny>
  allow <type> sender <wallet>
  allow <type> method \"<sig>\" <wallet>
  allow <type> arg \"<name>\" \"<value>\"      (deny ... blacklists)
  mint <type> <wallet> <contract> [\"<sig>\"] [once]
  tokens
  call <wallet> <contract> \"<sig>\" (<args>) [value <n>] [using <ids>]
  cluster <n> | kill <i> | recover <i> | quorum
  receipt | storage <contract> <slot> | advance <secs> | time
  quit
token types: super | method | argument";

impl Default for Repl {
    fn default() -> Self {
        Repl::new(1)
    }
}

impl Repl {
    /// A fresh session. The TS starts with an empty (deny-all) rule book:
    /// nothing is issuable until `rules permissive` or `allow …`.
    pub fn new(seed: u64) -> Repl {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(seed, 10u128.pow(24));
        let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(seed + 9_000));
        let rules = RuleBook::deny_all();
        let api = InProcessClient::new(
            TokenService::new(
                toolkit.ts_keypair().clone(),
                rules.clone(),
                TokenServiceConfig::default(),
            ),
            OWNER_SECRET,
            chain.pending_env().timestamp,
        );
        Repl {
            chain,
            toolkit,
            backend: Backend::Local(api),
            rules,
            wallets: BTreeMap::new(),
            contracts: BTreeMap::new(),
            tokens: Vec::new(),
            last_receipt: None,
            wallet_seed: seed + 50,
        }
    }

    /// Parse and run one line. `Ok(None)` means "quit".
    pub fn eval(&mut self, line: &str) -> Result<Option<String>, String> {
        match parse(line)? {
            None => Ok(Some(String::new())),
            Some(Command::Quit) => Ok(None),
            Some(cmd) => self.run(cmd).map(Some),
        }
    }

    fn wallet(&self, name: &str) -> Result<&ClientWallet, String> {
        self.wallets
            .get(name)
            .ok_or_else(|| format!("unknown wallet '{name}'"))
    }

    fn contract(&self, name: &str) -> Result<Address, String> {
        self.contracts
            .get(name)
            .copied()
            .ok_or_else(|| format!("unknown contract '{name}'"))
    }

    fn push_rules(&self) -> Result<(), String> {
        match &self.backend {
            Backend::Local(api) => api
                .set_rules(OWNER_SECRET, self.rules.clone())
                .map_err(|e| format!("set_rules failed: {e:?}")),
            // The REPL is the operator's console; it updates the shared
            // shards directly rather than picking one replica's derived
            // admin credential.
            Backend::Replicated { set, .. } => {
                set.set_rules(self.rules.clone());
                Ok(())
            }
        }
    }

    /// Replace the backend, shutting a previous replica set down cleanly.
    fn install_backend(&mut self, backend: Backend) {
        if let Backend::Replicated { set, .. } = std::mem::replace(&mut self.backend, backend) {
            set.shutdown();
        }
    }

    fn replica_set(&mut self) -> Result<&mut ReplicaSet, String> {
        match &mut self.backend {
            Backend::Replicated { set, .. } => Ok(set.as_mut()),
            Backend::Local(_) => Err("no cluster running (start one with: cluster <n>)".into()),
        }
    }

    fn run(&mut self, cmd: Command) -> Result<String, String> {
        match cmd {
            Command::Help => Ok(HELP.into()),
            Command::Scenarios => Ok(scenario::SCENARIOS
                .iter()
                .map(|s| format!("{:8} {}", s.name, s.about))
                .collect::<Vec<_>>()
                .join("\n")),
            Command::Scenario(name) => self.load_scenario(&name),
            Command::Deploy(kind) => self.deploy(&kind),
            Command::Wallet(name) => {
                self.wallet_seed += 1;
                let w =
                    ClientWallet::new(self.chain.funded_keypair(self.wallet_seed, 10u128.pow(22)));
                let line = format!("wallet {name} = {}", w.address().to_hex());
                self.wallets.insert(name, w);
                Ok(line)
            }
            Command::Wallets => Ok(self
                .wallets
                .iter()
                .map(|(n, w)| format!("{n} = {}", w.address().to_hex()))
                .collect::<Vec<_>>()
                .join("\n")),
            Command::Contracts => Ok(self
                .contracts
                .iter()
                .map(|(n, a)| format!("{n} = {}", a.to_hex()))
                .collect::<Vec<_>>()
                .join("\n")),
            Command::Rules(permissive) => {
                self.rules = if permissive {
                    RuleBook::permissive()
                } else {
                    RuleBook::deny_all()
                };
                self.push_rules()?;
                Ok(format!(
                    "rules reset to {}",
                    if permissive { "permissive" } else { "deny-all" }
                ))
            }
            Command::AllowSender(ttype, wallet) => {
                let addr = self.wallet(&wallet)?.address().to_hex();
                let rules = self.rules.rules_mut(ttype);
                match rules.sender.get_or_insert_with(ListPolicy::deny_all) {
                    ListPolicy::Whitelist(set) => {
                        set.insert(addr.clone());
                    }
                    ListPolicy::Blacklist(_) => {
                        return Err("sender policy is a blacklist; use rules deny first".into())
                    }
                }
                self.push_rules()?;
                Ok(format!("allowed {ttype:?} sender {addr}"))
            }
            Command::AllowMethod(ttype, sig, wallet) => {
                let addr = self.wallet(&wallet)?.address().to_hex();
                self.rules
                    .rules_mut(ttype)
                    .method
                    .entry(sig.clone())
                    .or_insert_with(ListPolicy::deny_all)
                    .insert(addr.clone());
                self.push_rules()?;
                Ok(format!("allowed {ttype:?} {sig} for {addr}"))
            }
            Command::AllowArg(ttype, name, value) => {
                self.rules
                    .rules_mut(ttype)
                    .argument
                    .entry(name.clone())
                    .or_insert_with(ListPolicy::deny_all)
                    .insert(value.clone());
                self.push_rules()?;
                Ok(format!("allowed {ttype:?} arg {name}={value}"))
            }
            Command::DenyArg(ttype, name, value) => {
                self.rules
                    .rules_mut(ttype)
                    .argument
                    .entry(name.clone())
                    .or_insert_with(ListPolicy::allow_all)
                    .insert(value.clone());
                self.push_rules()?;
                Ok(format!("denied {ttype:?} arg {name}={value}"))
            }
            Command::Mint {
                ttype,
                wallet,
                contract,
                method,
                once,
            } => self.mint(ttype, &wallet, &contract, method, once),
            Command::Tokens => Ok(self
                .tokens
                .iter()
                .enumerate()
                .map(|(i, m)| format!("#{i} {}", m.summary))
                .collect::<Vec<_>>()
                .join("\n")),
            Command::Call {
                wallet,
                contract,
                method,
                args,
                value,
                using,
            } => self.call(&wallet, &contract, &method, &args, value, &using),
            Command::Cluster(n) => self.start_cluster(n),
            Command::Kill(id) => {
                let set = self.replica_set()?;
                if id >= set.len() {
                    return Err(format!("no replica {id} (cluster has {})", set.len()));
                }
                set.kill(id);
                let live = set.live_count();
                let total = set.len();
                Ok(format!("replica {id} killed ({live}/{total} live)"))
            }
            Command::Recover(id) => {
                let set = self.replica_set()?;
                if id >= set.len() {
                    return Err(format!("no replica {id} (cluster has {})", set.len()));
                }
                set.recover(id)
                    .map_err(|e| format!("recover failed: {e}"))?;
                let live = set.live_count();
                let total = set.len();
                Ok(format!(
                    "replica {id} recovered from WAL and caught up ({live}/{total} live)"
                ))
            }
            Command::Quorum => {
                let set = self.replica_set()?;
                let counter = set.counter();
                Ok(format!(
                    "counter quorum {}/{} (nodes answering: {}), committed {}, one-time issuance {}",
                    counter.quorum(),
                    counter.len(),
                    counter.live_count(),
                    counter.committed(),
                    if set.has_quorum() {
                        "available"
                    } else {
                        "FAIL-CLOSED"
                    }
                ))
            }
            Command::Receipt => self.dump_receipt(),
            Command::Storage(contract, slot) => {
                let addr = self.contract(&contract)?;
                let val = self
                    .chain
                    .state()
                    .storage_get_u256(addr, H256::from_u256(U256::from_u64(slot)));
                Ok(format!(
                    "storage[{slot}] = {}",
                    H256::from_u256(val).to_hex()
                ))
            }
            Command::Advance(secs) => {
                self.chain.advance_time(secs);
                self.backend.advance_time(secs);
                Ok(format!(
                    "time += {secs}s, now {}",
                    self.chain.pending_env().timestamp
                ))
            }
            Command::Time => Ok(format!("now {}", self.chain.pending_env().timestamp)),
            Command::Quit => unreachable!("handled in eval"),
        }
    }

    fn load_scenario(&mut self, name: &str) -> Result<String, String> {
        let world = scenario::build(name, 1)?;
        let api = InProcessClient::new(world.token_service(), OWNER_SECRET, world.now());
        self.chain = world.chain;
        self.toolkit = world.toolkit;
        self.install_backend(Backend::Local(api));
        self.rules = world.rules;
        self.contracts = world.contracts.into_iter().collect();
        self.wallets = world
            .wallets
            .into_iter()
            .enumerate()
            .map(|(i, w)| (format!("w{i}"), w))
            .collect();
        self.tokens.clear();
        self.last_receipt = None;
        let mut out = format!("scenario {name} loaded\ncontracts:");
        for (n, a) in &self.contracts {
            let _ = write!(out, " {n}={}", a.to_hex());
        }
        let _ = write!(out, "\nwallets: w0..w{}", self.wallets.len() - 1);
        Ok(out)
    }

    /// `cluster <n>`: stand up a wire-quorum [`ReplicaSet`] sharing the
    /// session's TS signing key and current rule book, and route all
    /// subsequent issuance through a [`FailoverClient`] over real TCP.
    /// Tokens it mints verify against the shields already on the chain.
    fn start_cluster(&mut self, n: usize) -> Result<String, String> {
        if n == 0 {
            return Err("cluster needs at least one replica".into());
        }
        let set = ReplicaSet::start(
            self.toolkit.ts_keypair().clone(),
            self.rules.clone(),
            ReplicaSetConfig {
                replicas: n,
                now: self.chain.pending_env().timestamp,
                ..ReplicaSetConfig::default()
            },
        )
        .map_err(|e| format!("cluster start failed: {e}"))?;
        let client = FailoverClient::new(set.addrs());
        let urls = set.urls().join(" ");
        self.install_backend(Backend::Replicated {
            set: Box::new(set),
            client,
        });
        Ok(format!(
            "cluster of {n} replicas up (wire counter quorum): {urls}"
        ))
    }

    fn deploy(&mut self, kind: &str) -> Result<String, String> {
        let shield = ShieldParams {
            token_lifetime_secs: 3_600,
            max_tx_per_second: 0.35,
            disable_one_time: false,
        };
        let contract: Arc<dyn smacs_chain::Contract> = match kind {
            "amm" => Arc::new(SmacsAmm),
            "pool" => {
                let amm = self
                    .contract("amm")
                    .map_err(|_| "deploy amm first (the pool routes through it)".to_string())?;
                Arc::new(LendingPool::routing_to(amm))
            }
            "oracle" => Arc::new(PriceOracle),
            "game" => Arc::new(SessionGame),
            "airdrop" => Arc::new(Airdrop::granting(100)),
            other => return Err(format!("unknown contract kind '{other}'")),
        };
        let (deployed, _) = self
            .toolkit
            .deploy_shielded(&mut self.chain, contract, &shield)
            .map_err(|e| format!("deploy failed: {e:?}"))?;
        self.contracts.insert(kind.to_string(), deployed.address);
        Ok(format!(
            "deployed {kind} at {} (shielded)",
            deployed.address.to_hex()
        ))
    }

    fn mint(
        &mut self,
        ttype: TokenType,
        wallet: &str,
        contract: &str,
        method: Option<String>,
        once: bool,
    ) -> Result<String, String> {
        let sender = self.wallet(wallet)?.address();
        let target = self.contract(contract)?;
        let mut req = match ttype {
            TokenType::Super => TokenRequest::super_token(target, sender),
            TokenType::Method => TokenRequest::method_token(
                target,
                sender,
                method.ok_or("method tokens need a \"<sig>\"")?,
            ),
            TokenType::Argument => {
                return Err("argument tokens bind calldata; use call (auto-mints)".into())
            }
        };
        if once {
            req = req.one_time();
        }
        let token = self
            .backend
            .issue(&req)
            .map_err(|e| format!("issue denied: {e:?}"))?;
        let id = self.tokens.len();
        let summary = format!(
            "{ttype:?} for {wallet} @ {contract} expire={} index={}",
            token.expire, token.index
        );
        self.tokens.push(Minted {
            token,
            contract: target,
            summary: summary.clone(),
        });
        Ok(format!("token #{id} {summary}"))
    }

    fn call(
        &mut self,
        wallet: &str,
        contract: &str,
        method: &str,
        args: &[CallArg],
        value: u128,
        using: &[usize],
    ) -> Result<String, String> {
        let target = self.contract(contract)?;
        let mut abi_args = Vec::new();
        let mut bindings = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            let (value, binding) = match arg {
                CallArg::Num(n) => (AbiValue::Uint(U256::from_u64(*n)), n.to_string()),
                CallArg::Name(name) => {
                    let addr = self
                        .wallets
                        .get(name)
                        .map(|w| w.address())
                        .or_else(|| self.contracts.get(name).copied())
                        .ok_or_else(|| format!("unknown name '{name}'"))?;
                    (AbiValue::Address(addr), addr.to_hex())
                }
                CallArg::Addr(addr) => (AbiValue::Address(*addr), addr.to_hex()),
            };
            abi_args.push(value);
            bindings.push(ArgBinding {
                name: format!("arg{i}"),
                value: binding,
            });
        }
        let payload = abi::encode_call(method, &abi_args);

        let receipt = if using.is_empty() {
            // Auto-mint an argument token binding this exact calldata.
            let w = self
                .wallets
                .get(wallet)
                .ok_or_else(|| format!("unknown wallet '{wallet}'"))?;
            let req = TokenRequest::argument_token(
                target,
                w.address(),
                method,
                bindings,
                payload.clone(),
            );
            let token = self
                .backend
                .issue(&req)
                .map_err(|e| format!("issue denied: {e:?}"))?;
            w.call_with_token(&mut self.chain, target, value, &payload, token)
                .map_err(|e| format!("submit failed: {e:?}"))?
        } else {
            let mut pairs = Vec::new();
            for id in using {
                let m = self
                    .tokens
                    .get(*id)
                    .ok_or_else(|| format!("no token #{id}"))?;
                pairs.push((m.contract, m.token));
            }
            let w = self
                .wallets
                .get(wallet)
                .ok_or_else(|| format!("unknown wallet '{wallet}'"))?;
            w.call_with_tokens(&mut self.chain, target, value, &payload, &pairs)
                .map_err(|e| format!("submit failed: {e:?}"))?
        };

        let line = match receipt.revert_reason() {
            None if receipt.status.is_success() => {
                let ret = if receipt.return_data.is_empty() {
                    String::new()
                } else {
                    format!(" return={}", receipt.return_data.to_hex())
                };
                format!("ok gas={}{ret}", receipt.gas_used)
            }
            Some(reason) => format!("revert \"{reason}\" gas={}", receipt.gas_used),
            None => format!("failed {:?} gas={}", receipt.status, receipt.gas_used),
        };
        self.last_receipt = Some(receipt);
        Ok(line)
    }

    fn dump_receipt(&self) -> Result<String, String> {
        let r = self.last_receipt.as_ref().ok_or("no receipt yet")?;
        let mut out = format!(
            "tx={} block={} status={:?} gas={}\n",
            r.tx_hash.to_hex(),
            r.block_number,
            r.status,
            r.gas_used
        );
        for log in &r.logs {
            let _ = writeln!(
                out,
                "log {} topics={} data={}",
                log.address.to_hex(),
                log.topics.len(),
                log.data.to_hex()
            );
        }
        for frame in r.trace.frames() {
            let _ = writeln!(
                out,
                "{}{} -> {} {:?}",
                "  ".repeat(frame.depth),
                frame.caller.to_hex(),
                frame.callee.to_hex(),
                frame.status
            );
        }
        out.truncate(out.trim_end().len());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(parse("help").unwrap(), Some(Command::Help));
        assert_eq!(parse("tokens").unwrap(), Some(Command::Tokens));
        assert_eq!(parse("   // just a comment").unwrap(), None);
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(
            parse("scenario oracle").unwrap(),
            Some(Command::Scenario("oracle".into()))
        );
        assert_eq!(
            parse("deploy airdrop").unwrap(),
            Some(Command::Deploy("airdrop".into()))
        );
        assert_eq!(
            parse("allow method sender alice").unwrap(),
            Some(Command::AllowSender(TokenType::Method, "alice".into()))
        );
        assert_eq!(
            parse("allow method method \"postPrice(uint256)\" alice").unwrap(),
            Some(Command::AllowMethod(
                TokenType::Method,
                "postPrice(uint256)".into(),
                "alice".into()
            ))
        );
        assert_eq!(
            parse("deny argument arg \"arg1\" \"0\"").unwrap(),
            Some(Command::DenyArg(
                TokenType::Argument,
                "arg1".into(),
                "0".into()
            ))
        );
        assert_eq!(
            parse("mint method alice oracle \"postPrice(uint256)\" once").unwrap(),
            Some(Command::Mint {
                ttype: TokenType::Method,
                wallet: "alice".into(),
                contract: "oracle".into(),
                method: Some("postPrice(uint256)".into()),
                once: true,
            })
        );
        assert_eq!(
            parse("call alice amm \"swap(uint256,uint256)\" (100, 90) value 5 using 0, 1").unwrap(),
            Some(Command::Call {
                wallet: "alice".into(),
                contract: "amm".into(),
                method: "swap(uint256,uint256)".into(),
                args: vec![CallArg::Num(100), CallArg::Num(90)],
                value: 5,
                using: vec![0, 1],
            })
        );
        assert_eq!(
            parse("storage oracle 0x2").unwrap(),
            Some(Command::Storage("oracle".into(), 2))
        );
        assert_eq!(parse("advance 7200").unwrap(), Some(Command::Advance(7200)));
        assert_eq!(parse("cluster 3").unwrap(), Some(Command::Cluster(3)));
        assert_eq!(parse("kill 0").unwrap(), Some(Command::Kill(0)));
        assert_eq!(parse("recover 2").unwrap(), Some(Command::Recover(2)));
        assert_eq!(parse("quorum").unwrap(), Some(Command::Quorum));
        assert_eq!(parse("quit").unwrap(), Some(Command::Quit));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("mint wizard alice oracle").is_err());
        assert!(parse("allow method frobnicate alice").is_err());
        assert!(parse("fire the missiles").is_err());
        assert!(parse("call alice").is_err());
        assert!(parse("storage oracle notanumber").is_err());
    }

    /// The ISSUE acceptance path: deploy, set rules, mint via the TS,
    /// execute an authorized call, and reject an unauthorized one — all
    /// through the command surface.
    #[test]
    fn scripted_session_covers_the_acceptance_path() {
        let mut repl = Repl::new(42);
        let mut run = |line: &str| repl.eval(line).unwrap().unwrap();

        assert!(run("deploy oracle").starts_with("deployed oracle at 0x"));
        run("wallet alice");
        run("wallet mallory");
        // Deny-all TS: nothing issuable yet.
        let err = repl.eval("mint method alice oracle \"postPrice(uint256)\"");
        assert!(err.is_err(), "mint should be denied before rules are set");

        let mut run = |line: &str| repl.eval(line).unwrap().unwrap();
        run("allow method sender alice");
        run("allow method method \"postPrice(uint256)\" alice");
        let minted = run("mint method alice oracle \"postPrice(uint256)\"");
        assert!(minted.starts_with("token #0"), "{minted}");

        let ok = run("call alice oracle \"postPrice(uint256)\" (42000) using 0");
        assert!(ok.starts_with("ok gas="), "{ok}");

        // Mallory is not whitelisted: issuance is refused.
        let denied = repl.eval("mint method mallory oracle \"postPrice(uint256)\"");
        assert!(denied.is_err(), "mallory must not get a token");

        // A stolen token does not help: the shield binds it to alice.
        let mut run = |line: &str| repl.eval(line).unwrap().unwrap();
        let reject = run("call mallory oracle \"postPrice(uint256)\" (1) using 0");
        assert!(reject.starts_with("revert"), "{reject}");
        assert!(run("receipt").contains("status="));
    }

    /// The replicated backend end to end: `cluster 3` swaps issuance onto
    /// a live wire-quorum set, a kill/recover round is transparent to the
    /// session, tokens minted over the wire still clear the on-chain
    /// shield, and `quorum` reports the counter group's state.
    #[test]
    fn cluster_kill_recover_round_keeps_the_session_working() {
        let mut repl = Repl::new(11);
        let mut run = |line: &str| repl.eval(line).unwrap().unwrap();
        assert!(run("deploy oracle").starts_with("deployed"));
        run("wallet alice");
        run("allow method sender alice");
        run("allow method method \"postPrice(uint256)\" alice");

        let up = run("cluster 3");
        assert!(up.starts_with("cluster of 3 replicas up"), "{up}");
        assert!(run("quorum").contains("one-time issuance available"));

        // Mint through the failover client, over real TCP.
        assert!(run("mint method alice oracle \"postPrice(uint256)\" once").starts_with("token #0"));
        run("kill 0");
        // A dead minority is transparent: issuance and quorum hold.
        assert!(run("mint method alice oracle \"postPrice(uint256)\"").starts_with("token #1"));
        let q = run("quorum");
        assert!(q.contains("nodes answering: 2"), "{q}");
        let back = run("recover 0");
        assert!(back.contains("recovered from WAL"), "{back}");
        assert!(run("quorum").contains("nodes answering: 3"));

        // Wire-minted tokens clear the on-chain shield (same identity).
        let ok = run("call alice oracle \"postPrice(uint256)\" (42000) using 1");
        assert!(ok.starts_with("ok gas="), "{ok}");

        // Rule pushes reach every replica through the shared shards.
        run("rules deny");
        let denied = repl.eval("mint method alice oracle \"postPrice(uint256)\"");
        assert!(denied.is_err(), "deny-all must bind the whole cluster");

        // Losing the majority fails one-time issuance closed.
        let mut run = |line: &str| repl.eval(line).unwrap().unwrap();
        run("rules permissive");
        run("kill 1");
        run("kill 2");
        assert!(run("quorum").contains("FAIL-CLOSED"));
        let lost = repl.eval("mint super alice oracle once");
        assert!(lost.is_err(), "one-time issuance must fail closed");
    }

    #[test]
    fn scenario_load_and_session_expiry() {
        let mut repl = Repl::new(7);
        let mut run = |line: &str| repl.eval(line).unwrap().unwrap();
        let loaded = run("scenario game");
        assert!(loaded.contains("scenario game loaded"), "{loaded}");
        // Join (argument token auto-minted), then play inside the session.
        assert!(run("call w0 game \"join()\" ()").starts_with("ok"));
        run("mint method w0 game \"play(uint256)\"");
        assert!(run("call w0 game \"play(uint256)\" (30) using 0").starts_with("ok"));
        // After the 120 s session window the same token is expired.
        run("advance 7200");
        let expired = run("call w0 game \"play(uint256)\" (30) using 0");
        assert!(expired.starts_with("revert"), "{expired}");
    }
}
