//! # smacs-driver — the scenario subsystem
//!
//! Three layers over the contract corpus in `smacs-contracts`:
//!
//! 1. **[`scenario`]** — named, reproducible worlds (chain + shielded
//!    corpus contracts + funded wallets + Access Control Rules + issuance
//!    templates), shared by the REPL and the load generator;
//! 2. **[`repl`]** — the `smacs-repl` interactive driver, the repo's
//!    first interactive surface;
//! 3. **[`loadgen`]** — an open-loop, target-rate load generator
//!    reporting p50/p99/p999 latency.
//!
//! ## `smacs-repl` command reference
//!
//! Lines are tokenized with the Solidity-subset lexer from `smacs-lang`,
//! so `//` comments, quoted strings, and hex numbers follow Solidity
//! rules. One command per line; errors print as `error: …` and never end
//! the session (scripts keep going). Token types are `super`, `method`,
//! `argument`.
//!
//! | Command | Effect |
//! |---|---|
//! | `help` | command summary |
//! | `scenarios` | list corpus scenarios |
//! | `scenario <name>` | load a scenario: deploys its contracts, funds wallets `w0..wN`, installs its rules |
//! | `deploy <kind>` | deploy one corpus contract behind a shield (`amm`, `pool`, `oracle`, `game`, `airdrop`) |
//! | `wallet <name>` | create and fund a wallet |
//! | `wallets` / `contracts` / `tokens` | list session state |
//! | `rules permissive` \| `rules deny` | reset the TS rule book |
//! | `allow <type> sender <wallet>` | whitelist a wallet at type level |
//! | `allow <type> method "<sig>" <wallet>` | whitelist a wallet for one method |
//! | `allow <type> arg "<name>" "<value>"` | whitelist an argument value |
//! | `deny <type> arg "<name>" "<value>"` | blacklist an argument value |
//! | `mint <type> <wallet> <contract> ["<sig>"] [once]` | request a token from the TS (prints `token #N …`) |
//! | `call <wallet> <contract> "<sig>" (<args>) [value <n>] [using <ids>]` | fire a transaction; without `using`, auto-mints an argument token binding the exact calldata |
//! | `receipt` | dump the last receipt: status, gas, logs, call trace |
//! | `storage <contract> <slot>` | read a raw storage slot |
//! | `advance <secs>` / `time` | move or show chain + TS time |
//! | `quit` / `exit` | end the session |
//!
//! A fresh session starts with a **deny-all** rule book — the first
//! `mint` fails until rules are granted, which makes the TS's
//! deny-by-default posture visible interactively.
//!
//! ## Load-generator knobs ([`loadgen::LoadConfig`])
//!
//! - `offered_rps` — target arrival rate (events/second);
//! - `events` — run length;
//! - `senders` — dedicated sender threads (events dealt round-robin);
//! - `arrivals` — `Uniform` (evenly spaced) or `Poisson` (memoryless,
//!   bursty — the realistic default);
//! - `seed` — schedule determinism for Poisson.
//!
//! ## Why open-loop
//!
//! A closed-loop driver waits for each response before sending the next
//! request, so offered load *adapts to* service degradation: a saturated
//! server simply slows the benchmark down and latency looks flat. Real
//! clients don't coordinate like that — arrivals keep coming. The
//! open-loop generator fixes the arrival schedule in advance and measures
//! end-to-end latency **from the scheduled arrival**, so time a request
//! spends waiting behind a lagging sender is *charged to the service*,
//! not silently dropped (the coordinated-omission trap). While the TS
//! keeps up, `achieved_per_sec ≈ offered_rps` and end-to-end ≈ issue
//! latency; past saturation the e2e tail grows without bound — which is
//! precisely the signal `perf_regression` gates on via the `*_p99_ns`
//! keys.

pub mod loadgen;
pub mod repl;
pub mod scenario;

pub use loadgen::{run_open_loop, Arrivals, LoadConfig, LoadReport};
pub use repl::{parse, Command, Repl};
pub use scenario::{ScenarioWorld, SCENARIOS};
