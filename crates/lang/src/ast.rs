//! The abstract syntax tree for the Solidity subset.

use std::fmt;

/// Method visibility (§II-B of the paper enumerates all four).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Visibility {
    /// Callable from other contracts and via transactions only.
    External,
    /// Callable internally or via messages.
    Public,
    /// Callable from this contract and derived contracts.
    Internal,
    /// Callable from this contract only.
    Private,
}

impl Visibility {
    /// Whether the method is part of the contract interface — the ones the
    /// SMACS transformation must guard.
    pub fn is_externally_callable(self) -> bool {
        matches!(self, Visibility::External | Visibility::Public)
    }

    /// The Solidity keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Visibility::External => "external",
            Visibility::Public => "public",
            Visibility::Internal => "internal",
            Visibility::Private => "private",
        }
    }
}

impl fmt::Display for Visibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A type name (kept as written: `uint`, `address`, `mapping(address=>uint)`,
/// …).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeName {
    /// An elementary or user-defined type, by name.
    Elementary(String),
    /// `mapping(keyType => valueType)`.
    Mapping(Box<TypeName>, Box<TypeName>),
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeName::Elementary(name) => f.write_str(name),
            TypeName::Mapping(k, v) => write!(f, "mapping({k}=>{v})"),
        }
    }
}

/// An expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Number literal (source text).
    Number(String),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// Member access `base.member`.
    Member(Box<Expr>, String),
    /// Index `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Call `callee(args…)`.
    Call(Box<Expr>, Vec<Expr>),
    /// Unary `!x` or `-x`.
    Unary(&'static str, Box<Expr>),
    /// Binary `a op b`.
    Binary(&'static str, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: a bare identifier.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Convenience: `callee(args…)` with an identifier callee.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(Box::new(Expr::ident(name)), args)
    }
}

/// A statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// Local declaration `type name (= value);`.
    VarDecl {
        /// Declared type.
        ty: TypeName,
        /// Variable name.
        name: String,
        /// Optional initializer.
        value: Option<Expr>,
    },
    /// Assignment `target op value;` where op ∈ {=, +=, -=}.
    Assign {
        /// Assignment target (identifier, index, or member).
        target: Expr,
        /// `=`, `+=`, or `-=`.
        op: &'static str,
        /// Right-hand side.
        value: Expr,
    },
    /// Bare expression statement (usually a call).
    Expr(Expr),
    /// `if (cond) { … } else { … }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_branch: Vec<Stmt>,
        /// Optional else-branch.
        else_branch: Option<Vec<Stmt>>,
    },
    /// `while (cond) { … }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return;` / `return expr;`.
    Return(Option<Expr>),
    /// `throw;` (Solidity v0.4).
    Throw,
}

/// A function parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Parameter type.
    pub ty: TypeName,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Function name; the contract-name constructor convention of Solidity
    /// v0.4 (`function Attacker(...)`) is preserved verbatim.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Visibility (defaults to public, as Solidity v0.4 did).
    pub visibility: Visibility,
    /// `payable` marker.
    pub payable: bool,
    /// Optional single return type (subset: at most one).
    pub returns: Option<TypeName>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// True for the anonymous fallback `function() payable { … }`.
    pub is_fallback: bool,
}

/// A state-variable declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateVar {
    /// Declared type.
    pub ty: TypeName,
    /// Variable name.
    pub name: String,
    /// Optional initializer.
    pub value: Option<Expr>,
}

/// A contract definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ContractDef {
    /// Contract name.
    pub name: String,
    /// State variables in order.
    pub state_vars: Vec<StateVar>,
    /// Functions in order.
    pub functions: Vec<Function>,
}

impl ContractDef {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A parsed source file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceUnit {
    /// Contracts in order of appearance.
    pub contracts: Vec<ContractDef>,
}

impl SourceUnit {
    /// Find a contract by name.
    pub fn contract(&self, name: &str) -> Option<&ContractDef> {
        self.contracts.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_classification() {
        assert!(Visibility::External.is_externally_callable());
        assert!(Visibility::Public.is_externally_callable());
        assert!(!Visibility::Internal.is_externally_callable());
        assert!(!Visibility::Private.is_externally_callable());
    }

    #[test]
    fn type_display() {
        let mapping = TypeName::Mapping(
            Box::new(TypeName::Elementary("address".into())),
            Box::new(TypeName::Elementary("uint".into())),
        );
        assert_eq!(mapping.to_string(), "mapping(address=>uint)");
    }
}
