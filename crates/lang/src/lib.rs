//! # smacs-lang — a Solidity-lite front end and the Fig. 4 adoption tool
//!
//! "To facilitate easy adoption we develop a tool that allows to transform
//! any legacy smart contract into an equivalent SMACS-enabled smart
//! contract" (§IV-B). This crate implements that tool over a Solidity
//! subset sufficient for the paper's example contracts:
//!
//! - [`lexer`] / [`parser`] / [`ast`] — the front end;
//! - [`printer`] — source renderer (parse ∘ print is the identity on the
//!   AST, property-tested);
//! - [`interp`] — an interpreter: Solidity-lite contracts run directly on
//!   the chain simulator (real selectors, gas-charged storage, message
//!   calls incl. the Fig. 7 low-level `.call.value()()` pattern);
//! - [`transform`] — the Fig. 4 rewrite: every `public`/`external` method
//!   gains a `token` parameter and an `assert(verify(token))` prologue;
//!   public methods that are *also called internally* are split into a
//!   verifying public wrapper and a private `_name` body, and internal
//!   call sites are rewired to the private half (so internal calls never
//!   re-verify, exactly as Fig. 4 shows).

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod transform;

pub use ast::{ContractDef, Expr, Function, SourceUnit, Stmt, Visibility};
pub use interp::{InterpretedContract, Value};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse, ParseError};
pub use printer::print_source;
pub use transform::smacs_enable;
