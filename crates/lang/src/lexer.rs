//! Tokenizer for the Solidity subset.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Decimal or hex number literal (kept as source text).
    Number(String),
    /// String literal (contents without quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `=>` (mapping arrow)
    FatArrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::PlusAssign => write!(f, "+="),
            Token::MinusAssign => write!(f, "-="),
            Token::Eq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Not => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::FatArrow => write!(f, "=>"),
        }
    }
}

/// Lexing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize source text. Line (`//`) and block (`/* */`) comments and
/// `pragma`/`import` directives are skipped.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                // Directives consume the rest of the statement.
                if word == "pragma" || word == "import" {
                    while i < bytes.len() && bytes[i] != b';' {
                        i += 1;
                    }
                    i += 1; // the semicolon
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Hex literal.
                if c == '0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                } else {
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                tokens.push(Token::Number(src[start..i].to_string()));
            }
            '"' => {
                let start = i;
                i += 1;
                let content_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        offset: start,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(src[content_start..i].to_string()));
                i += 1;
            }
            '(' => push1(&mut tokens, Token::LParen, &mut i),
            ')' => push1(&mut tokens, Token::RParen, &mut i),
            '{' => push1(&mut tokens, Token::LBrace, &mut i),
            '}' => push1(&mut tokens, Token::RBrace, &mut i),
            '[' => push1(&mut tokens, Token::LBracket, &mut i),
            ']' => push1(&mut tokens, Token::RBracket, &mut i),
            ';' => push1(&mut tokens, Token::Semi, &mut i),
            ',' => push1(&mut tokens, Token::Comma, &mut i),
            '.' => push1(&mut tokens, Token::Dot, &mut i),
            '+' if bytes.get(i + 1) == Some(&b'=') => push2(&mut tokens, Token::PlusAssign, &mut i),
            '-' if bytes.get(i + 1) == Some(&b'=') => {
                push2(&mut tokens, Token::MinusAssign, &mut i)
            }
            '=' if bytes.get(i + 1) == Some(&b'=') => push2(&mut tokens, Token::Eq, &mut i),
            '=' if bytes.get(i + 1) == Some(&b'>') => push2(&mut tokens, Token::FatArrow, &mut i),
            '=' => push1(&mut tokens, Token::Assign, &mut i),
            '!' if bytes.get(i + 1) == Some(&b'=') => push2(&mut tokens, Token::Ne, &mut i),
            '!' => push1(&mut tokens, Token::Not, &mut i),
            '<' if bytes.get(i + 1) == Some(&b'=') => push2(&mut tokens, Token::Le, &mut i),
            '<' => push1(&mut tokens, Token::Lt, &mut i),
            '>' if bytes.get(i + 1) == Some(&b'=') => push2(&mut tokens, Token::Ge, &mut i),
            '>' => push1(&mut tokens, Token::Gt, &mut i),
            '+' => push1(&mut tokens, Token::Plus, &mut i),
            '-' => push1(&mut tokens, Token::Minus, &mut i),
            '*' => push1(&mut tokens, Token::Star, &mut i),
            '/' => push1(&mut tokens, Token::Slash, &mut i),
            '%' => push1(&mut tokens, Token::Percent, &mut i),
            '&' if bytes.get(i + 1) == Some(&b'&') => push2(&mut tokens, Token::AndAnd, &mut i),
            '|' if bytes.get(i + 1) == Some(&b'|') => push2(&mut tokens, Token::OrOr, &mut i),
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

fn push1(tokens: &mut Vec<Token>, token: Token, i: &mut usize) {
    tokens.push(token);
    *i += 1;
}

fn push2(tokens: &mut Vec<Token>, token: Token, i: &mut usize) {
    tokens.push(token);
    *i += 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let tokens = tokenize("contract A { uint x = 42; }").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("contract".into()),
                Token::Ident("A".into()),
                Token::LBrace,
                Token::Ident("uint".into()),
                Token::Ident("x".into()),
                Token::Assign,
                Token::Number("42".into()),
                Token::Semi,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn comments_and_directives_skipped() {
        let src =
            "pragma solidity ^0.4.24;\nimport \"./B.sol\";\n// line\n/* block */ contract A {}";
        let tokens = tokenize(src).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("contract".into()),
                Token::Ident("A".into()),
                Token::LBrace,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn compound_operators() {
        let tokens = tokenize("a += 1; b == c; d => e; f != g; h <= i;").unwrap();
        assert!(tokens.contains(&Token::PlusAssign));
        assert!(tokens.contains(&Token::Eq));
        assert!(tokens.contains(&Token::FatArrow));
        assert!(tokens.contains(&Token::Ne));
        assert!(tokens.contains(&Token::Le));
    }

    #[test]
    fn hex_and_string_literals() {
        let tokens = tokenize("x = 0xdeadBEEF; s = \"hello\";").unwrap();
        assert!(tokens.contains(&Token::Number("0xdeadBEEF".into())));
        assert!(tokens.contains(&Token::Str("hello".into())));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("abc $ def").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
