//! Recursive-descent parser for the Solidity subset.

use std::fmt;

use crate::ast::{
    ContractDef, Expr, Function, Param, SourceUnit, StateVar, Stmt, TypeName, Visibility,
};
use crate::lexer::{tokenize, LexError, Token};

/// Parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Token index of the failure.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: 0,
            message: e.to_string(),
        }
    }
}

/// Parse source text into a [`SourceUnit`].
pub fn parse(src: &str) -> Result<SourceUnit, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.source_unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(ref t) if t == expected => Ok(()),
            Some(t) => Err(ParseError {
                at: self.pos - 1,
                message: format!("expected {expected}, found {t}"),
            }),
            None => Err(ParseError {
                at: self.pos,
                message: format!("expected {expected}, found end of input"),
            }),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(ref s)) if s == kw => Ok(()),
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected keyword {kw}, found {other:?}"),
            }),
        }
    }

    fn take_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ---- grammar ----

    fn source_unit(&mut self) -> Result<SourceUnit, ParseError> {
        let mut contracts = Vec::new();
        while self.peek().is_some() {
            self.expect_keyword("contract")?;
            contracts.push(self.contract()?);
        }
        Ok(SourceUnit { contracts })
    }

    fn contract(&mut self) -> Result<ContractDef, ParseError> {
        let name = self.take_ident()?;
        self.expect(&Token::LBrace)?;
        let mut state_vars = Vec::new();
        let mut functions = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Ident(word)) if word == "function" => {
                    self.pos += 1;
                    functions.push(self.function()?);
                }
                Some(_) => state_vars.push(self.state_var()?),
                None => return self.err("unterminated contract body"),
            }
        }
        Ok(ContractDef {
            name,
            state_vars,
            functions,
        })
    }

    fn state_var(&mut self) -> Result<StateVar, ParseError> {
        let ty = self.type_name()?;
        let name = self.take_ident()?;
        let value = if matches!(self.peek(), Some(Token::Assign)) {
            self.pos += 1;
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&Token::Semi)?;
        Ok(StateVar { ty, name, value })
    }

    fn type_name(&mut self) -> Result<TypeName, ParseError> {
        if self.eat_keyword("mapping") {
            self.expect(&Token::LParen)?;
            let key = self.type_name()?;
            self.expect(&Token::FatArrow)?;
            let value = self.type_name()?;
            self.expect(&Token::RParen)?;
            return Ok(TypeName::Mapping(Box::new(key), Box::new(value)));
        }
        let name = self.take_ident()?;
        Ok(TypeName::Elementary(name))
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        // Anonymous fallback: `function() …`.
        let (name, is_fallback) = if matches!(self.peek(), Some(Token::LParen)) {
            (String::new(), true)
        } else {
            (self.take_ident()?, false)
        };
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        while !matches!(self.peek(), Some(Token::RParen)) {
            let ty = self.type_name()?;
            let pname = self.take_ident()?;
            params.push(Param { ty, name: pname });
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            }
        }
        self.expect(&Token::RParen)?;

        let mut visibility = Visibility::Public; // Solidity v0.4 default
        let mut payable = false;
        let mut returns = None;
        loop {
            if self.eat_keyword("external") {
                visibility = Visibility::External;
            } else if self.eat_keyword("public") {
                visibility = Visibility::Public;
            } else if self.eat_keyword("internal") {
                visibility = Visibility::Internal;
            } else if self.eat_keyword("private") {
                visibility = Visibility::Private;
            } else if self.eat_keyword("payable") {
                payable = true;
            } else if self.eat_keyword("view")
                || self.eat_keyword("pure")
                || self.eat_keyword("constant")
            {
                // Mutability markers are accepted and dropped (the subset
                // does not track them).
            } else if self.eat_keyword("returns") {
                self.expect(&Token::LParen)?;
                returns = Some(self.type_name()?);
                // Optional return-variable name.
                if matches!(self.peek(), Some(Token::Ident(_)))
                    && matches!(self.peek2(), Some(Token::RParen))
                {
                    self.pos += 1;
                }
                self.expect(&Token::RParen)?;
            } else {
                break;
            }
        }
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            visibility,
            payable,
            returns,
            body,
            is_fallback,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Some(Token::RBrace)) {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            stmts.push(self.statement()?);
        }
        self.pos += 1; // consume RBrace
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_keyword("if") {
            self.expect(&Token::LParen)?;
            let cond = self.expr()?;
            self.expect(&Token::RParen)?;
            let then_branch = self.block()?;
            let else_branch = if self.eat_keyword("else") {
                Some(self.block()?)
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_keyword("while") {
            self.expect(&Token::LParen)?;
            let cond = self.expr()?;
            self.expect(&Token::RParen)?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_keyword("return") {
            if matches!(self.peek(), Some(Token::Semi)) {
                self.pos += 1;
                return Ok(Stmt::Return(None));
            }
            let value = self.expr()?;
            self.expect(&Token::Semi)?;
            return Ok(Stmt::Return(Some(value)));
        }
        if self.eat_keyword("throw") {
            self.expect(&Token::Semi)?;
            return Ok(Stmt::Throw);
        }
        // Local declaration: starts with a type keyword followed by an
        // identifier then `=` or `;`. The subset recognizes the elementary
        // type names plus `mapping`.
        if self.looks_like_declaration() {
            let ty = self.type_name()?;
            let name = self.take_ident()?;
            let value = if matches!(self.peek(), Some(Token::Assign)) {
                self.pos += 1;
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&Token::Semi)?;
            return Ok(Stmt::VarDecl { ty, name, value });
        }
        // Assignment or expression statement.
        let target = self.expr()?;
        let stmt = match self.peek() {
            Some(Token::Assign) => {
                self.pos += 1;
                let value = self.expr()?;
                Stmt::Assign {
                    target,
                    op: "=",
                    value,
                }
            }
            Some(Token::PlusAssign) => {
                self.pos += 1;
                let value = self.expr()?;
                Stmt::Assign {
                    target,
                    op: "+=",
                    value,
                }
            }
            Some(Token::MinusAssign) => {
                self.pos += 1;
                let value = self.expr()?;
                Stmt::Assign {
                    target,
                    op: "-=",
                    value,
                }
            }
            _ => Stmt::Expr(target),
        };
        self.expect(&Token::Semi)?;
        Ok(stmt)
    }

    fn looks_like_declaration(&self) -> bool {
        const TYPE_WORDS: &[&str] = &[
            "uint", "uint8", "uint16", "uint32", "uint64", "uint128", "uint256", "int", "bool",
            "address", "bytes", "bytes4", "bytes32", "string", "mapping",
        ];
        match (self.peek(), self.peek2()) {
            (Some(Token::Ident(a)), Some(Token::Ident(_))) => TYPE_WORDS.contains(&a.as_str()),
            (Some(Token::Ident(a)), Some(Token::LParen)) => a == "mapping",
            _ => false,
        }
    }

    // Expression precedence climbing:
    // or → and → equality → comparison → additive → multiplicative → unary
    // → postfix (call/index/member) → primary.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.pos += 1;
            let right = self.and_expr()?;
            left = Expr::Binary("||", Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.equality_expr()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.pos += 1;
            let right = self.equality_expr()?;
            left = Expr::Binary("&&", Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn equality_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.comparison_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => "==",
                Some(Token::Ne) => "!=",
                _ => break,
            };
            self.pos += 1;
            let right = self.comparison_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn comparison_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => "<",
                Some(Token::Le) => "<=",
                Some(Token::Gt) => ">",
                Some(Token::Ge) => ">=",
                _ => break,
            };
            self.pos += 1;
            let right = self.additive_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn additive_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => "+",
                Some(Token::Minus) => "-",
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => "*",
                Some(Token::Slash) => "/",
                Some(Token::Percent) => "%",
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(Expr::Unary("!", Box::new(self.unary_expr()?)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Expr::Unary("-", Box::new(self.unary_expr()?)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary_expr()?;
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.pos += 1;
                    let member = self.take_ident()?;
                    expr = Expr::Member(Box::new(expr), member);
                }
                Some(Token::LBracket) => {
                    self.pos += 1;
                    let index = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    expr = Expr::Index(Box::new(expr), Box::new(index));
                }
                Some(Token::LParen) => {
                    self.pos += 1;
                    let mut args = Vec::new();
                    while !matches!(self.peek(), Some(Token::RParen)) {
                        args.push(self.expr()?);
                        if matches!(self.peek(), Some(Token::Comma)) {
                            self.pos += 1;
                        }
                    }
                    self.expect(&Token::RParen)?;
                    expr = Expr::Call(Box::new(expr), args);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s == "true" => Ok(Expr::Bool(true)),
            Some(Token::Ident(s)) if s == "false" => Ok(Expr::Bool(false)),
            Some(Token::Ident(s)) => Ok(Expr::Ident(s)),
            Some(Token::Number(s)) => Ok(Expr::Number(s)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected expression, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_contract() {
        let unit = parse("contract A { uint x; function f() public { x = 1; } }").unwrap();
        assert_eq!(unit.contracts.len(), 1);
        let c = &unit.contracts[0];
        assert_eq!(c.name, "A");
        assert_eq!(c.state_vars.len(), 1);
        assert_eq!(c.functions.len(), 1);
        assert_eq!(c.functions[0].visibility, Visibility::Public);
    }

    #[test]
    fn parses_the_paper_bank() {
        // Fig. 7, modulo the subset's brace style for if-statements.
        let src = r#"
            contract Bank {
                mapping(address=>uint) balance;
                function addBalance() public payable {
                    balance[msg.sender] += msg.value;
                }
                function withdraw() public {
                    uint amount = balance[msg.sender];
                    if (msg.sender.call.value(amount)() == false) { throw; }
                    balance[msg.sender] = 0;
                }
            }
        "#;
        let unit = parse(src).unwrap();
        let bank = unit.contract("Bank").unwrap();
        assert_eq!(bank.functions.len(), 2);
        let withdraw = bank.function("withdraw").unwrap();
        assert_eq!(withdraw.body.len(), 3);
        assert!(matches!(withdraw.body[1], Stmt::If { .. }));
        // msg.sender.call.value(amount)() is a call of a call.
        let Stmt::VarDecl { value: Some(v), .. } = &withdraw.body[0] else {
            panic!("expected declaration with initializer");
        };
        assert!(matches!(v, Expr::Index(_, _)));
    }

    #[test]
    fn parses_fallback_and_constructor() {
        let src = r#"
            contract Attacker {
                bool isAttack;
                address bank;
                function Attacker(address _bank, bool _isAttack) public {
                    bank = _bank;
                    isAttack = _isAttack;
                }
                function() payable {
                    if (isAttack == true) {
                        isAttack = false;
                    }
                }
            }
        "#;
        let unit = parse(src).unwrap();
        let attacker = unit.contract("Attacker").unwrap();
        assert_eq!(attacker.functions.len(), 2);
        assert!(!attacker.functions[0].is_fallback);
        assert!(attacker.functions[1].is_fallback);
        assert!(attacker.functions[1].payable);
    }

    #[test]
    fn visibility_and_modifiers() {
        let src = r#"
            contract V {
                function a() external { }
                function b() public payable { }
                function c() internal { }
                function d() private returns (uint) { return 1; }
                function e() public view returns (uint x) { return 2; }
            }
        "#;
        let unit = parse(src).unwrap();
        let c = unit.contract("V").unwrap();
        assert_eq!(c.function("a").unwrap().visibility, Visibility::External);
        assert!(c.function("b").unwrap().payable);
        assert_eq!(c.function("c").unwrap().visibility, Visibility::Internal);
        assert_eq!(c.function("d").unwrap().visibility, Visibility::Private);
        assert!(c.function("d").unwrap().returns.is_some());
        assert!(c.function("e").unwrap().returns.is_some());
    }

    #[test]
    fn operator_precedence() {
        let unit = parse("contract P { function f() public { uint x = 1 + 2 * 3; } }").unwrap();
        let f = unit.contracts[0].function("f").unwrap();
        let Stmt::VarDecl {
            value: Some(expr), ..
        } = &f.body[0]
        else {
            panic!()
        };
        // 1 + (2 * 3), not (1 + 2) * 3.
        let Expr::Binary("+", left, right) = expr else {
            panic!("expected +, got {expr:?}")
        };
        assert!(matches!(**left, Expr::Number(_)));
        assert!(matches!(**right, Expr::Binary("*", _, _)));
    }

    #[test]
    fn while_and_logic() {
        let src = "contract W { function f() public { while (a < 10 && !done) { a += 1; } } }";
        let unit = parse(src).unwrap();
        let f = unit.contracts[0].function("f").unwrap();
        assert!(matches!(
            &f.body[0],
            Stmt::While {
                cond: Expr::Binary("&&", _, _),
                ..
            }
        ));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("contract {").is_err());
        assert!(parse("contract A { function f() public { x = ; } }").is_err());
        assert!(parse("notacontract A {}").is_err());
        assert!(parse("contract A { uint x }").is_err()); // missing semicolon
    }
}
