//! Source renderer: AST → Solidity-subset text.
//!
//! `parse(print_source(unit))` reproduces `unit` exactly (property-tested
//! in the crate's transform tests), which is what makes the Fig. 4
//! transformation a source-to-source tool.

use crate::ast::{ContractDef, Expr, Function, SourceUnit, StateVar, Stmt};

/// Render a full source unit.
pub fn print_source(unit: &SourceUnit) -> String {
    let mut out = String::new();
    for (i, contract) in unit.contracts.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_contract(contract, &mut out);
    }
    out
}

fn print_contract(contract: &ContractDef, out: &mut String) {
    out.push_str(&format!("contract {} {{\n", contract.name));
    for var in &contract.state_vars {
        print_state_var(var, out);
    }
    if !contract.state_vars.is_empty() && !contract.functions.is_empty() {
        out.push('\n');
    }
    for (i, function) in contract.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(function, out);
    }
    out.push_str("}\n");
}

fn print_state_var(var: &StateVar, out: &mut String) {
    out.push_str(&format!("    {} {}", var.ty, var.name));
    if let Some(value) = &var.value {
        out.push_str(&format!(" = {}", print_expr(value)));
    }
    out.push_str(";\n");
}

fn print_function(function: &Function, out: &mut String) {
    let params: Vec<String> = function
        .params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect();
    let name = if function.is_fallback {
        String::new()
    } else {
        format!(" {}", function.name)
    };
    out.push_str(&format!("    function{}({})", name, params.join(", ")));
    if !function.is_fallback {
        out.push_str(&format!(" {}", function.visibility.keyword()));
    }
    if function.payable {
        out.push_str(" payable");
    }
    if let Some(ret) = &function.returns {
        out.push_str(&format!(" returns ({ret})"));
    }
    out.push_str(" {\n");
    for stmt in &function.body {
        print_stmt(stmt, 2, out);
    }
    out.push_str("    }\n");
}

fn indent(level: usize) -> String {
    "    ".repeat(level)
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    let pad = indent(level);
    match stmt {
        Stmt::VarDecl { ty, name, value } => {
            out.push_str(&format!("{pad}{ty} {name}"));
            if let Some(v) = value {
                out.push_str(&format!(" = {}", print_expr(v)));
            }
            out.push_str(";\n");
        }
        Stmt::Assign { target, op, value } => {
            out.push_str(&format!(
                "{pad}{} {op} {};\n",
                print_expr(target),
                print_expr(value)
            ));
        }
        Stmt::Expr(expr) => {
            out.push_str(&format!("{pad}{};\n", print_expr(expr)));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str(&format!("{pad}if ({}) {{\n", print_expr(cond)));
            for s in then_branch {
                print_stmt(s, level + 1, out);
            }
            out.push_str(&format!("{pad}}}"));
            if let Some(else_branch) = else_branch {
                out.push_str(" else {\n");
                for s in else_branch {
                    print_stmt(s, level + 1, out);
                }
                out.push_str(&format!("{pad}}}"));
            }
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            out.push_str(&format!("{pad}while ({}) {{\n", print_expr(cond)));
            for s in body {
                print_stmt(s, level + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        Stmt::Return(None) => out.push_str(&format!("{pad}return;\n")),
        Stmt::Return(Some(expr)) => out.push_str(&format!("{pad}return {};\n", print_expr(expr))),
        Stmt::Throw => out.push_str(&format!("{pad}throw;\n")),
    }
}

/// Render one expression.
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Ident(name) => name.clone(),
        Expr::Number(text) => text.clone(),
        Expr::Str(text) => format!("\"{text}\""),
        Expr::Bool(b) => b.to_string(),
        Expr::Member(base, member) => format!("{}.{member}", print_expr(base)),
        Expr::Index(base, index) => format!("{}[{}]", print_expr(base), print_expr(index)),
        Expr::Call(callee, args) => {
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            format!("{}({})", print_expr(callee), rendered.join(", "))
        }
        Expr::Unary(op, inner) => format!("{op}{}", wrap_if_binary(inner)),
        Expr::Binary(op, left, right) => {
            format!("{} {op} {}", wrap_if_binary(left), wrap_if_binary(right))
        }
    }
}

fn wrap_if_binary(expr: &Expr) -> String {
    match expr {
        Expr::Binary(..) => format!("({})", print_expr(expr)),
        _ => print_expr(expr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trip_bank() {
        let src = r#"
            contract Bank {
                mapping(address=>uint) balance;
                function addBalance() public payable {
                    balance[msg.sender] += msg.value;
                }
                function withdraw() public {
                    uint amount = balance[msg.sender];
                    if (msg.sender.call.value(amount)() == false) { throw; }
                    balance[msg.sender] = 0;
                }
            }
        "#;
        let unit = parse(src).unwrap();
        let printed = print_source(&unit);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed, unit, "printed:\n{printed}");
    }

    #[test]
    fn binary_nesting_parenthesized() {
        // (1 + 2) * 3 must not print as 1 + 2 * 3.
        let unit = parse("contract P { function f() public { uint x = (1 + 2) * 3; } }").unwrap();
        let printed = print_source(&unit);
        assert!(printed.contains("(1 + 2) * 3"), "{printed}");
        assert_eq!(parse(&printed).unwrap(), unit);
    }

    #[test]
    fn fallback_prints_anonymously() {
        let unit = parse("contract F { function() payable { } }").unwrap();
        let printed = print_source(&unit);
        assert!(printed.contains("function() payable"), "{printed}");
        assert_eq!(parse(&printed).unwrap(), unit);
    }
}
