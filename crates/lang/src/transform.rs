//! The Fig. 4 automated-adoption transformation: legacy contract →
//! SMACS-enabled contract.
//!
//! For every externally callable method (`public` / `external`):
//!
//! 1. a `bytes token` parameter is appended to the signature, and
//! 2. `assert(verify(token));` is inserted before the original body.
//!
//! A public method that is *also called internally* is split (as Fig. 4
//! shows for `h`): the original body moves to a `private` sibling named
//! `_name`, the public wrapper verifies and delegates, and every internal
//! call site is rewired to `_name` — so internal calls never re-verify,
//! while every externally reachable entry point does.
//!
//! Constructors (functions named after their contract, Solidity v0.4
//! style) and fallback functions are left untouched: the former run once
//! at deployment, the latter carry no calldata to hold a token.

use std::collections::HashSet;

use crate::ast::{ContractDef, Expr, Function, Param, SourceUnit, Stmt, TypeName, Visibility};

/// Name of the injected token parameter.
pub const TOKEN_PARAM: &str = "token";

/// Transform every contract in the unit.
///
/// ```
/// use smacs_lang::{parse, print_source, smacs_enable};
///
/// let legacy = "contract C { function f() external { x = 1; } }";
/// let enabled = smacs_enable(&parse(legacy).unwrap());
/// let source = print_source(&enabled);
/// assert!(source.contains("function f(bytes token) external"));
/// assert!(source.contains("assert(verify(token))"));
/// ```
pub fn smacs_enable(unit: &SourceUnit) -> SourceUnit {
    SourceUnit {
        contracts: unit.contracts.iter().map(transform_contract).collect(),
    }
}

fn transform_contract(contract: &ContractDef) -> ContractDef {
    let internally_called = internally_called_names(contract);
    let mut functions = Vec::new();
    for function in &contract.functions {
        if is_exempt(function, contract) {
            functions.push(function.clone());
            continue;
        }
        if !function.visibility.is_externally_callable() {
            // internal/private bodies keep their logic, but their call
            // sites into split methods must be rewired too.
            let mut kept = function.clone();
            kept.body = rewrite_calls(&kept.body, &split_names(contract, &internally_called));
            functions.push(kept);
            continue;
        }
        let needs_split = internally_called.contains(&function.name);
        if needs_split {
            // Private body half: original logic under `_name`, with its own
            // internal call sites rewired.
            let private_name = format!("_{}", function.name);
            let mut private_half = function.clone();
            private_half.name = private_name.clone();
            private_half.visibility = Visibility::Private;
            private_half.body =
                rewrite_calls(&function.body, &split_names(contract, &internally_called));

            // Public wrapper: verify, then delegate.
            let mut wrapper = function.clone();
            wrapper.params.push(token_param());
            let delegate_args: Vec<Expr> = function
                .params
                .iter()
                .map(|p| Expr::ident(p.name.clone()))
                .collect();
            wrapper.body = vec![
                verify_stmt(),
                Stmt::Expr(Expr::call(private_name, delegate_args)),
            ];
            functions.push(wrapper);
            functions.push(private_half);
        } else {
            let mut guarded = function.clone();
            guarded.params.push(token_param());
            let mut body = vec![verify_stmt()];
            body.extend(rewrite_calls(
                &function.body,
                &split_names(contract, &internally_called),
            ));
            guarded.body = body;
            functions.push(guarded);
        }
    }
    ContractDef {
        name: contract.name.clone(),
        state_vars: contract.state_vars.clone(),
        functions,
    }
}

fn is_exempt(function: &Function, contract: &ContractDef) -> bool {
    function.is_fallback || function.name == contract.name || function.name == "constructor"
}

fn token_param() -> Param {
    Param {
        ty: TypeName::Elementary("bytes".into()),
        name: TOKEN_PARAM.into(),
    }
}

fn verify_stmt() -> Stmt {
    Stmt::Expr(Expr::call(
        "assert",
        vec![Expr::call("verify", vec![Expr::ident(TOKEN_PARAM)])],
    ))
}

/// Names of methods that appear as direct internal calls (`name(...)`)
/// anywhere in the contract.
fn internally_called_names(contract: &ContractDef) -> HashSet<String> {
    let mut called = HashSet::new();
    for function in &contract.functions {
        collect_called(&function.body, &mut called);
    }
    // Only names that actually are methods of this contract matter.
    called.retain(|name| contract.function(name).is_some());
    called
}

/// The subset of internally called names that are public/external — the
/// ones the transformation splits (their call sites must be rewired to the
/// `_name` private half).
fn split_names(contract: &ContractDef, internally_called: &HashSet<String>) -> HashSet<String> {
    internally_called
        .iter()
        .filter(|name| {
            contract
                .function(name)
                .map(|f| f.visibility.is_externally_callable() && !is_exempt(f, contract))
                .unwrap_or(false)
        })
        .cloned()
        .collect()
}

fn collect_called(body: &[Stmt], out: &mut HashSet<String>) {
    for stmt in body {
        match stmt {
            Stmt::VarDecl { value, .. } => {
                if let Some(v) = value {
                    collect_called_expr(v, out);
                }
            }
            Stmt::Assign { target, value, .. } => {
                collect_called_expr(target, out);
                collect_called_expr(value, out);
            }
            Stmt::Expr(e) => collect_called_expr(e, out),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                collect_called_expr(cond, out);
                collect_called(then_branch, out);
                if let Some(else_branch) = else_branch {
                    collect_called(else_branch, out);
                }
            }
            Stmt::While { cond, body } => {
                collect_called_expr(cond, out);
                collect_called(body, out);
            }
            Stmt::Return(Some(e)) => collect_called_expr(e, out),
            Stmt::Return(None) | Stmt::Throw => {}
        }
    }
}

fn collect_called_expr(expr: &Expr, out: &mut HashSet<String>) {
    match expr {
        Expr::Call(callee, args) => {
            if let Expr::Ident(name) = callee.as_ref() {
                out.insert(name.clone());
            }
            collect_called_expr(callee, out);
            for arg in args {
                collect_called_expr(arg, out);
            }
        }
        Expr::Member(base, _) => collect_called_expr(base, out),
        Expr::Index(base, index) => {
            collect_called_expr(base, out);
            collect_called_expr(index, out);
        }
        Expr::Unary(_, inner) => collect_called_expr(inner, out),
        Expr::Binary(_, left, right) => {
            collect_called_expr(left, out);
            collect_called_expr(right, out);
        }
        Expr::Ident(_) | Expr::Number(_) | Expr::Str(_) | Expr::Bool(_) => {}
    }
}

/// Rewrite direct calls `name(...)` → `_name(...)` for every split method.
fn rewrite_calls(body: &[Stmt], split: &HashSet<String>) -> Vec<Stmt> {
    body.iter().map(|s| rewrite_stmt(s, split)).collect()
}

fn rewrite_stmt(stmt: &Stmt, split: &HashSet<String>) -> Stmt {
    match stmt {
        Stmt::VarDecl { ty, name, value } => Stmt::VarDecl {
            ty: ty.clone(),
            name: name.clone(),
            value: value.as_ref().map(|v| rewrite_expr(v, split)),
        },
        Stmt::Assign { target, op, value } => Stmt::Assign {
            target: rewrite_expr(target, split),
            op,
            value: rewrite_expr(value, split),
        },
        Stmt::Expr(e) => Stmt::Expr(rewrite_expr(e, split)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: rewrite_expr(cond, split),
            then_branch: rewrite_calls(then_branch, split),
            else_branch: else_branch.as_ref().map(|b| rewrite_calls(b, split)),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: rewrite_expr(cond, split),
            body: rewrite_calls(body, split),
        },
        Stmt::Return(value) => Stmt::Return(value.as_ref().map(|v| rewrite_expr(v, split))),
        Stmt::Throw => Stmt::Throw,
    }
}

fn rewrite_expr(expr: &Expr, split: &HashSet<String>) -> Expr {
    match expr {
        Expr::Call(callee, args) => {
            let new_callee = match callee.as_ref() {
                Expr::Ident(name) if split.contains(name) => Expr::Ident(format!("_{name}")),
                other => rewrite_expr(other, split),
            };
            Expr::Call(
                Box::new(new_callee),
                args.iter().map(|a| rewrite_expr(a, split)).collect(),
            )
        }
        Expr::Member(base, member) => {
            Expr::Member(Box::new(rewrite_expr(base, split)), member.clone())
        }
        Expr::Index(base, index) => Expr::Index(
            Box::new(rewrite_expr(base, split)),
            Box::new(rewrite_expr(index, split)),
        ),
        Expr::Unary(op, inner) => Expr::Unary(op, Box::new(rewrite_expr(inner, split))),
        Expr::Binary(op, left, right) => Expr::Binary(
            op,
            Box::new(rewrite_expr(left, split)),
            Box::new(rewrite_expr(right, split)),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print_source;

    /// The Legacy contract of Fig. 4, in the subset's syntax.
    const LEGACY: &str = r#"
        contract Legacy {
            function f() external {
                h();
                g();
            }
            function h() public {
                g();
            }
            function g() private {
                done = true;
            }
        }
    "#;

    fn verified_first(function: &Function) -> bool {
        matches!(
            function.body.first(),
            Some(Stmt::Expr(Expr::Call(callee, _))) if matches!(callee.as_ref(), Expr::Ident(n) if n == "assert")
        )
    }

    #[test]
    fn fig4_transformation_shape() {
        let unit = parse(LEGACY).unwrap();
        let enabled = smacs_enable(&unit);
        let c = enabled.contract("Legacy").unwrap();

        // f(token) external: verify, then call _h() and g().
        let f = c.function("f").unwrap();
        assert_eq!(f.params.last().unwrap().name, TOKEN_PARAM);
        assert!(verified_first(f));
        let printed = print_source(&enabled);
        assert!(printed.contains("assert(verify(token))"), "{printed}");
        // f's internal call to h was rewired to _h.
        let f_src = &printed[printed.find("function f").unwrap()..];
        assert!(f_src.contains("_h()"), "{printed}");

        // h was split: public wrapper h(token) + private _h with the body.
        let h = c.function("h").unwrap();
        assert!(verified_first(h));
        assert_eq!(h.params.last().unwrap().name, TOKEN_PARAM);
        let h_private = c.function("_h").unwrap();
        assert_eq!(h_private.visibility, Visibility::Private);
        assert!(!verified_first(h_private));

        // g stays private and untouched.
        let g = c.function("g").unwrap();
        assert_eq!(g.visibility, Visibility::Private);
        assert!(!verified_first(g));
        assert!(g.params.is_empty());
    }

    #[test]
    fn transformed_source_reparses() {
        let unit = parse(LEGACY).unwrap();
        let enabled = smacs_enable(&unit);
        let printed = print_source(&enabled);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed, enabled, "printed:\n{printed}");
    }

    #[test]
    fn bank_transformation_guards_both_methods() {
        let src = r#"
            contract Bank {
                mapping(address=>uint) balance;
                function addBalance() public payable {
                    balance[msg.sender] += msg.value;
                }
                function withdraw() public {
                    uint amount = balance[msg.sender];
                    if (msg.sender.call.value(amount)() == false) { throw; }
                    balance[msg.sender] = 0;
                }
            }
        "#;
        let enabled = smacs_enable(&parse(src).unwrap());
        let bank = enabled.contract("Bank").unwrap();
        for name in ["addBalance", "withdraw"] {
            let f = bank.function(name).unwrap();
            assert!(verified_first(f), "{name} must verify first");
            assert_eq!(f.params.last().unwrap().name, TOKEN_PARAM);
        }
        // No splits: neither method is called internally.
        assert!(bank.function("_addBalance").is_none());
        assert!(bank.function("_withdraw").is_none());
        // Original behaviour preserved after the prologue.
        let withdraw = bank.function("withdraw").unwrap();
        assert_eq!(withdraw.body.len(), 4); // verify + 3 original statements
    }

    #[test]
    fn constructor_and_fallback_exempt() {
        let src = r#"
            contract Attacker {
                bool isAttack;
                function Attacker(address _bank) public {
                    isAttack = true;
                }
                function() payable {
                    isAttack = false;
                }
                function strike() public {
                    isAttack = true;
                }
            }
        "#;
        let enabled = smacs_enable(&parse(src).unwrap());
        let attacker = enabled.contract("Attacker").unwrap();
        // v0.4-style constructor untouched.
        let ctor = attacker.function("Attacker").unwrap();
        assert!(!verified_first(ctor));
        assert_eq!(ctor.params.len(), 1);
        // Fallback untouched.
        let fallback = attacker.functions.iter().find(|f| f.is_fallback).unwrap();
        assert!(!verified_first(fallback));
        // Regular public method guarded.
        assert!(verified_first(attacker.function("strike").unwrap()));
    }

    #[test]
    fn existing_params_are_preserved_in_split_delegation() {
        let src = r#"
            contract P {
                function setBoth(uint a, uint b) public {
                    x = a;
                    y = b;
                }
                function caller() public {
                    setBoth(1, 2);
                }
            }
        "#;
        let enabled = smacs_enable(&parse(src).unwrap());
        let c = enabled.contract("P").unwrap();
        // setBoth split because caller() invokes it internally.
        let wrapper = c.function("setBoth").unwrap();
        assert_eq!(wrapper.params.len(), 3); // a, b, token
        let Stmt::Expr(Expr::Call(_, args)) = &wrapper.body[1] else {
            panic!("wrapper must delegate");
        };
        assert_eq!(args.len(), 2); // forwards a and b, not the token
                                   // caller() rewired to the private half.
        let printed = print_source(&enabled);
        let caller_src = &printed[printed.find("function caller").unwrap()..];
        assert!(caller_src.contains("_setBoth(1, 2)"), "{printed}");
    }

    #[test]
    fn idempotent_on_already_internal_contracts() {
        let src = "contract Q { function helper() internal { x = 1; } }";
        let unit = parse(src).unwrap();
        assert_eq!(smacs_enable(&unit), unit);
    }
}
