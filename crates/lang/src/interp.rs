//! An interpreter for the Solidity subset: contracts written in
//! Solidity-lite source run directly on the chain simulator.
//!
//! [`InterpretedContract`] implements [`smacs_chain::Contract`], so an
//! interpreted contract deploys, dispatches by real 4-byte selectors,
//! reads/writes real (gas-charged) storage, makes real message calls —
//! including the `addr.call.value(x)()` low-level pattern the Fig. 7
//! re-entrancy attack rides on — and can be wrapped in the SMACS shield
//! like any native contract. This also lets a Hydra head be *literally*
//! written in a different language (§V-A).
//!
//! Storage layout: state variable `i` (declaration order) lives in slot
//! `i`; mapping entries at `keccak256(key ‖ slot)`, as Solidity lays them
//! out.

use smacs_chain::abi::{self, AbiType, AbiValue, Selector};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Address, Bytes, H256, U256};
use std::collections::HashMap;

use crate::ast::{ContractDef, Expr, Function, Stmt, TypeName};

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Any `uint*` (EVM-style 256-bit wrapping arithmetic).
    Uint(U256),
    /// `bool`.
    Bool(bool),
    /// `address`.
    Address(Address),
    /// `string`.
    Str(String),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Uint(_) => "uint256",
            Value::Bool(_) => "bool",
            Value::Address(_) => "address",
            Value::Str(_) => "string",
        }
    }

    fn as_uint(&self) -> Result<U256, VmError> {
        match self {
            Value::Uint(v) => Ok(*v),
            other => Err(VmError::Revert(format!(
                "interp: expected uint, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_bool(&self) -> Result<bool, VmError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(VmError::Revert(format!(
                "interp: expected bool, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_address(&self) -> Result<Address, VmError> {
        match self {
            Value::Address(a) => Ok(*a),
            other => Err(VmError::Revert(format!(
                "interp: expected address, got {}",
                other.type_name()
            ))),
        }
    }

    fn to_abi(&self) -> AbiValue {
        match self {
            Value::Uint(v) => AbiValue::Uint(*v),
            Value::Bool(b) => AbiValue::Bool(*b),
            Value::Address(a) => AbiValue::Address(*a),
            Value::Str(s) => AbiValue::String(s.clone()),
        }
    }

    fn from_abi(value: &AbiValue) -> Value {
        match value {
            AbiValue::Uint(v) => Value::Uint(*v),
            AbiValue::Bool(b) => Value::Bool(*b),
            AbiValue::Address(a) => Value::Address(*a),
            AbiValue::String(s) => Value::Str(s.clone()),
            AbiValue::Bytes(b) => Value::Str(String::from_utf8_lossy(b).into_owned()),
        }
    }

    /// Default value for a declared type.
    fn default_for(ty: &TypeName) -> Value {
        match canonical_type(ty).as_str() {
            "bool" => Value::Bool(false),
            "address" => Value::Address(Address::ZERO),
            "string" => Value::Str(String::new()),
            _ => Value::Uint(U256::ZERO),
        }
    }

    fn to_word(&self) -> H256 {
        match self {
            Value::Uint(v) => H256::from_u256(*v),
            Value::Bool(b) => H256::from_u256(if *b { U256::ONE } else { U256::ZERO }),
            Value::Address(a) => {
                let mut bytes = [0u8; 32];
                bytes[12..].copy_from_slice(a.as_bytes());
                H256(bytes)
            }
            Value::Str(_) => H256::ZERO, // strings not storable in the subset
        }
    }

    fn from_word(word: H256, ty: &TypeName) -> Value {
        match canonical_type(ty).as_str() {
            "bool" => Value::Bool(!word.is_zero()),
            "address" => {
                Value::Address(Address::from_slice(&word.0[12..]).expect("20-byte suffix"))
            }
            _ => Value::Uint(word.to_u256()),
        }
    }
}

/// Canonical Solidity type name (`uint` → `uint256`) for signature
/// construction.
pub fn canonical_type(ty: &TypeName) -> String {
    match ty {
        TypeName::Elementary(name) => match name.as_str() {
            "uint" => "uint256".to_string(),
            "int" => "int256".to_string(),
            other => other.to_string(),
        },
        TypeName::Mapping(..) => "mapping".to_string(),
    }
}

/// The canonical selector of a function definition.
pub fn function_selector(function: &Function) -> Selector {
    let params: Vec<String> = function
        .params
        .iter()
        .map(|p| canonical_type(&p.ty))
        .collect();
    abi::selector(&format!("{}({})", function.name, params.join(",")))
}

fn abi_type_for(ty: &TypeName) -> AbiType {
    match canonical_type(ty).as_str() {
        "bool" => AbiType::Bool,
        "address" => AbiType::Address,
        "string" => AbiType::String,
        "bytes" => AbiType::Bytes,
        _ => AbiType::Uint,
    }
}

enum Flow {
    Normal,
    Return(Option<Value>),
}

/// A deployed, interpreted Solidity-lite contract.
pub struct InterpretedContract {
    def: ContractDef,
    ctor_args: Vec<Value>,
    leaked_name: &'static str,
    /// state variable name → (slot, declared type)
    layout: HashMap<String, (u64, TypeName)>,
}

impl InterpretedContract {
    /// Interpret `def`, with constructor arguments for the v0.4-style
    /// constructor (the function named after the contract), if any.
    pub fn new(def: ContractDef, ctor_args: Vec<Value>) -> Self {
        let layout = def
            .state_vars
            .iter()
            .enumerate()
            .map(|(i, var)| (var.name.clone(), (i as u64, var.ty.clone())))
            .collect();
        let leaked_name: &'static str = Box::leak(def.name.clone().into_boxed_str());
        InterpretedContract {
            def,
            ctor_args,
            leaked_name,
            layout,
        }
    }

    /// Parse `src` and interpret the contract named `name`.
    pub fn from_source(src: &str, name: &str, ctor_args: Vec<Value>) -> Result<Self, String> {
        let unit = crate::parser::parse(src).map_err(|e| e.to_string())?;
        let def = unit
            .contract(name)
            .ok_or_else(|| format!("no contract {name} in source"))?
            .clone();
        Ok(Self::new(def, ctor_args))
    }

    fn dispatch_target(&self, selector: Selector) -> Option<&Function> {
        self.def
            .functions
            .iter()
            .filter(|f| !f.is_fallback && f.name != self.def.name)
            .find(|f| function_selector(f) == selector)
    }

    fn run_function(
        &self,
        ctx: &mut CallContext<'_, '_>,
        function: &Function,
        args: Vec<Value>,
    ) -> Result<Option<Value>, VmError> {
        if args.len() != function.params.len() {
            return Err(VmError::Revert(format!(
                "interp: {} expects {} args, got {}",
                function.name,
                function.params.len(),
                args.len()
            )));
        }
        let mut env = Env {
            contract: self,
            locals: HashMap::new(),
        };
        for (param, value) in function.params.iter().zip(args) {
            env.locals.insert(param.name.clone(), value);
        }
        match env.exec_block(ctx, &function.body)? {
            Flow::Return(value) => Ok(value),
            Flow::Normal => Ok(None),
        }
    }
}

impl Contract for InterpretedContract {
    fn name(&self) -> &'static str {
        self.leaked_name
    }

    fn code_len(&self) -> usize {
        // Interpreted code images scale with the AST's printed size.
        crate::printer::print_source(&crate::ast::SourceUnit {
            contracts: vec![self.def.clone()],
        })
        .len()
    }

    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        // Initialize declared state variables.
        for var in &self.def.state_vars {
            if let Some(init) = &var.value {
                let mut env = Env {
                    contract: self,
                    locals: HashMap::new(),
                };
                let value = env.eval(ctx, init)?;
                let (slot, _) = self.layout[&var.name];
                ctx.sstore(H256::from_u256(U256::from_u64(slot)), value.to_word())?;
            }
        }
        // Run the v0.4-style constructor, if present.
        if let Some(ctor) = self.def.function(&self.def.name) {
            self.run_function(ctx, ctor, self.ctor_args.clone())?;
        }
        Ok(())
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let selector = ctx.msg_sig().expect("execute implies selector");
        let Some(function) = self.dispatch_target(selector) else {
            return Err(VmError::Revert(format!(
                "interp: no method with selector {selector}"
            )));
        };
        let types: Vec<AbiType> = function
            .params
            .iter()
            .map(|p| abi_type_for(&p.ty))
            .collect();
        let args = ctx
            .decode_args(&types)?
            .iter()
            .map(Value::from_abi)
            .collect();
        let function = function.clone();
        match self.run_function(ctx, &function, args)? {
            Some(value) => Ok(Bytes::from(value.to_word().0)),
            None => Ok(Bytes::new()),
        }
    }

    fn fallback(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        let fallback = self.def.functions.iter().find(|f| f.is_fallback).cloned();
        if let Some(function) = fallback {
            self.run_function(ctx, &function, Vec::new())?;
        }
        Ok(())
    }
}

struct Env<'c> {
    contract: &'c InterpretedContract,
    locals: HashMap<String, Value>,
}

impl<'c> Env<'c> {
    fn exec_block(
        &mut self,
        ctx: &mut CallContext<'_, '_>,
        body: &[Stmt],
    ) -> Result<Flow, VmError> {
        for stmt in body {
            match self.exec_stmt(ctx, stmt)? {
                Flow::Normal => {}
                flow @ Flow::Return(_) => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, ctx: &mut CallContext<'_, '_>, stmt: &Stmt) -> Result<Flow, VmError> {
        ctx.charge_compute(3)?; // per-statement interpreter overhead
        match stmt {
            Stmt::VarDecl { ty, name, value } => {
                let initial = match value {
                    Some(expr) => self.eval(ctx, expr)?,
                    None => Value::default_for(ty),
                };
                self.locals.insert(name.clone(), initial);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, op, value } => {
                let rhs = self.eval(ctx, value)?;
                let new = match *op {
                    "=" => rhs,
                    "+=" => {
                        let current = self.read_target(ctx, target)?;
                        Value::Uint(current.as_uint()?.wrapping_add(rhs.as_uint()?))
                    }
                    "-=" => {
                        let current = self.read_target(ctx, target)?;
                        Value::Uint(current.as_uint()?.wrapping_sub(rhs.as_uint()?))
                    }
                    other => return Err(VmError::Revert(format!("interp: bad op {other}"))),
                };
                self.write_target(ctx, target, new)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.eval(ctx, expr)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(ctx, cond)?.as_bool()? {
                    self.exec_block(ctx, then_branch)
                } else if let Some(else_branch) = else_branch {
                    self.exec_block(ctx, else_branch)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(ctx, cond)?.as_bool()? {
                    match self.exec_block(ctx, body)? {
                        Flow::Normal => {}
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value) => {
                let value = match value {
                    Some(expr) => Some(self.eval(ctx, expr)?),
                    None => None,
                };
                Ok(Flow::Return(value))
            }
            Stmt::Throw => Err(VmError::Revert("interp: throw".into())),
        }
    }

    fn state_slot(
        &mut self,
        ctx: &mut CallContext<'_, '_>,
        name: &str,
        key: Option<&Value>,
    ) -> Result<(H256, TypeName), VmError> {
        let (slot, ty) = self
            .contract
            .layout
            .get(name)
            .cloned()
            .ok_or_else(|| VmError::Revert(format!("interp: unknown state var {name}")))?;
        match (&ty, key) {
            (TypeName::Mapping(_, value_ty), Some(key)) => {
                let key_word = key.to_word();
                let slot = ctx.mapping_slot(slot, key_word.as_bytes())?;
                Ok((slot, (**value_ty).clone()))
            }
            (_, None) => Ok((H256::from_u256(U256::from_u64(slot)), ty)),
            (_, Some(_)) => Err(VmError::Revert(format!("interp: {name} is not a mapping"))),
        }
    }

    fn read_target(
        &mut self,
        ctx: &mut CallContext<'_, '_>,
        target: &Expr,
    ) -> Result<Value, VmError> {
        self.eval(ctx, target)
    }

    fn write_target(
        &mut self,
        ctx: &mut CallContext<'_, '_>,
        target: &Expr,
        value: Value,
    ) -> Result<(), VmError> {
        match target {
            Expr::Ident(name) => {
                if self.locals.contains_key(name) {
                    self.locals.insert(name.clone(), value);
                    Ok(())
                } else {
                    let (slot, _) = self.state_slot(ctx, name, None)?;
                    ctx.sstore(slot, value.to_word())
                }
            }
            Expr::Index(base, key) => {
                let Expr::Ident(name) = base.as_ref() else {
                    return Err(VmError::Revert("interp: bad index target".into()));
                };
                let key = self.eval(ctx, key)?;
                let (slot, _) = self.state_slot(ctx, name, Some(&key))?;
                ctx.sstore(slot, value.to_word())
            }
            other => Err(VmError::Revert(format!(
                "interp: unsupported assignment target {other:?}"
            ))),
        }
    }

    fn eval(&mut self, ctx: &mut CallContext<'_, '_>, expr: &Expr) -> Result<Value, VmError> {
        ctx.charge_compute(1)?; // per-node interpreter overhead
        match expr {
            Expr::Number(text) => {
                let value = if let Some(hex) = text.strip_prefix("0x") {
                    U256::from_hex_str(hex)
                } else {
                    U256::from_dec_str(text)
                }
                .ok_or_else(|| VmError::Revert(format!("interp: bad number {text}")))?;
                Ok(Value::Uint(value))
            }
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Ident(name) => {
                if let Some(value) = self.locals.get(name) {
                    return Ok(value.clone());
                }
                if self.contract.layout.contains_key(name) {
                    let (slot, ty) = self.state_slot(ctx, name, None)?;
                    let word = ctx.sload(slot)?;
                    return Ok(Value::from_word(word, &ty));
                }
                Err(VmError::Revert(format!(
                    "interp: unknown identifier {name}"
                )))
            }
            Expr::Member(base, member) => self.eval_member(ctx, base, member),
            Expr::Index(base, key) => {
                let Expr::Ident(name) = base.as_ref() else {
                    return Err(VmError::Revert("interp: bad index base".into()));
                };
                let key = self.eval(ctx, key)?;
                let (slot, ty) = self.state_slot(ctx, name, Some(&key))?;
                let word = ctx.sload(slot)?;
                Ok(Value::from_word(word, &ty))
            }
            Expr::Unary(op, inner) => {
                let value = self.eval(ctx, inner)?;
                match *op {
                    "!" => Ok(Value::Bool(!value.as_bool()?)),
                    "-" => Ok(Value::Uint(U256::ZERO.wrapping_sub(value.as_uint()?))),
                    other => Err(VmError::Revert(format!("interp: bad unary {other}"))),
                }
            }
            Expr::Binary(op, left, right) => {
                // Short-circuit logic first.
                if *op == "&&" {
                    return Ok(Value::Bool(
                        self.eval(ctx, left)?.as_bool()? && self.eval(ctx, right)?.as_bool()?,
                    ));
                }
                if *op == "||" {
                    return Ok(Value::Bool(
                        self.eval(ctx, left)?.as_bool()? || self.eval(ctx, right)?.as_bool()?,
                    ));
                }
                let lhs = self.eval(ctx, left)?;
                let rhs = self.eval(ctx, right)?;
                match *op {
                    "==" => Ok(Value::Bool(lhs == rhs)),
                    "!=" => Ok(Value::Bool(lhs != rhs)),
                    "<" => Ok(Value::Bool(lhs.as_uint()? < rhs.as_uint()?)),
                    "<=" => Ok(Value::Bool(lhs.as_uint()? <= rhs.as_uint()?)),
                    ">" => Ok(Value::Bool(lhs.as_uint()? > rhs.as_uint()?)),
                    ">=" => Ok(Value::Bool(lhs.as_uint()? >= rhs.as_uint()?)),
                    "+" => Ok(Value::Uint(lhs.as_uint()?.wrapping_add(rhs.as_uint()?))),
                    "-" => Ok(Value::Uint(lhs.as_uint()?.wrapping_sub(rhs.as_uint()?))),
                    "*" => Ok(Value::Uint(lhs.as_uint()?.wrapping_mul(rhs.as_uint()?))),
                    "/" => Ok(Value::Uint(lhs.as_uint()?.div_evm(rhs.as_uint()?))),
                    "%" => Ok(Value::Uint(lhs.as_uint()?.rem_evm(rhs.as_uint()?))),
                    other => Err(VmError::Revert(format!("interp: bad binary {other}"))),
                }
            }
            Expr::Call(callee, args) => self.eval_call(ctx, callee, args),
        }
    }

    fn eval_member(
        &mut self,
        ctx: &mut CallContext<'_, '_>,
        base: &Expr,
        member: &str,
    ) -> Result<Value, VmError> {
        // The Solidity globals (§II-C).
        if let Expr::Ident(name) = base {
            match (name.as_str(), member) {
                ("msg", "sender") => return Ok(Value::Address(ctx.msg_sender())),
                ("msg", "value") => return Ok(Value::Uint(U256::from_u128(ctx.msg_value()))),
                ("tx", "origin") => return Ok(Value::Address(ctx.tx_origin())),
                ("block", "timestamp") => return Ok(Value::Uint(U256::from_u64(ctx.now()))),
                ("block", "number") => return Ok(Value::Uint(U256::from_u64(ctx.block().number))),
                _ => {}
            }
        }
        // `addr.balance`.
        if member == "balance" {
            let addr = self.eval(ctx, base)?.as_address()?;
            return Ok(Value::Uint(U256::from_u128(ctx.balance_of(addr)?)));
        }
        Err(VmError::Revert(format!("interp: unknown member .{member}")))
    }

    fn eval_call(
        &mut self,
        ctx: &mut CallContext<'_, '_>,
        callee: &Expr,
        args: &[Expr],
    ) -> Result<Value, VmError> {
        // Builtins and internal calls by bare name.
        if let Expr::Ident(name) = callee {
            match name.as_str() {
                "require" | "assert" => {
                    let cond = self.eval(ctx, &args[0])?.as_bool()?;
                    return if cond {
                        Ok(Value::Bool(true))
                    } else {
                        Err(VmError::Revert(format!("interp: {name} failed")))
                    };
                }
                _ => {}
            }
            // Internal method call.
            if let Some(function) = self.contract.def.function(name) {
                let function = function.clone();
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval(ctx, arg)?);
                }
                let result = self.contract.run_function(ctx, &function, values)?;
                return Ok(result.unwrap_or(Value::Bool(true)));
            }
        }

        // Low-level value call: `addr.call.value(v)(…)` — the calldata-less
        // form triggers the recipient's fallback; either form evaluates to
        // a success bool without propagating the callee's revert, exactly
        // like Solidity's low-level `.call`.
        if let Expr::Call(inner_callee, inner_args) = callee {
            if let Expr::Member(call_base, value_word) = inner_callee.as_ref() {
                if value_word == "value" {
                    if let Expr::Member(addr_expr, call_word) = call_base.as_ref() {
                        if call_word == "call" {
                            let target = self.eval(ctx, addr_expr)?.as_address()?;
                            let amount = self.eval(ctx, &inner_args[0])?.as_uint()?;
                            let wei = amount.to_u128().ok_or_else(|| {
                                VmError::Revert("interp: transfer amount too large".into())
                            })?;
                            return Ok(self.low_level_call(ctx, target, wei, Vec::new()));
                        }
                    }
                }
            }
        }

        // `addr.call.value(v).method(args…)` — value call with calldata.
        if let Expr::Member(value_call, method) = callee {
            if let Expr::Call(inner_callee, inner_args) = value_call.as_ref() {
                if let Expr::Member(call_base, value_word) = inner_callee.as_ref() {
                    if value_word == "value" {
                        if let Expr::Member(addr_expr, call_word) = call_base.as_ref() {
                            if call_word == "call" {
                                let target = self.eval(ctx, addr_expr)?.as_address()?;
                                let amount = self.eval(ctx, &inner_args[0])?.as_uint()?;
                                let wei = amount.to_u128().ok_or_else(|| {
                                    VmError::Revert("interp: transfer amount too large".into())
                                })?;
                                let calldata = self.build_external_calldata(ctx, method, args)?;
                                return Ok(self.low_level_call(ctx, target, wei, calldata));
                            }
                        }
                    }
                }
            }
            // High-level external call: `addr.method(args…)`. Reverts
            // propagate, the decoded return value (or true) comes back.
            let base = callee_base_address(callee)?.clone();
            let target = self.eval(ctx, &base)?.as_address()?;
            let calldata = self.build_external_calldata(ctx, method, args)?;
            let ret = ctx.call(target, 0, calldata)?;
            return Ok(decode_return(&ret));
        }

        Err(VmError::Revert(format!(
            "interp: unsupported call shape {callee:?}"
        )))
    }

    fn build_external_calldata(
        &mut self,
        ctx: &mut CallContext<'_, '_>,
        method: &str,
        args: &[Expr],
    ) -> Result<Vec<u8>, VmError> {
        let mut values = Vec::with_capacity(args.len());
        for arg in args {
            values.push(self.eval(ctx, arg)?);
        }
        let types: Vec<&str> = values.iter().map(|v| v.type_name()).collect();
        let signature = format!("{method}({})", types.join(","));
        let abi_args: Vec<AbiValue> = values.iter().map(|v| v.to_abi()).collect();
        Ok(abi::encode_call(&signature, &abi_args))
    }

    fn low_level_call(
        &mut self,
        ctx: &mut CallContext<'_, '_>,
        target: Address,
        wei: u128,
        calldata: Vec<u8>,
    ) -> Value {
        match ctx.call(target, wei, calldata) {
            Ok(_) => Value::Bool(true),
            // Low-level calls swallow callee reverts (Solidity semantics);
            // out-of-gas still ends the transaction via the shared meter.
            Err(_) => Value::Bool(false),
        }
    }
}

// Helper: for `addr.method(args)`, the callee expression is
// Member(addr_expr, method); return the address sub-expression.
fn callee_base_address(callee: &Expr) -> Result<&Expr, VmError> {
    match callee {
        Expr::Member(base, _) => Ok(base),
        other => Err(VmError::Revert(format!("interp: bad call base {other:?}"))),
    }
}

fn decode_return(ret: &[u8]) -> Value {
    if ret.len() == 32 {
        Value::Uint(U256::from_be_slice(ret).expect("32 bytes"))
    } else {
        Value::Bool(true)
    }
}
