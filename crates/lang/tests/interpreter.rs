//! The interpreter end to end: Solidity-lite contracts deployed on the
//! chain simulator, culminating in the Fig. 7 re-entrancy attack executed
//! from the paper's *actual Solidity source* (modulo the subset's brace
//! style), and a shielded interpreted contract.

use smacs_chain::abi::{self, AbiValue};
use smacs_chain::Chain;
use smacs_lang::interp::Value;
use smacs_lang::InterpretedContract;
use smacs_primitives::{Address, U256};
use std::sync::Arc;

/// Fig. 7's Bank, verbatim in the subset.
const BANK_SRC: &str = r#"
    contract Bank {
        mapping(address=>uint) balance;
        function addBalance() public payable {
            balance[msg.sender] += msg.value;
        }
        function withdraw() public {
            uint amount = balance[msg.sender];
            if (msg.sender.call.value(amount)() == false) { throw; }
            balance[msg.sender] = 0;
        }
        function balanceOf(address who) public view returns (uint) {
            return balance[who];
        }
    }
"#;

/// Fig. 7's Attacker (constructor takes the bank address and the attack
/// flag, exactly as the paper writes it).
const ATTACKER_SRC: &str = r#"
    contract Attacker {
        bool isAttack;
        address bank;
        function Attacker(address _bank, bool _isAttack) public {
            bank = _bank;
            isAttack = _isAttack;
        }
        function() payable {
            if (isAttack == true) {
                isAttack = false;
                bank.withdraw();
            }
        }
        function deposit() public payable {
            bank.call.value(2).addBalance();
        }
        function strike() public {
            bank.withdraw();
        }
    }
"#;

fn deploy_bank(chain: &mut Chain, owner: &smacs_crypto::Keypair) -> Address {
    let bank = InterpretedContract::from_source(BANK_SRC, "Bank", vec![]).unwrap();
    let (deployed, receipt) = chain.deploy(owner, Arc::new(bank)).unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    deployed.address
}

#[test]
fn interpreted_bank_deposit_and_withdraw() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(20));
    let user = chain.funded_keypair(2, 10u128.pow(20));
    let bank = deploy_bank(&mut chain, &owner);

    // Deposit.
    let r = chain
        .call_contract(&user, bank, 400, abi::encode_call("addBalance()", &[]))
        .unwrap();
    assert!(r.status.is_success(), "{:?}", r.status);
    assert_eq!(chain.state().balance(bank), 400);

    // balanceOf view.
    let (result, _, _, _) = chain.dry_run(
        user.address(),
        bank,
        0,
        abi::encode_call("balanceOf(address)", &[AbiValue::Address(user.address())]),
    );
    assert_eq!(
        U256::from_be_slice(&result.unwrap()).unwrap(),
        U256::from_u64(400)
    );

    // Withdraw pays back in full.
    let before = chain.state().balance(user.address());
    let r = chain
        .call_contract(&user, bank, 0, abi::encode_call("withdraw()", &[]))
        .unwrap();
    assert!(r.status.is_success(), "{:?}", r.status);
    assert_eq!(chain.state().balance(bank), 0);
    let gas_cost = r.gas_used as u128 * 1_000_000_000;
    assert_eq!(
        chain.state().balance(user.address()),
        before + 400 - gas_cost
    );
}

/// The paper's Fig. 7 attack, interpreted from source: the attacker's
/// fallback re-enters `withdraw()` and drains the victim's deposit.
#[test]
fn fig7_attack_runs_from_source() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(20));
    let victim = chain.funded_keypair(2, 10u128.pow(20));
    let attacker_eoa = chain.funded_keypair(3, 10u128.pow(20));
    let bank = deploy_bank(&mut chain, &owner);

    // Victim deposits 2 wei (the paper's example scale).
    chain
        .call_contract(&victim, bank, 2, abi::encode_call("addBalance()", &[]))
        .unwrap();

    // Attacker(bank, true) — real constructor arguments.
    let attacker = InterpretedContract::from_source(
        ATTACKER_SRC,
        "Attacker",
        vec![Value::Address(bank), Value::Bool(true)],
    )
    .unwrap();
    let (attacker, receipt) = chain.deploy(&attacker_eoa, Arc::new(attacker)).unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    chain.fund_account(attacker.address, 10);

    // deposit() sends 2 wei into the bank via `bank.call.value(2).addBalance()`.
    let r = chain
        .call_contract(
            &attacker_eoa,
            attacker.address,
            2,
            abi::encode_call("deposit()", &[]),
        )
        .unwrap();
    assert!(r.status.is_success(), "{:?}", r.status);
    assert_eq!(chain.state().balance(bank), 4);

    // strike(): withdraw → fallback → withdraw again. All 4 wei leave.
    let before = chain.state().balance(attacker.address);
    let r = chain
        .call_contract(
            &attacker_eoa,
            attacker.address,
            0,
            abi::encode_call("strike()", &[]),
        )
        .unwrap();
    assert!(r.status.is_success(), "{:?}", r.status);
    assert_eq!(chain.state().balance(bank), 0);
    assert_eq!(chain.state().balance(attacker.address) - before, 4);
    assert!(r.trace.has_reentrancy(bank));

    // And the ECF checker condemns the interpreted attack trace too.
    let verdict = smacs_verifiers_check(&r.trace, bank);
    assert!(!verdict);
}

// Small indirection so the lang crate's dev-dependencies stay minimal: the
// check lives here as a structural re-implementation? No — use the real
// checker via the verifiers crate.
fn smacs_verifiers_check(trace: &smacs_chain::CallTrace, bank: Address) -> bool {
    smacs_verifiers::check_trace_ecf(trace, bank).is_ecf()
}

/// An interpreted contract behind the SMACS shield: verification guards
/// interpreted methods exactly as native ones.
#[test]
fn interpreted_contract_under_the_shield() {
    use smacs_core::owner::{OwnerToolkit, ShieldParams};
    use smacs_token::{signing_digest, PayloadContext, Token, TokenType, NO_INDEX};

    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let client = chain.funded_keypair(2, 10u128.pow(24));
    let toolkit = OwnerToolkit::new(owner, smacs_crypto::Keypair::from_seed(999));

    let adder_src = r#"
        contract Adder {
            uint total;
            function add(uint x) public returns (uint) {
                total = total + x;
                return total;
            }
        }
    "#;
    let adder = InterpretedContract::from_source(adder_src, "Adder", vec![]).unwrap();
    let (adder, _) = toolkit
        .deploy_shielded(
            &mut chain,
            Arc::new(adder),
            &ShieldParams {
                token_lifetime_secs: 3_600,
                max_tx_per_second: 0.35,
                disable_one_time: false,
            },
        )
        .unwrap();

    let payload = abi::encode_call("add(uint256)", &[AbiValue::Uint(U256::from_u64(5))]);

    // Without a token: rejected.
    let nonce = chain.state().nonce(client.address());
    let tx = smacs_chain::Transaction::call(nonce, adder.address, 0, payload.clone());
    let r = chain.submit(tx.sign(&client)).unwrap();
    assert!(!r.status.is_success());

    // With a valid method token: the interpreted body runs.
    let ctx = PayloadContext {
        sender: client.address(),
        contract: adder.address,
        selector: Some(abi::selector("add(uint256)")),
        calldata: None,
    };
    let expire = (chain.pending_env().timestamp + 1_000) as u32;
    let digest = signing_digest(TokenType::Method, expire, NO_INDEX, &ctx);
    let token = Token {
        ttype: TokenType::Method,
        expire,
        index: NO_INDEX,
        signature: toolkit.ts_keypair().sign_digest(&digest),
    };
    let data = smacs_core::client::build_call_data(&payload, adder.address, token);
    let nonce = chain.state().nonce(client.address());
    let tx = smacs_chain::Transaction::call(nonce, adder.address, 0, data);
    let r = chain.submit(tx.sign(&client)).unwrap();
    assert!(r.status.is_success(), "{:?}", r.status);
    assert_eq!(
        U256::from_be_slice(&r.return_data).unwrap(),
        U256::from_u64(5)
    );
}

/// The interpreted head agrees with the native heads — "implemented in a
/// different programming language" in the most literal sense (§V-A).
#[test]
fn interpreted_hydra_head_matches_native() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(20));

    let adder_src = r#"
        contract Adder {
            uint total;
            function add(uint x) public returns (uint) {
                total = total + x;
                return total;
            }
        }
    "#;
    let interpreted = InterpretedContract::from_source(adder_src, "Adder", vec![]).unwrap();
    let (interpreted, _) = chain.deploy(&owner, Arc::new(interpreted)).unwrap();

    // The native head (from smacs-contracts) for comparison.
    let native = smacs_contracts::AdderHead::new(smacs_contracts::HydraStyle::Direct);
    let (native, _) = chain.deploy(&owner, Arc::new(native)).unwrap();

    for x in [1u64, 13, 99_999] {
        let payload = smacs_contracts::AdderHead::add_payload(x);
        let a = chain
            .call_contract(&owner, interpreted.address, 0, payload.clone())
            .unwrap();
        let b = chain
            .call_contract(&owner, native.address, 0, payload)
            .unwrap();
        assert!(a.status.is_success() && b.status.is_success());
        assert_eq!(a.return_data, b.return_data, "x = {x}");
    }
}

#[test]
fn interpreter_rejects_unknown_selectors_and_bad_source() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(20));
    let bank = deploy_bank(&mut chain, &owner);
    let r = chain
        .call_contract(&owner, bank, 0, abi::encode_call("nosuch()", &[]))
        .unwrap();
    assert!(!r.status.is_success());

    assert!(InterpretedContract::from_source("contract X {", "X", vec![]).is_err());
    assert!(InterpretedContract::from_source("contract X {}", "Y", vec![]).is_err());
}

/// While-loop and arithmetic coverage: interpreted control flow matches
/// native computation.
#[test]
fn interpreted_loops_and_arithmetic() {
    let src = r#"
        contract Math {
            function sumTo(uint n) public returns (uint) {
                uint acc = 0;
                uint i = 1;
                while (i <= n) {
                    acc += i;
                    i += 1;
                }
                return acc;
            }
            function mix(uint a, uint b) public returns (uint) {
                return (a + b) * 2 - b / 2 + b % 3;
            }
        }
    "#;
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(20));
    let math = InterpretedContract::from_source(src, "Math", vec![]).unwrap();
    let (math, _) = chain.deploy(&owner, Arc::new(math)).unwrap();

    let r = chain
        .call_contract(
            &owner,
            math.address,
            0,
            abi::encode_call("sumTo(uint256)", &[AbiValue::Uint(U256::from_u64(100))]),
        )
        .unwrap();
    assert_eq!(
        U256::from_be_slice(&r.return_data).unwrap(),
        U256::from_u64(5_050)
    );

    let r = chain
        .call_contract(
            &owner,
            math.address,
            0,
            abi::encode_call(
                "mix(uint256,uint256)",
                &[
                    AbiValue::Uint(U256::from_u64(10)),
                    AbiValue::Uint(U256::from_u64(7)),
                ],
            ),
        )
        .unwrap();
    // (10+7)*2 - 7/2 + 7%3 = 34 - 3 + 1 = 32
    assert_eq!(
        U256::from_be_slice(&r.return_data).unwrap(),
        U256::from_u64(32)
    );
}
