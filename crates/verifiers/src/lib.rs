//! # smacs-verifiers — runtime-verification tools for SMACS ACRs (§V)
//!
//! "Defensive logics with arbitrary complexity can be plugged into SMACS."
//! This crate provides the two concrete instantiations the paper evaluates:
//!
//! - [`ecf`] — a dynamic **effectively-callback-free** checker in the
//!   spirit of ECFChecker (Grossman et al.): it analyses execution traces
//!   for re-entered contracts whose storage accesses interleave in a
//!   non-serializable way (the TheDAO pattern), and a
//!   [`smacs_ts::ValidationTool`] that simulates requested calls on the
//!   TS's forked testnet and vetoes issuance on a violation;
//! - [`hydra`] — the **Hydra uniformity** rule: N independent head
//!   implementations of the protected logic run on forked testnets, and a
//!   token is issued only when every head produces the identical output.
//!   "In contrast to Hydra, heads in SMACS are run by a TS on its local
//!   testnet … and therefore it is possible to implement more heads …
//!   without introducing additional on-chain cost."

pub mod ecf;
pub mod hydra;

pub use ecf::{check_trace_ecf, EcfTool, EcfVerdict, EcfViolation};
pub use hydra::{HydraTool, HydraVerdict};
