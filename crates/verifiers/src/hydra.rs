//! Hydra uniformity (§V-A): N-of-N-version programming as an ACR.
//!
//! "This rule dictates that an argument token is issued only when the
//! outputs of all heads are identical when called with the payload
//! specified in the token request. In contrast to Hydra, heads in SMACS
//! are run by a TS on its local testnet … does not consume on-chain
//! resources, and therefore it is possible to implement more heads in our
//! case without introducing additional on-chain cost."

use smacs_chain::Chain;
use smacs_primitives::{Address, Bytes};
use smacs_token::TokenRequest;
use smacs_ts::ValidationTool;
use std::fmt;

/// Result of one uniformity evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HydraVerdict {
    /// All heads produced the identical output.
    Uniform(Bytes),
    /// Output divergence between two heads.
    Divergent {
        /// Index of the first head in the configured list.
        head_a: usize,
        /// Index of the disagreeing head.
        head_b: usize,
    },
    /// A head's execution failed outright.
    HeadFailed {
        /// Index of the failing head.
        head: usize,
        /// The failure.
        reason: String,
    },
}

impl fmt::Display for HydraVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HydraVerdict::Uniform(_) => write!(f, "all heads uniform"),
            HydraVerdict::Divergent { head_a, head_b } => {
                write!(f, "heads {head_a} and {head_b} diverge")
            }
            HydraVerdict::HeadFailed { head, reason } => {
                write!(f, "head {head} failed: {reason}")
            }
        }
    }
}

/// The Hydra uniformity tool: the testnet hosts N head deployments of the
/// protected logic; requests are simulated against every head.
pub struct HydraTool {
    heads: Vec<Address>,
}

impl HydraTool {
    /// A tool over the given head deployments (at least two are needed for
    /// the comparison to mean anything).
    ///
    /// # Panics
    /// Panics if fewer than two heads are supplied.
    pub fn new(heads: Vec<Address>) -> Self {
        assert!(heads.len() >= 2, "hydra needs at least two heads");
        HydraTool { heads }
    }

    /// Number of configured heads.
    pub fn head_count(&self) -> usize {
        self.heads.len()
    }

    /// Run the uniformity evaluation for `calldata` from `sender`. Each
    /// head executes on its *own* fork of the testnet — the heads are
    /// independent program instances with independent state, as in the
    /// Hydra framework (this per-head isolation is also why the paper's
    /// Hydra-backed TS is an order of magnitude slower per request than
    /// the single-simulation ECF tool).
    pub fn evaluate(&self, testnet: &mut Chain, sender: Address, calldata: &[u8]) -> HydraVerdict {
        let mut outputs: Vec<Bytes> = Vec::with_capacity(self.heads.len());
        for (i, &head) in self.heads.iter().enumerate() {
            let mut head_net = testnet.fork();
            let (result, _gas, _trace, _) = head_net.dry_run(sender, head, 0, calldata.to_vec());
            match result {
                Ok(output) => outputs.push(output),
                Err(e) => {
                    return HydraVerdict::HeadFailed {
                        head: i,
                        reason: e.to_string(),
                    }
                }
            }
        }
        for i in 1..outputs.len() {
            if outputs[i] != outputs[0] {
                return HydraVerdict::Divergent {
                    head_a: 0,
                    head_b: i,
                };
            }
        }
        HydraVerdict::Uniform(outputs.into_iter().next().unwrap_or_default())
    }
}

impl ValidationTool for HydraTool {
    fn name(&self) -> &'static str {
        "hydra-uniformity"
    }

    fn validate(&self, req: &TokenRequest, testnet: &mut Chain) -> Result<(), String> {
        let calldata = req
            .calldata
            .as_ref()
            .ok_or("hydra: argument request carries no calldata")?;
        match self.evaluate(testnet, req.sender, calldata) {
            HydraVerdict::Uniform(_) => Ok(()),
            verdict => Err(format!("hydra: {verdict}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_contracts::{AdderHead, BuggyAdderHead, HydraStyle};
    use std::sync::Arc;

    /// Deploy three honest heads (the paper implements its contract "in
    /// three different programming languages"; ours differ structurally)
    /// plus, optionally, a buggy fourth.
    fn testnet_with_heads(include_buggy: bool) -> (Chain, Vec<Address>, Address) {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let mut heads = Vec::new();
        for style in [
            HydraStyle::Direct,
            HydraStyle::ShiftAdd,
            HydraStyle::TwosComplement,
        ] {
            let (d, _) = chain
                .deploy(&owner, Arc::new(AdderHead::new(style)))
                .unwrap();
            heads.push(d.address);
        }
        if include_buggy {
            let (d, _) = chain.deploy(&owner, Arc::new(BuggyAdderHead)).unwrap();
            heads.push(d.address);
        }
        let sender = owner.address();
        (chain, heads, sender)
    }

    #[test]
    fn uniform_inputs_pass() {
        let (mut chain, heads, sender) = testnet_with_heads(false);
        let tool = HydraTool::new(heads);
        for x in [0u64, 1, 7, 1_000_000] {
            let verdict = tool.evaluate(&mut chain, sender, &AdderHead::add_payload(x));
            assert!(
                matches!(verdict, HydraVerdict::Uniform(_)),
                "x={x}: {verdict}"
            );
        }
    }

    #[test]
    fn buggy_head_divergence_detected_exactly_on_trigger() {
        let (mut chain, heads, sender) = testnet_with_heads(true);
        let tool = HydraTool::new(heads);
        // Benign input: even the buggy head agrees.
        let verdict = tool.evaluate(&mut chain, sender, &AdderHead::add_payload(7));
        assert!(matches!(verdict, HydraVerdict::Uniform(_)));
        // Trigger input: divergence.
        let verdict = tool.evaluate(
            &mut chain,
            sender,
            &AdderHead::add_payload(BuggyAdderHead::TRIGGER),
        );
        assert!(
            matches!(verdict, HydraVerdict::Divergent { head_b: 3, .. }),
            "{verdict}"
        );
    }

    #[test]
    fn head_failure_is_reported() {
        let (mut chain, heads, sender) = testnet_with_heads(false);
        let tool = HydraTool::new(heads);
        // Unknown method: every head reverts; the first failure is
        // surfaced.
        let verdict = tool.evaluate(
            &mut chain,
            sender,
            &smacs_chain::abi::encode_call("nosuch()", &[]),
        );
        assert!(matches!(verdict, HydraVerdict::HeadFailed { head: 0, .. }));
    }

    #[test]
    fn as_validation_tool_vetoes_divergent_requests() {
        let (chain, heads, sender) = testnet_with_heads(true);
        let tool = HydraTool::new(heads.clone());
        let contract = heads[0];
        let ok_req = smacs_token::TokenRequest::argument_token(
            contract,
            sender,
            AdderHead::ADD_SIG,
            vec![],
            AdderHead::add_payload(5),
        );
        let bad_req = smacs_token::TokenRequest::argument_token(
            contract,
            sender,
            AdderHead::ADD_SIG,
            vec![],
            AdderHead::add_payload(BuggyAdderHead::TRIGGER),
        );
        let mut fork = chain.fork();
        assert!(tool.validate(&ok_req, &mut fork).is_ok());
        let mut fork = chain.fork();
        let err = tool.validate(&bad_req, &mut fork).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least two heads")]
    fn single_head_is_rejected() {
        HydraTool::new(vec![Address::from_low_u64(1)]);
    }
}
