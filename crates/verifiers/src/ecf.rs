//! The ECF (effectively callback-free) checker — §V-B's defense against
//! re-entrancy, in the spirit of ECFChecker [Grossman et al., POPL'18].
//!
//! An execution of contract `C` is *effectively callback-free* when its
//! callbacks (re-entrant frames of `C` spawned from within `C`'s own
//! execution) could be serialized before or after the enclosing frame with
//! the same outcome. The dynamic check implemented here flags the
//! non-serializable pattern that captures TheDAO / Fig. 7:
//!
//! > the outer frame **reads** slot `s` *before* the callback, the callback
//! > **touches** `s`, and the outer frame **writes** `s` *after* the
//! > callback.
//!
//! In that shape the callback observed (or clobbered) state the outer frame
//! was still operating on — in Fig. 7 the stale `balance[msg.sender]` that
//! the outer `withdraw()` zeroes only after the transfer. Patterns that
//! serialize cleanly — e.g. `SafeBank`, which finishes all its storage
//! writes before making the external call — pass, so "a vulnerable smart
//! contract may still operate normally, since only innocent transactions
//! pass through" (§VIII).
//!
//! This is a deliberate simplification of full ECF checking (which searches
//! for *any* equivalent callback-free serialization); it is sound for the
//! lost-update/stale-read class the paper's case study targets and is
//! documented as such in DESIGN.md.

use smacs_chain::trace::{StorageAccess, TraceEvent, TraceFrame};
use smacs_chain::CallTrace;
use smacs_primitives::{Address, H256};
use smacs_token::TokenRequest;
use smacs_ts::ValidationTool;
use std::collections::HashSet;
use std::fmt;

/// A detected ECF violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcfViolation {
    /// The re-entered contract.
    pub contract: Address,
    /// A slot witnessing the read-before / touched-inside / write-after
    /// pattern.
    pub slot: H256,
    /// Depth of the outer frame.
    pub outer_depth: usize,
    /// Depth of the re-entrant frame.
    pub inner_depth: usize,
}

impl fmt::Display for EcfViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-ECF callback on {}: slot {} read at depth {}, touched by re-entrant frame at depth {}, written after the callback",
            self.contract, self.slot, self.outer_depth, self.inner_depth
        )
    }
}

/// The checker's verdict for one trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcfVerdict {
    /// Effectively callback-free (no violating pattern found).
    CallbackFree,
    /// Violations found.
    Violations(Vec<EcfViolation>),
}

impl EcfVerdict {
    /// True iff the execution is effectively callback-free.
    pub fn is_ecf(&self) -> bool {
        matches!(self, EcfVerdict::CallbackFree)
    }
}

/// Check a full execution trace for ECF violations on `contract`.
pub fn check_trace_ecf(trace: &CallTrace, contract: Address) -> EcfVerdict {
    let mut violations = Vec::new();
    if let Some(root) = &trace.root {
        collect_violations(root, contract, &mut violations);
    }
    if violations.is_empty() {
        EcfVerdict::CallbackFree
    } else {
        EcfVerdict::Violations(violations)
    }
}

fn collect_violations(frame: &TraceFrame, contract: Address, out: &mut Vec<EcfViolation>) {
    if frame.callee == contract {
        analyse_outer_frame(frame, contract, out);
    }
    for child in &frame.children {
        collect_violations(child, contract, out);
    }
}

/// For an outer frame of `contract`: split its own accesses around each
/// child call whose subtree re-enters `contract`, and apply the
/// read-pre / touched-inside / write-post rule.
fn analyse_outer_frame(frame: &TraceFrame, contract: Address, out: &mut Vec<EcfViolation>) {
    for (event_idx, event) in frame.events.iter().enumerate() {
        let TraceEvent::Call { child } = event else {
            continue;
        };
        let subtree = &frame.children[*child];
        let reentrant_frames = frames_of(subtree, contract);
        if reentrant_frames.is_empty() {
            continue;
        }
        let pre_reads: HashSet<H256> = frame.events[..event_idx]
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Access(StorageAccess::Read { slot }) => Some(*slot),
                _ => None,
            })
            .collect();
        let post_writes: HashSet<H256> = frame.events[event_idx + 1..]
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Access(StorageAccess::Write { slot, .. }) => Some(*slot),
                _ => None,
            })
            .collect();
        for inner in &reentrant_frames {
            for access in inner.accesses() {
                let slot = match access {
                    StorageAccess::Read { slot } => *slot,
                    StorageAccess::Write { slot, .. } => *slot,
                };
                if pre_reads.contains(&slot) && post_writes.contains(&slot) {
                    out.push(EcfViolation {
                        contract,
                        slot,
                        outer_depth: frame.depth,
                        inner_depth: inner.depth,
                    });
                }
            }
        }
    }
}

fn frames_of(subtree: &TraceFrame, contract: Address) -> Vec<&TraceFrame> {
    subtree
        .walk()
        .into_iter()
        .filter(|f| f.callee == contract)
        .collect()
}

/// The TS-side validation tool: simulate the requested call on the forked
/// testnet and veto issuance if the resulting trace is not ECF on the
/// protected contract.
///
/// §V-B: "the TS deploys an ECFChecker-supported implementation running an
/// off-chain testnet with the Bank contract deployed. For every token
/// request, the TS calls a requested method with the passed arguments and
/// observes the output of ECFChecker."
///
/// The protected contract is deployed *unshielded* on the testnet (the
/// simulation needs no tokens — it runs inside the TS's trust boundary) at
/// `target`, which may differ from the live address in the request.
pub struct EcfTool {
    target: Address,
}

impl EcfTool {
    /// A tool protecting the testnet deployment at `target`.
    pub fn new(target: Address) -> Self {
        EcfTool { target }
    }
}

impl ValidationTool for EcfTool {
    fn name(&self) -> &'static str {
        "ecf-checker"
    }

    fn validate(&self, req: &TokenRequest, testnet: &mut smacs_chain::Chain) -> Result<(), String> {
        let calldata = req
            .calldata
            .as_ref()
            .ok_or("ecf: argument request carries no calldata")?;
        let (result, _gas, trace, _) =
            testnet.dry_run(req.sender, self.target, 0, calldata.clone());
        if let Err(e) = result {
            return Err(format!("ecf: simulated call failed: {e}"));
        }
        match check_trace_ecf(&trace, self.target) {
            EcfVerdict::CallbackFree => Ok(()),
            EcfVerdict::Violations(violations) => Err(format!("ecf: {}", violations[0])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::abi;
    use smacs_chain::Chain;
    use smacs_contracts::{Attacker, Bank, SafeBank};
    use std::sync::Arc;

    /// Run the full Fig. 7 attack on an unprotected bank and return the
    /// transaction trace plus the bank address.
    fn attack_trace(use_safe_bank: bool) -> (CallTrace, Address) {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let victim = chain.funded_keypair(2, 10u128.pow(20));
        let attacker_eoa = chain.funded_keypair(3, 10u128.pow(20));
        let bank_logic: Arc<dyn smacs_chain::Contract> = if use_safe_bank {
            Arc::new(SafeBank)
        } else {
            Arc::new(Bank)
        };
        let (bank, _) = chain.deploy(&owner, bank_logic).unwrap();
        chain
            .call_contract(
                &victim,
                bank.address,
                2,
                abi::encode_call("addBalance()", &[]),
            )
            .unwrap();
        let (attacker, _) = chain
            .deploy(&attacker_eoa, Arc::new(Attacker::new(bank.address)))
            .unwrap();
        chain.fund_account(attacker.address, 10);
        chain
            .call_contract(
                &attacker_eoa,
                attacker.address,
                2,
                abi::encode_call("deposit()", &[]),
            )
            .unwrap();
        let receipt = chain
            .call_contract(
                &attacker_eoa,
                attacker.address,
                0,
                abi::encode_call("withdraw()", &[]),
            )
            .unwrap();
        assert!(receipt.status.is_success());
        (receipt.trace, bank.address)
    }

    #[test]
    fn dao_attack_trace_violates_ecf() {
        let (trace, bank) = attack_trace(false);
        let verdict = check_trace_ecf(&trace, bank);
        let EcfVerdict::Violations(violations) = verdict else {
            panic!("the Fig. 7 attack must be flagged");
        };
        // The witnessing slot is the attacker's balance mapping entry: read
        // by the outer withdraw, touched by the inner, zeroed after.
        assert!(!violations.is_empty());
        assert!(violations[0].inner_depth > violations[0].outer_depth);
    }

    #[test]
    fn safe_bank_attack_trace_is_ecf() {
        // Same attacker, checks-effects-interactions bank: the re-entrant
        // call happens after the outer frame finished all its writes — the
        // execution serializes, so it must pass.
        let (trace, bank) = attack_trace(true);
        assert!(check_trace_ecf(&trace, bank).is_ecf());
    }

    #[test]
    fn honest_withdraw_is_ecf() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let user = chain.funded_keypair(2, 10u128.pow(20));
        let (bank, _) = chain.deploy(&owner, Arc::new(Bank)).unwrap();
        chain
            .call_contract(
                &user,
                bank.address,
                100,
                abi::encode_call("addBalance()", &[]),
            )
            .unwrap();
        let receipt = chain
            .call_contract(&user, bank.address, 0, abi::encode_call("withdraw()", &[]))
            .unwrap();
        assert!(receipt.status.is_success());
        assert!(check_trace_ecf(&receipt.trace, bank.address).is_ecf());
    }

    #[test]
    fn tool_passes_innocent_requests_and_fails_closed_on_broken_sims() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let user = chain.funded_keypair(2, 10u128.pow(20));
        let (bank, _) = chain.deploy(&owner, Arc::new(Bank)).unwrap();
        chain
            .call_contract(
                &user,
                bank.address,
                100,
                abi::encode_call("addBalance()", &[]),
            )
            .unwrap();
        let tool = EcfTool::new(bank.address);

        // Innocent withdraw simulates clean.
        let req = smacs_token::TokenRequest::argument_token(
            bank.address,
            user.address(),
            "withdraw()",
            vec![],
            abi::encode_call("withdraw()", &[]),
        );
        let mut fork = chain.fork();
        assert!(tool.validate(&req, &mut fork).is_ok());

        // A request whose simulation reverts is rejected (fail closed).
        let bad = smacs_token::TokenRequest::argument_token(
            bank.address,
            user.address(),
            "nosuch()",
            vec![],
            abi::encode_call("nosuch()", &[]),
        );
        let mut fork = chain.fork();
        assert!(tool.validate(&bad, &mut fork).is_err());

        // And a request without calldata is malformed for this tool.
        let mut no_calldata = req;
        no_calldata.calldata = None;
        let mut fork = chain.fork();
        assert!(tool.validate(&no_calldata, &mut fork).is_err());
    }

    #[test]
    fn simulation_does_not_disturb_the_real_chain() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let user = chain.funded_keypair(2, 10u128.pow(20));
        let (bank, _) = chain.deploy(&owner, Arc::new(Bank)).unwrap();
        chain
            .call_contract(
                &user,
                bank.address,
                100,
                abi::encode_call("addBalance()", &[]),
            )
            .unwrap();
        let balance_before = chain.state().balance(bank.address);

        let tool = EcfTool::new(bank.address);
        let req = smacs_token::TokenRequest::argument_token(
            bank.address,
            user.address(),
            "withdraw()",
            vec![],
            abi::encode_call("withdraw()", &[]),
        );
        let mut fork = chain.fork();
        tool.validate(&req, &mut fork).unwrap();
        // The simulated withdraw moved funds only on the fork.
        assert_eq!(chain.state().balance(bank.address), balance_before);
    }
}
