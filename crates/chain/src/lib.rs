//! An Ethereum-like blockchain simulator.
//!
//! The SMACS paper deploys its prototype on an Ethereum testnet (geth +
//! Solidity v0.4.24). This crate is the substitution substrate: a
//! deterministic, in-process chain that reproduces the execution-layer
//! behaviours SMACS depends on:
//!
//! - externally owned **accounts** with nonces and wei balances, and
//!   **contract accounts** with persistent storage ([`state`]);
//! - **signed transactions** with nonce-based replay protection, recovered
//!   senders, and RLP-derived transaction hashes ([`tx`]);
//! - **blocks** with monotone timestamps — `now()` in Alg. 1 is the block
//!   timestamp ([`block`]);
//! - a **gas meter** charging a Yellow-Paper-derived schedule, with labeled
//!   sub-measurements so experiments can report the paper's Verify / Misc /
//!   Bitmap / Parse cost splits ([`gas`]);
//! - **message calls** between contracts with the EVM context objects the
//!   paper's §II-C enumerates (`tx.origin`, `msg.sender`, `msg.sig`,
//!   `msg.data`, `msg.value`), arbitrary call depth, and *re-entrancy-capable*
//!   dynamic dispatch — required to reproduce the Fig. 7 attack ([`exec`]);
//! - the `ecrecover` **precompile** ([`exec::CallContext::ecrecover`]);
//! - **execution traces** with per-frame storage read/write sets, the raw
//!   material for the ECF checker ([`trace`]);
//! - **state forking** so a Token Service can simulate calls on a local
//!   testnet copy (§V), and **reorg** support for the §VII-A 51%-attack
//!   discussion ([`chain`]).
//!
//! Contracts are Rust values implementing [`contract::Contract`]; all their
//! persistent state lives in the world state (as EVM storage does), so
//! snapshots, reverts, and forks are uniform.

pub mod abi;
pub mod block;
pub mod chain;
pub mod contract;
pub mod exec;
pub mod gas;
pub mod receipt;
pub mod state;
pub mod trace;
pub mod tx;

pub use abi::{selector, AbiValue, Selector};
pub use block::{Block, BlockEnv};
pub use chain::{BlockMode, Chain, ChainConfig, ChainError};
pub use contract::{Contract, ContractRegistry, DeployedContract};
pub use exec::{CallContext, Executor, MessageCall, VmError};
pub use gas::{GasBreakdown, GasMeter, GasSchedule, OutOfGas};
pub use receipt::{ExecStatus, Log, Receipt};
pub use state::{TouchSet, WorldState};
pub use trace::{CallTrace, TraceFrame};
pub use tx::{SignedTransaction, Transaction};
