//! Contract ABI: 4-byte method selectors and argument encoding.
//!
//! Method selectors are computed exactly as Solidity does: the first four
//! bytes of `keccak256("name(type1,type2,…)")` — this is the `msg.sig`
//! context object the paper's Alg. 1 binds method tokens to. Argument
//! encoding follows the Solidity ABI's head/tail scheme for the value kinds
//! the workspace uses (uint256, address, bool, bytes, string).

use smacs_crypto::keccak256;
use smacs_primitives::{Address, U256};
use std::fmt;

/// A 4-byte method identifier (`msg.sig`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Selector(pub [u8; 4]);

impl Selector {
    /// Parse the selector from the first four bytes of calldata; `None` for
    /// calldata shorter than four bytes (which triggers the fallback method).
    pub fn from_calldata(data: &[u8]) -> Option<Selector> {
        if data.len() < 4 {
            return None;
        }
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&data[..4]);
        Some(Selector(buf))
    }

    /// Render as hex, e.g. `0xa9059cbb`.
    pub fn to_hex(&self) -> String {
        format!("0x{}", hex::encode(self.0))
    }
}

impl fmt::Debug for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Selector({})", self.to_hex())
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Compute the Solidity selector for a canonical signature string such as
/// `"transfer(address,uint256)"`.
pub fn selector(signature: &str) -> Selector {
    let hash = keccak256(signature.as_bytes());
    Selector([hash.0[0], hash.0[1], hash.0[2], hash.0[3]])
}

/// A dynamically typed ABI value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AbiValue {
    /// `uint256`.
    Uint(U256),
    /// `address`.
    Address(Address),
    /// `bool`.
    Bool(bool),
    /// `bytes` (dynamic).
    Bytes(Vec<u8>),
    /// `string` (dynamic).
    String(String),
}

impl AbiValue {
    /// The canonical Solidity type name, as used in signature strings.
    pub fn type_name(&self) -> &'static str {
        match self {
            AbiValue::Uint(_) => "uint256",
            AbiValue::Address(_) => "address",
            AbiValue::Bool(_) => "bool",
            AbiValue::Bytes(_) => "bytes",
            AbiValue::String(_) => "string",
        }
    }

    /// Whether the value uses the dynamic (offset + tail) encoding.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, AbiValue::Bytes(_) | AbiValue::String(_))
    }

    /// Extract a `uint256`, if that is the variant.
    pub fn as_uint(&self) -> Option<U256> {
        match self {
            AbiValue::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an address, if that is the variant.
    pub fn as_address(&self) -> Option<Address> {
        match self {
            AbiValue::Address(a) => Some(*a),
            _ => None,
        }
    }

    /// Extract a bool, if that is the variant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AbiValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract dynamic bytes, if that is the variant.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            AbiValue::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Extract a string, if that is the variant.
    pub fn as_string(&self) -> Option<&str> {
        match self {
            AbiValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// ABI decoding failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbiError {
    /// Calldata shorter than the static head requires.
    ShortInput,
    /// A dynamic offset or length pointed outside the payload.
    BadOffset,
    /// A word that must be a left-padded small value had garbage in the
    /// padding (e.g. an address word with non-zero high bytes).
    BadPadding,
}

impl fmt::Display for AbiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbiError::ShortInput => write!(f, "abi: input shorter than static head"),
            AbiError::BadOffset => write!(f, "abi: dynamic offset/length out of bounds"),
            AbiError::BadPadding => write!(f, "abi: invalid padding in word"),
        }
    }
}

impl std::error::Error for AbiError {}

/// Encode values using the Solidity head/tail scheme (no selector).
pub fn encode(values: &[AbiValue]) -> Vec<u8> {
    let head_size = values.len() * 32;
    let mut head: Vec<u8> = Vec::with_capacity(head_size);
    let mut tail: Vec<u8> = Vec::new();
    for value in values {
        match value {
            AbiValue::Uint(v) => head.extend_from_slice(&v.to_be_bytes()),
            AbiValue::Address(a) => {
                let mut word = [0u8; 32];
                word[12..].copy_from_slice(a.as_bytes());
                head.extend_from_slice(&word);
            }
            AbiValue::Bool(b) => {
                let mut word = [0u8; 32];
                word[31] = *b as u8;
                head.extend_from_slice(&word);
            }
            AbiValue::Bytes(bytes) => {
                let offset = head_size + tail.len();
                head.extend_from_slice(&U256::from(offset).to_be_bytes());
                extend_dynamic(&mut tail, bytes);
            }
            AbiValue::String(s) => {
                let offset = head_size + tail.len();
                head.extend_from_slice(&U256::from(offset).to_be_bytes());
                extend_dynamic(&mut tail, s.as_bytes());
            }
        }
    }
    head.extend_from_slice(&tail);
    head
}

fn extend_dynamic(tail: &mut Vec<u8>, data: &[u8]) {
    tail.extend_from_slice(&U256::from(data.len()).to_be_bytes());
    tail.extend_from_slice(data);
    let pad = (32 - data.len() % 32) % 32;
    tail.extend(std::iter::repeat_n(0u8, pad));
}

/// A type tag for decoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbiType {
    /// `uint256`
    Uint,
    /// `address`
    Address,
    /// `bool`
    Bool,
    /// `bytes`
    Bytes,
    /// `string`
    String,
}

/// Decode `data` (without selector) against an expected type list.
pub fn decode(data: &[u8], types: &[AbiType]) -> Result<Vec<AbiValue>, AbiError> {
    let mut out = Vec::with_capacity(types.len());
    for (i, ty) in types.iter().enumerate() {
        let word = data.get(i * 32..(i + 1) * 32).ok_or(AbiError::ShortInput)?;
        match ty {
            AbiType::Uint => {
                out.push(AbiValue::Uint(U256::from_be_slice(word).expect("32 bytes")));
            }
            AbiType::Address => {
                if word[..12].iter().any(|&b| b != 0) {
                    return Err(AbiError::BadPadding);
                }
                out.push(AbiValue::Address(
                    Address::from_slice(&word[12..]).expect("20 bytes"),
                ));
            }
            AbiType::Bool => {
                if word[..31].iter().any(|&b| b != 0) || word[31] > 1 {
                    return Err(AbiError::BadPadding);
                }
                out.push(AbiValue::Bool(word[31] == 1));
            }
            AbiType::Bytes | AbiType::String => {
                let offset = U256::from_be_slice(word)
                    .expect("32 bytes")
                    .to_u64()
                    .ok_or(AbiError::BadOffset)? as usize;
                let len_word = data.get(offset..offset + 32).ok_or(AbiError::BadOffset)?;
                let len = U256::from_be_slice(len_word)
                    .expect("32 bytes")
                    .to_u64()
                    .ok_or(AbiError::BadOffset)? as usize;
                let payload = data
                    .get(offset + 32..offset + 32 + len)
                    .ok_or(AbiError::BadOffset)?;
                match ty {
                    AbiType::Bytes => out.push(AbiValue::Bytes(payload.to_vec())),
                    AbiType::String => out.push(AbiValue::String(
                        String::from_utf8_lossy(payload).into_owned(),
                    )),
                    _ => unreachable!(),
                }
            }
        }
    }
    Ok(out)
}

/// Build full calldata: selector followed by encoded arguments.
pub fn encode_call(signature: &str, args: &[AbiValue]) -> Vec<u8> {
    let mut out = selector(signature).0.to_vec();
    out.extend_from_slice(&encode(args));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erc20_transfer_selector() {
        assert_eq!(selector("transfer(address,uint256)").to_hex(), "0xa9059cbb");
    }

    #[test]
    fn selector_from_short_calldata_is_none() {
        assert_eq!(Selector::from_calldata(&[1, 2, 3]), None);
        assert!(Selector::from_calldata(&[1, 2, 3, 4]).is_some());
    }

    #[test]
    fn static_encoding_layout() {
        let enc = encode(&[
            AbiValue::Uint(U256::from_u64(1)),
            AbiValue::Address(Address::from_low_u64(2)),
            AbiValue::Bool(true),
        ]);
        assert_eq!(enc.len(), 96);
        assert_eq!(enc[31], 1);
        assert_eq!(enc[63], 2);
        assert_eq!(enc[95], 1);
    }

    #[test]
    fn dynamic_encoding_layout() {
        // Solidity reference: encode("ab") after one static word.
        let enc = encode(&[
            AbiValue::Uint(U256::from_u64(5)),
            AbiValue::Bytes(vec![0xaa, 0xbb]),
        ]);
        // head: uint word + offset word (0x40), tail: len word + padded data
        assert_eq!(enc.len(), 32 + 32 + 32 + 32);
        assert_eq!(enc[63], 0x40);
        assert_eq!(enc[95], 2);
        assert_eq!(&enc[96..98], &[0xaa, 0xbb]);
        assert!(enc[98..].iter().all(|&b| b == 0));
    }

    #[test]
    fn decode_rejects_bad_padding() {
        let mut enc = encode(&[AbiValue::Address(Address::from_low_u64(1))]);
        enc[0] = 0xff;
        assert_eq!(decode(&enc, &[AbiType::Address]), Err(AbiError::BadPadding));

        let mut enc = encode(&[AbiValue::Bool(true)]);
        enc[31] = 2;
        assert_eq!(decode(&enc, &[AbiType::Bool]), Err(AbiError::BadPadding));
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = encode(&[AbiValue::Uint(U256::ONE)]);
        assert_eq!(
            decode(&enc[..16], &[AbiType::Uint]),
            Err(AbiError::ShortInput)
        );
        // Dynamic offset beyond payload.
        let enc = U256::from_u64(1000).to_be_bytes().to_vec();
        assert_eq!(decode(&enc, &[AbiType::Bytes]), Err(AbiError::BadOffset));
    }

    #[test]
    fn encode_call_prepends_selector() {
        let call = encode_call("foo(uint256)", &[AbiValue::Uint(U256::from_u64(3))]);
        assert_eq!(call.len(), 36);
        assert_eq!(&call[..4], &selector("foo(uint256)").0);
    }

    fn arb_value() -> impl Strategy<Value = AbiValue> {
        prop_oneof![
            any::<u64>().prop_map(|v| AbiValue::Uint(U256::from_u64(v))),
            any::<u64>().prop_map(|v| AbiValue::Address(Address::from_low_u64(v))),
            any::<bool>().prop_map(AbiValue::Bool),
            prop::collection::vec(any::<u8>(), 0..96).prop_map(AbiValue::Bytes),
            "[a-z0-9 ]{0,48}".prop_map(AbiValue::String),
        ]
    }

    fn type_of(v: &AbiValue) -> AbiType {
        match v {
            AbiValue::Uint(_) => AbiType::Uint,
            AbiValue::Address(_) => AbiType::Address,
            AbiValue::Bool(_) => AbiType::Bool,
            AbiValue::Bytes(_) => AbiType::Bytes,
            AbiValue::String(_) => AbiType::String,
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in prop::collection::vec(arb_value(), 0..6)) {
            let types: Vec<AbiType> = values.iter().map(type_of).collect();
            let enc = encode(&values);
            let dec = decode(&enc, &types).unwrap();
            prop_assert_eq!(dec, values);
        }

        #[test]
        fn prop_decode_never_panics(
            data in prop::collection::vec(any::<u8>(), 0..256),
            types in prop::collection::vec(
                prop_oneof![
                    Just(AbiType::Uint), Just(AbiType::Address), Just(AbiType::Bool),
                    Just(AbiType::Bytes), Just(AbiType::String)
                ],
                0..5
            )
        ) {
            let _ = decode(&data, &types);
        }
    }
}
