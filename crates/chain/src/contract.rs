//! The contract programming model: stateless Rust logic bound to an address.
//!
//! In the EVM a contract is immutable bytecode plus mutable storage. The
//! simulator mirrors that split: a [`Contract`] implementation is immutable
//! logic (shared via `Arc`), and *all* mutable state lives in the world
//! state's storage, accessed through the [`crate::exec::CallContext`]. This
//! keeps snapshot/revert, dry runs, and TS-side forking correct without any
//! per-contract cooperation.

use smacs_primitives::{Address, Bytes};
use std::collections::HashMap;
use std::sync::Arc;

use crate::exec::{CallContext, VmError};

/// Smart-contract logic. Implementations must be stateless: persistent data
/// goes through `ctx.sstore`/`ctx.sload`, never through `self` fields.
pub trait Contract: Send + Sync {
    /// Human-readable name for diagnostics and traces.
    fn name(&self) -> &'static str;

    /// Size in bytes of the (notional) deployed code image; drives the
    /// code-deposit gas charge at deployment.
    fn code_len(&self) -> usize {
        1024
    }

    /// Run once at deployment. Initializes storage; gas is charged against
    /// the creation transaction.
    fn constructor(&self, _ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        Ok(())
    }

    /// Handle a message with a 4-byte selector (calldata length ≥ 4).
    /// Returns the ABI-encoded return data as shared [`Bytes`] so the
    /// executor can hand it up the call chain without copying.
    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError>;

    /// The fallback method: invoked for calls without a selector — notably
    /// plain value transfers. This is the hook the Fig. 7 re-entrancy
    /// attack rides on.
    fn fallback(&self, _ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        Ok(())
    }
}

/// A deployed contract: address plus logic handle.
#[derive(Clone)]
pub struct DeployedContract {
    /// The contract's account address.
    pub address: Address,
    /// The shared logic.
    pub logic: Arc<dyn Contract>,
}

impl std::fmt::Debug for DeployedContract {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeployedContract({} @ {})",
            self.logic.name(),
            self.address
        )
    }
}

/// Address → logic mapping for all deployed contracts.
///
/// Cloning the registry is cheap (`Arc` handles), which is what makes chain
/// forks inexpensive.
#[derive(Clone, Default)]
pub struct ContractRegistry {
    contracts: HashMap<Address, Arc<dyn Contract>>,
}

impl ContractRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register logic at an address (normally done by the deployment path
    /// in [`crate::chain::Chain`]).
    pub fn insert(&mut self, address: Address, logic: Arc<dyn Contract>) {
        self.contracts.insert(address, logic);
    }

    /// Look up the logic at `address`.
    pub fn get(&self, address: Address) -> Option<Arc<dyn Contract>> {
        self.contracts.get(&address).cloned()
    }

    /// Whether any contract is registered at `address`.
    pub fn contains(&self, address: Address) -> bool {
        self.contracts.contains_key(&address)
    }

    /// Number of registered contracts.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// True iff no contracts are registered.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// Iterate over registered addresses.
    pub fn addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.contracts.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Contract for Nop {
        fn name(&self) -> &'static str {
            "Nop"
        }
        fn execute(&self, _ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
            Ok(Bytes::new())
        }
    }

    #[test]
    fn registry_insert_get() {
        let mut reg = ContractRegistry::new();
        let addr = Address::from_low_u64(1);
        assert!(reg.get(addr).is_none());
        reg.insert(addr, Arc::new(Nop));
        assert!(reg.contains(addr));
        assert_eq!(reg.get(addr).unwrap().name(), "Nop");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_clone_shares_logic() {
        let mut reg = ContractRegistry::new();
        let addr = Address::from_low_u64(2);
        reg.insert(addr, Arc::new(Nop));
        let cloned = reg.clone();
        assert!(cloned.contains(addr));
        // New inserts into the clone do not affect the original.
        let mut cloned = cloned;
        cloned.insert(Address::from_low_u64(3), Arc::new(Nop));
        assert!(!reg.contains(Address::from_low_u64(3)));
    }
}
