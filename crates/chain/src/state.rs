//! World state: accounts, balances, nonces, contract storage — journaled,
//! with O(1) nested snapshots and copy-on-write forking.
//!
//! # Design: append-only journal + frozen-base overlay
//!
//! All persistent contract data lives here (as in the EVM's storage trie),
//! keyed by `(contract address, 32-byte slot)`. Contracts themselves are
//! stateless logic (see [`crate::contract`]); that separation is what makes
//! snapshot/revert, `eth_call`-style dry runs, and TS-side testnet forking
//! uniform and cheap.
//!
//! The state is layered:
//!
//! ```text
//!   reads ──► overlay (mutable HashMaps) ──miss──► base (frozen Arc<StateData>)
//!   writes ─► overlay only, with the previous *overlay* entry journaled
//! ```
//!
//! - **Snapshots** are journal lengths ([`Snapshot`]); [`WorldState::revert_to`]
//!   pops journal entries and restores the recorded overlay entries, so the
//!   cost of a checkpoint is O(1) and the cost of a revert is O(entries
//!   written since) — never O(world size). This is the standard design of
//!   production EVM implementations (geth's journal, revm).
//! - **Forks** ([`WorldState::fork`]) share the frozen base by bumping its
//!   `Arc` refcount and copy only the overlay, so forking a freshly
//!   committed state is O(1) regardless of how many accounts/slots exist —
//!   the Token Service's "local testnet" (§V of the paper) no longer
//!   duplicates the whole chain per simulation.
//! - **Commits** ([`WorldState::commit`]) clear the journal and, when no
//!   fork is sharing the base, flatten the overlay into it in place
//!   (O(entries in the overlay)). While forks hold the base alive the
//!   overlay simply keeps accumulating; correctness is unaffected.
//!
//! Storage semantics: a zero value in the *overlay* acts as a tombstone
//! masking a non-zero base entry; the flattened base never stores zero
//! slots, preserving the EVM rule that never-written and cleared slots read
//! as zero.
//!
//! ## Deviations from the paper
//!
//! The paper runs on geth and inherits its state handling; this simulator
//! reproduces the observable semantics (revert-on-failure, fork isolation)
//! with the journal/overlay representation above. Unlike geth there is no
//! trie or state root — the simulator never needs Merkle proofs — and
//! `create_account`/`set_contract` (genesis/deployment helpers) are fully
//! journaled here, which is slightly *stronger* than the seed's behaviour
//! (their effects used to survive reverts).

use smacs_crypto::keccak256;
use smacs_primitives::{Address, H256, U256};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// The read/write footprint of one transaction, recorded while
/// [`WorldState::begin_touch_recording`] is active.
///
/// Accounts are touched as a unit (nonce, balance, code flags all live in
/// one [`AccountInfo`]), storage per `(contract, slot)`. The parallel block
/// pipeline in [`crate::chain`] uses these sets Block-STM-style: a
/// speculative transaction is valid iff its *reads* don't overlap the
/// *writes* of any earlier transaction in the block. Every write path here
/// performs a recorded read first (copy-up reads the current value; `debit`
/// checks the balance), so read-vs-write overlap subsumes write-write
/// conflicts.
#[derive(Clone, Debug, Default)]
pub struct TouchSet {
    /// Accounts whose info was read (balance, nonce, existence, copy-up).
    pub account_reads: HashSet<Address>,
    /// Accounts whose info was written.
    pub account_writes: HashSet<Address>,
    /// Storage slots read.
    pub storage_reads: HashSet<(Address, H256)>,
    /// Storage slots written.
    pub storage_writes: HashSet<(Address, H256)>,
}

impl TouchSet {
    /// True iff any of `self`'s reads hits one of `writes`' writes — the
    /// Block-STM validation rule (would this speculation have observed a
    /// value the earlier transactions changed?).
    pub fn conflicts_with_writes(&self, writes: &TouchSet) -> bool {
        self.account_reads
            .iter()
            .any(|a| writes.account_writes.contains(a))
            || self
                .storage_reads
                .iter()
                .any(|s| writes.storage_writes.contains(s))
    }

    /// Fold another transaction's writes into this (accumulator) set.
    pub fn absorb_writes(&mut self, other: &TouchSet) {
        self.account_writes
            .extend(other.account_writes.iter().copied());
        self.storage_writes
            .extend(other.storage_writes.iter().copied());
    }

    /// True iff nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.account_reads.is_empty()
            && self.account_writes.is_empty()
            && self.storage_reads.is_empty()
            && self.storage_writes.is_empty()
    }

    /// Total number of recorded touches (diagnostics).
    pub fn len(&self) -> usize {
        self.account_reads.len()
            + self.account_writes.len()
            + self.storage_reads.len()
            + self.storage_writes.len()
    }
}

/// Per-account data.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccountInfo {
    /// Transaction count for EOAs / creation count for contracts. The
    /// nonce is Ethereum's replay protection (§II-C).
    pub nonce: u64,
    /// Balance in wei.
    pub balance: u128,
    /// Length in bytes of the deployed code image (zero for EOAs). The
    /// simulator does not store bytecode — contracts are Rust values — but
    /// the length drives the code-deposit gas charge at deployment.
    pub code_len: usize,
    /// Whether this address hosts a contract.
    pub is_contract: bool,
}

/// The frozen layer shared between a state and its forks. Never mutated
/// while shared ([`WorldState::commit`] flattens into it only when the
/// `Arc` is uniquely owned).
#[derive(Clone, Debug, Default)]
struct StateData {
    accounts: HashMap<Address, AccountInfo>,
    /// Non-zero slots only.
    storage: HashMap<(Address, H256), H256>,
}

/// One undo record. Entries operate purely at the overlay level: `prev` is
/// the previous *overlay* entry (`None` = the key was read through to the
/// base), so reverting restores the exact overlay shape — and therefore the
/// exact merged view — without consulting the base.
#[derive(Clone, Debug)]
enum JournalEntry {
    AccountChanged {
        addr: Address,
        prev: Option<AccountInfo>,
    },
    StorageChanged {
        addr: Address,
        key: H256,
        prev: Option<H256>,
    },
}

/// The replicated world state of the simulated chain.
#[derive(Clone, Debug)]
pub struct WorldState {
    base: Arc<StateData>,
    overlay_accounts: HashMap<Address, AccountInfo>,
    /// May contain zero values: tombstones masking non-zero base entries.
    overlay_storage: HashMap<(Address, H256), H256>,
    journal: Vec<JournalEntry>,
    /// Overlay size at which `commit` rebuilds a fork-shared base; see
    /// [`WorldState::SHARED_BASE_REBUILD_THRESHOLD`].
    rebuild_threshold: usize,
    /// Active read/write-set recorder (`None` = recording off, the normal
    /// sequential-execution mode — recording costs one null check when
    /// off). Boxed to keep the idle `WorldState` small; a `fork()` always
    /// starts with recording off.
    touch: Option<Box<TouchSet>>,
}

impl Default for WorldState {
    fn default() -> Self {
        WorldState {
            base: Arc::default(),
            overlay_accounts: HashMap::new(),
            overlay_storage: HashMap::new(),
            journal: Vec::new(),
            rebuild_threshold: Self::SHARED_BASE_REBUILD_THRESHOLD,
            touch: None,
        }
    }
}

/// A snapshot handle from [`WorldState::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot(usize);

impl WorldState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account info, if the account exists.
    pub fn account(&self, addr: Address) -> Option<&AccountInfo> {
        self.overlay_accounts
            .get(&addr)
            .or_else(|| self.base.accounts.get(&addr))
    }

    /// True iff the account exists (has been touched with funds, a nonce,
    /// or code).
    pub fn exists(&self, addr: Address) -> bool {
        self.account(addr).is_some()
    }

    /// Current balance in wei (0 for absent accounts).
    pub fn balance(&self, addr: Address) -> u128 {
        self.account(addr).map(|a| a.balance).unwrap_or(0)
    }

    /// Current nonce (0 for absent accounts).
    pub fn nonce(&self, addr: Address) -> u64 {
        self.account(addr).map(|a| a.nonce).unwrap_or(0)
    }

    /// True iff `addr` hosts a contract.
    pub fn is_contract(&self, addr: Address) -> bool {
        self.account(addr).map(|a| a.is_contract).unwrap_or(false)
    }

    // ---- Touch recording (parallel block execution support) ----

    /// Start recording this state's read/write footprint into a fresh
    /// [`TouchSet`] (retrieved with [`Self::take_touch_set`]). Used by the
    /// parallel block pipeline on per-transaction forks.
    pub fn begin_touch_recording(&mut self) {
        self.touch = Some(Box::default());
    }

    /// Stop recording and return the footprint accumulated since
    /// [`Self::begin_touch_recording`] (empty set if recording was off).
    pub fn take_touch_set(&mut self) -> TouchSet {
        self.touch.take().map(|b| *b).unwrap_or_default()
    }

    #[inline]
    fn touch_account_read(&mut self, addr: Address) {
        if let Some(touch) = &mut self.touch {
            touch.account_reads.insert(addr);
        }
    }

    #[inline]
    fn touch_account_write(&mut self, addr: Address) {
        if let Some(touch) = &mut self.touch {
            touch.account_writes.insert(addr);
        }
    }

    #[inline]
    fn touch_storage_read(&mut self, addr: Address, key: H256) {
        if let Some(touch) = &mut self.touch {
            touch.storage_reads.insert((addr, key));
        }
    }

    #[inline]
    fn touch_storage_write(&mut self, addr: Address, key: H256) {
        if let Some(touch) = &mut self.touch {
            touch.storage_writes.insert((addr, key));
        }
    }

    /// [`Self::balance`] with touch recording — the execution path's read.
    pub fn balance_tracked(&mut self, addr: Address) -> u128 {
        self.touch_account_read(addr);
        self.balance(addr)
    }

    /// [`Self::nonce`] with touch recording.
    pub fn nonce_tracked(&mut self, addr: Address) -> u64 {
        self.touch_account_read(addr);
        self.nonce(addr)
    }

    /// [`Self::exists`] with touch recording.
    pub fn exists_tracked(&mut self, addr: Address) -> bool {
        self.touch_account_read(addr);
        self.exists(addr)
    }

    /// [`Self::storage_get`] with touch recording — the execution path's
    /// slot read.
    pub fn storage_get_tracked(&mut self, addr: Address, key: H256) -> H256 {
        self.touch_storage_read(addr, key);
        self.storage_get(addr, key)
    }

    /// Journal the current overlay entry for `addr` and return a mutable
    /// overlay slot holding the account's current value (copied up from the
    /// base, or fresh for new accounts).
    ///
    /// Records both a touch *read* and *write*: the copy-up observes the
    /// account's current value, and callers mutate the returned slot.
    fn account_mut(&mut self, addr: Address) -> &mut AccountInfo {
        self.touch_account_read(addr);
        self.touch_account_write(addr);
        let prev = self.overlay_accounts.get(&addr).cloned();
        self.journal
            .push(JournalEntry::AccountChanged { addr, prev });
        let base = &self.base;
        self.overlay_accounts
            .entry(addr)
            .or_insert_with(|| base.accounts.get(&addr).cloned().unwrap_or_default())
    }

    /// Create (or overwrite the balance of) an account — used for genesis
    /// alloc. Journaled like every other write.
    pub fn create_account(&mut self, addr: Address, balance: u128) {
        self.account_mut(addr).balance = balance;
    }

    /// Mark `addr` as a deployed contract with a given code length.
    pub fn set_contract(&mut self, addr: Address, code_len: usize) {
        let account = self.account_mut(addr);
        account.is_contract = true;
        account.code_len = code_len;
    }

    /// Set the balance (journaled).
    pub fn set_balance(&mut self, addr: Address, balance: u128) {
        self.account_mut(addr).balance = balance;
    }

    /// Credit wei to an account.
    pub fn credit(&mut self, addr: Address, amount: u128) {
        let new = self.balance(addr).saturating_add(amount);
        self.set_balance(addr, new);
    }

    /// Debit wei from an account; `false` (and no change) on insufficient
    /// funds.
    pub fn debit(&mut self, addr: Address, amount: u128) -> bool {
        // The balance check is a semantic read even on the refusal path: a
        // speculation that failed here must conflict with an earlier credit.
        self.touch_account_read(addr);
        let current = self.balance(addr);
        if current < amount {
            return false;
        }
        self.set_balance(addr, current - amount);
        true
    }

    /// Increment the nonce (journaled).
    pub fn bump_nonce(&mut self, addr: Address) {
        self.account_mut(addr).nonce += 1;
    }

    /// Read a storage slot (zero for never-written slots, like the EVM).
    pub fn storage_get(&self, addr: Address, key: H256) -> H256 {
        self.overlay_storage
            .get(&(addr, key))
            .or_else(|| self.base.storage.get(&(addr, key)))
            .copied()
            .unwrap_or(H256::ZERO)
    }

    /// Write a storage slot (journaled). Writing zero clears the slot.
    pub fn storage_set(&mut self, addr: Address, key: H256, value: H256) {
        self.touch_storage_write(addr, key);
        let slot = (addr, key);
        let prev = self.overlay_storage.get(&slot).copied();
        self.journal
            .push(JournalEntry::StorageChanged { addr, key, prev });
        if value.is_zero() && !self.base.storage.contains_key(&slot) {
            // Nothing to mask in the base: clearing really removes.
            self.overlay_storage.remove(&slot);
        } else {
            // Non-zero write, or a zero tombstone masking a base entry.
            self.overlay_storage.insert(slot, value);
        }
    }

    /// Convenience: read a slot as a [`U256`].
    pub fn storage_get_u256(&self, addr: Address, key: H256) -> U256 {
        self.storage_get(addr, key).to_u256()
    }

    /// Convenience: write a slot from a [`U256`].
    pub fn storage_set_u256(&mut self, addr: Address, key: H256, value: U256) {
        self.storage_set(addr, key, H256::from_u256(value));
    }

    /// Number of live (non-zero) storage slots for `addr`. O(state size) —
    /// a diagnostics/test helper, never on the execution path.
    pub fn storage_slot_count(&self, addr: Address) -> usize {
        let in_overlay = self
            .overlay_storage
            .iter()
            .filter(|((a, _), v)| *a == addr && !v.is_zero())
            .count();
        let in_base = self
            .base
            .storage
            .keys()
            .filter(|(a, k)| *a == addr && !self.overlay_storage.contains_key(&(*a, *k)))
            .count();
        in_overlay + in_base
    }

    /// Take a snapshot; a later [`WorldState::revert_to`] undoes every write
    /// made since. O(1): the snapshot is just the journal length.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.journal.len())
    }

    /// Undo all writes made after `snapshot` (in reverse order). O(entries
    /// written since the snapshot).
    pub fn revert_to(&mut self, snapshot: Snapshot) {
        while self.journal.len() > snapshot.0 {
            match self.journal.pop().expect("len checked") {
                JournalEntry::AccountChanged { addr, prev } => match prev {
                    Some(info) => {
                        self.overlay_accounts.insert(addr, info);
                    }
                    None => {
                        self.overlay_accounts.remove(&addr);
                    }
                },
                JournalEntry::StorageChanged { addr, key, prev } => match prev {
                    Some(value) => {
                        self.overlay_storage.insert((addr, key), value);
                    }
                    None => {
                        self.overlay_storage.remove(&(addr, key));
                    }
                },
            }
        }
    }

    /// Default overlay size at which a shared base is rebuilt rather than
    /// letting the overlay keep growing (see [`WorldState::commit`]).
    ///
    /// Measured by the `commit_threshold_sweep` experiment in `smacs-bench`
    /// (256 blocks × 64 fresh writes committed while a live fork pins a
    /// 100k-slot base, release build, reference container): small
    /// thresholds pay the O(world) rebuild repeatedly (up to ~4× per-block
    /// commit cost at 1024 in quiet runs; noisier under load), while at
    /// 65536 the overlay never flattens, so every later `fork()` — the
    /// Token Service's per-request validation path — re-clones ~16k
    /// accumulated entries (~200–400 µs vs ~30 ns; the robust signal in
    /// every run). 4096–16384 sit on the flat floor of both axes, so the
    /// original 8192 stands as a measured value; the sweep re-checks it
    /// whenever commit/fork internals change.
    pub const SHARED_BASE_REBUILD_THRESHOLD: usize = 8_192;

    /// Override the shared-base rebuild threshold (bench/diagnostic knob;
    /// the default is [`Self::SHARED_BASE_REBUILD_THRESHOLD`]).
    pub fn set_rebuild_threshold(&mut self, overlay_entries: usize) {
        self.rebuild_threshold = overlay_entries.max(1);
    }

    /// Discard journal history (e.g. after a block commits) and flatten the
    /// overlay into the frozen base. Snapshots taken before this call must
    /// not be used afterwards.
    ///
    /// When no fork shares the base the flatten is in place —
    /// O(overlay entries). While forks hold the base alive the overlay
    /// accumulates instead; once it crosses
    /// [`Self::SHARED_BASE_REBUILD_THRESHOLD`] the base is rebuilt by a
    /// one-time O(world) copy so a long-lived fork (the Token Service's
    /// standing testnet) cannot degrade later `fork()` calls back to
    /// O(all writes since).
    pub fn commit(&mut self) {
        self.journal.clear();
        if self.overlay_accounts.is_empty() && self.overlay_storage.is_empty() {
            return;
        }
        if Arc::get_mut(&mut self.base).is_none() {
            // Base shared by live forks. Small overlays just keep
            // accumulating; past the threshold, pay one O(world) copy for a
            // private base (forks keep the old Arc untouched).
            if self.overlay_len() < self.rebuild_threshold {
                return;
            }
            self.base = Arc::new((*self.base).clone());
        }
        let base = Arc::get_mut(&mut self.base).expect("unique by construction above");
        // `mem::take` (not `drain`) so the overlay maps drop their bucket
        // arrays: a retained 100k-bucket capacity would make every later
        // clone/iteration of the "empty" overlay O(capacity) — exactly the
        // hidden O(world) cost this design removes.
        for (addr, info) in std::mem::take(&mut self.overlay_accounts) {
            base.accounts.insert(addr, info);
        }
        for (slot, value) in std::mem::take(&mut self.overlay_storage) {
            if value.is_zero() {
                base.storage.remove(&slot);
            } else {
                base.storage.insert(slot, value);
            }
        }
    }

    /// Fork the state for off-chain simulation (§V): the frozen base is
    /// shared (an `Arc` refcount bump) and only the overlay is copied, so
    /// forking a freshly committed state is O(1) in the world size. Writes
    /// on either side are invisible to the other.
    pub fn fork(&self) -> WorldState {
        WorldState {
            base: Arc::clone(&self.base),
            overlay_accounts: self.overlay_accounts.clone(),
            overlay_storage: self.overlay_storage.clone(),
            journal: Vec::new(),
            rebuild_threshold: self.rebuild_threshold,
            touch: None,
        }
    }

    /// Overwrite an account's full info (journaled). Used by the parallel
    /// block pipeline to apply a validated speculation's writes to the
    /// canonical state.
    pub fn apply_account(&mut self, addr: Address, info: AccountInfo) {
        *self.account_mut(addr) = info;
    }

    /// A deterministic digest of the complete merged state (accounts +
    /// non-zero storage, sorted) — the simulator's stand-in for a state
    /// root. O(world size): a test/diagnostic helper, never on the
    /// execution path.
    pub fn state_digest(&self) -> H256 {
        let mut accounts: BTreeMap<Address, &AccountInfo> = BTreeMap::new();
        for (addr, info) in self.base.accounts.iter().chain(&self.overlay_accounts) {
            accounts.insert(*addr, info); // overlay chained last: it wins
        }
        let mut storage: BTreeMap<(Address, H256), H256> = BTreeMap::new();
        for (&slot, &value) in self.base.storage.iter().chain(&self.overlay_storage) {
            if value.is_zero() {
                storage.remove(&slot); // overlay tombstone masks the base
            } else {
                storage.insert(slot, value);
            }
        }
        let mut buf = Vec::with_capacity(accounts.len() * 41 + storage.len() * 84);
        for (addr, info) in accounts {
            buf.extend_from_slice(addr.as_bytes());
            buf.extend_from_slice(&info.nonce.to_be_bytes());
            buf.extend_from_slice(&info.balance.to_be_bytes());
            buf.extend_from_slice(&(info.code_len as u64).to_be_bytes());
            buf.push(info.is_contract as u8);
        }
        for ((addr, key), value) in storage {
            buf.extend_from_slice(addr.as_bytes());
            buf.extend_from_slice(key.as_bytes());
            buf.extend_from_slice(value.as_bytes());
        }
        keccak256(&buf)
    }

    /// Number of uncommitted-or-unflattened overlay entries (diagnostics).
    pub fn overlay_len(&self) -> usize {
        self.overlay_accounts.len() + self.overlay_storage.len()
    }

    /// Number of journal entries since the last commit (diagnostics).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    fn key(n: u64) -> H256 {
        H256::from_u256(U256::from_u64(n))
    }

    #[test]
    fn balances_credit_debit() {
        let mut state = WorldState::new();
        state.credit(addr(1), 100);
        assert_eq!(state.balance(addr(1)), 100);
        assert!(state.debit(addr(1), 60));
        assert_eq!(state.balance(addr(1)), 40);
        assert!(!state.debit(addr(1), 41));
        assert_eq!(state.balance(addr(1)), 40);
    }

    #[test]
    fn storage_defaults_to_zero() {
        let state = WorldState::new();
        assert_eq!(state.storage_get(addr(1), key(0)), H256::ZERO);
    }

    #[test]
    fn storage_set_get_clear() {
        let mut state = WorldState::new();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(7));
        assert_eq!(state.storage_get_u256(addr(1), key(0)), U256::from_u64(7));
        assert_eq!(state.storage_slot_count(addr(1)), 1);
        state.storage_set_u256(addr(1), key(0), U256::ZERO);
        assert_eq!(state.storage_slot_count(addr(1)), 0);
    }

    #[test]
    fn snapshot_revert_restores_everything() {
        let mut state = WorldState::new();
        state.credit(addr(1), 100);
        state.storage_set_u256(addr(2), key(5), U256::from_u64(1));
        let snap = state.snapshot();

        state.debit(addr(1), 30);
        state.bump_nonce(addr(1));
        state.storage_set_u256(addr(2), key(5), U256::from_u64(2));
        state.storage_set_u256(addr(2), key(6), U256::from_u64(3));
        state.credit(addr(3), 55);

        state.revert_to(snap);
        assert_eq!(state.balance(addr(1)), 100);
        assert_eq!(state.nonce(addr(1)), 0);
        assert_eq!(state.storage_get_u256(addr(2), key(5)), U256::from_u64(1));
        assert_eq!(state.storage_get_u256(addr(2), key(6)), U256::ZERO);
        assert!(!state.exists(addr(3)));
    }

    #[test]
    fn nested_snapshots() {
        let mut state = WorldState::new();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(1));
        let outer = state.snapshot();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(2));
        let inner = state.snapshot();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(3));
        state.revert_to(inner);
        assert_eq!(state.storage_get_u256(addr(1), key(0)), U256::from_u64(2));
        state.revert_to(outer);
        assert_eq!(state.storage_get_u256(addr(1), key(0)), U256::from_u64(1));
    }

    #[test]
    fn fork_is_isolated() {
        let mut state = WorldState::new();
        state.credit(addr(1), 10);
        let mut fork = state.fork();
        fork.credit(addr(1), 90);
        fork.storage_set_u256(addr(2), key(0), U256::from_u64(9));
        assert_eq!(state.balance(addr(1)), 10);
        assert_eq!(state.storage_get_u256(addr(2), key(0)), U256::ZERO);
        assert_eq!(fork.balance(addr(1)), 100);
    }

    #[test]
    fn fork_of_committed_state_shares_base_and_copies_nothing() {
        let mut state = WorldState::new();
        for i in 0..100 {
            state.storage_set_u256(addr(7), key(i), U256::from_u64(i + 1));
        }
        state.commit(); // flattens: overlay becomes empty
        assert_eq!(state.overlay_len(), 0);

        let fork = state.fork();
        assert_eq!(fork.overlay_len(), 0);
        assert_eq!(fork.storage_get_u256(addr(7), key(42)), U256::from_u64(43));

        // Writes on the original while the fork is alive stay in the
        // overlay (base is shared), and the fork never sees them.
        state.storage_set_u256(addr(7), key(42), U256::from_u64(999));
        state.commit();
        assert!(state.overlay_len() > 0, "base is shared; no flatten");
        assert_eq!(fork.storage_get_u256(addr(7), key(42)), U256::from_u64(43));
        assert_eq!(
            state.storage_get_u256(addr(7), key(42)),
            U256::from_u64(999)
        );

        // Once the fork drops, the next commit flattens again.
        drop(fork);
        state.commit();
        assert_eq!(state.overlay_len(), 0);
        assert_eq!(
            state.storage_get_u256(addr(7), key(42)),
            U256::from_u64(999)
        );
    }

    #[test]
    fn shared_base_rebuilds_once_overlay_crosses_threshold() {
        let mut state = WorldState::new();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(5));
        state.commit();
        let fork = state.fork(); // base now shared, blocking in-place flatten

        // Push the overlay past the rebuild threshold.
        let writes = WorldState::SHARED_BASE_REBUILD_THRESHOLD as u64 + 10;
        for i in 0..writes {
            state.storage_set_u256(addr(2), key(i), U256::from_u64(i + 1));
        }
        state.commit();
        // The base was rebuilt: overlay flattened despite the live fork.
        assert_eq!(state.overlay_len(), 0);
        assert_eq!(state.storage_get_u256(addr(2), key(7)), U256::from_u64(8));
        // The fork still reads the old base, untouched.
        assert_eq!(fork.storage_get_u256(addr(1), key(0)), U256::from_u64(5));
        assert_eq!(fork.storage_get_u256(addr(2), key(7)), U256::ZERO);
    }

    #[test]
    fn zero_write_masks_base_entry() {
        let mut state = WorldState::new();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(5));
        state.commit(); // 5 now lives in the base
        let snap = state.snapshot();
        state.storage_set_u256(addr(1), key(0), U256::ZERO);
        assert_eq!(state.storage_get_u256(addr(1), key(0)), U256::ZERO);
        assert_eq!(state.storage_slot_count(addr(1)), 0);
        state.revert_to(snap);
        assert_eq!(state.storage_get_u256(addr(1), key(0)), U256::from_u64(5));
    }

    #[test]
    fn revert_over_base_resident_account_restores_read_through() {
        let mut state = WorldState::new();
        state.credit(addr(1), 100);
        state.commit(); // account now lives in the base
        let snap = state.snapshot();
        state.debit(addr(1), 40);
        state.bump_nonce(addr(1));
        state.revert_to(snap);
        assert_eq!(state.balance(addr(1)), 100);
        assert_eq!(state.nonce(addr(1)), 0);
        // The copy-up was rolled back entirely: reads go to the base again.
        assert_eq!(state.overlay_len(), 0);
    }

    #[test]
    fn touch_recording_captures_reads_and_writes() {
        let mut state = WorldState::new();
        state.credit(addr(1), 100);
        state.storage_set_u256(addr(2), key(5), U256::from_u64(9));
        state.commit();

        state.begin_touch_recording();
        let _ = state.balance_tracked(addr(1));
        let _ = state.storage_get_tracked(addr(2), key(5));
        state.debit(addr(1), 10); // read (check) + write via account_mut
        state.storage_set_u256(addr(2), key(6), U256::from_u64(1));
        let touch = state.take_touch_set();

        assert!(touch.account_reads.contains(&addr(1)));
        assert!(touch.account_writes.contains(&addr(1)));
        assert!(touch.storage_reads.contains(&(addr(2), key(5))));
        assert!(touch.storage_writes.contains(&(addr(2), key(6))));
        assert!(!touch.storage_writes.contains(&(addr(2), key(5))));

        // Recording stopped: further ops leave no trace.
        state.credit(addr(3), 1);
        assert!(state.take_touch_set().is_empty());
    }

    #[test]
    fn touch_conflict_rule() {
        let mut a = TouchSet::default();
        a.storage_reads.insert((addr(1), key(0)));
        let mut writes = TouchSet::default();
        assert!(!a.conflicts_with_writes(&writes));
        writes.storage_writes.insert((addr(1), key(0)));
        assert!(a.conflicts_with_writes(&writes));

        let mut b = TouchSet::default();
        b.account_reads.insert(addr(7));
        assert!(!b.conflicts_with_writes(&writes));
        let mut other = TouchSet::default();
        other.account_writes.insert(addr(7));
        writes.absorb_writes(&other);
        assert!(b.conflicts_with_writes(&writes));
    }

    #[test]
    fn state_digest_tracks_merged_view() {
        let mut a = WorldState::new();
        a.credit(addr(1), 5);
        a.storage_set_u256(addr(2), key(0), U256::from_u64(3));
        a.commit();
        // Same logical state reached by a different path (overlay vs base).
        let mut b = WorldState::new();
        b.storage_set_u256(addr(2), key(0), U256::from_u64(3));
        b.credit(addr(1), 2);
        b.credit(addr(1), 3);
        assert_eq!(a.state_digest(), b.state_digest());

        b.storage_set_u256(addr(2), key(0), U256::from_u64(4));
        assert_ne!(a.state_digest(), b.state_digest());
        // Clearing a slot equals never writing it.
        b.storage_set_u256(addr(2), key(0), U256::ZERO);
        let mut c = WorldState::new();
        c.credit(addr(1), 5);
        assert_eq!(b.state_digest(), c.state_digest());
    }

    #[test]
    fn contract_marking() {
        let mut state = WorldState::new();
        state.set_contract(addr(7), 1234);
        assert!(state.is_contract(addr(7)));
        assert_eq!(state.account(addr(7)).unwrap().code_len, 1234);
        assert!(!state.is_contract(addr(8)));
    }

    proptest! {
        #[test]
        fn prop_revert_restores_storage(
            writes in prop::collection::vec((0u64..4, 0u64..4, any::<u64>()), 1..24),
            split in 0usize..24,
        ) {
            let mut state = WorldState::new();
            let split = split.min(writes.len());
            for (a, k, v) in &writes[..split] {
                state.storage_set_u256(addr(*a), key(*k), U256::from_u64(*v));
            }
            // Record state before the snapshot region.
            let mut expected = std::collections::HashMap::new();
            for a in 0..4u64 {
                for k in 0..4u64 {
                    expected.insert((a, k), state.storage_get_u256(addr(a), key(k)));
                }
            }
            let snap = state.snapshot();
            for (a, k, v) in &writes[split..] {
                state.storage_set_u256(addr(*a), key(*k), U256::from_u64(*v));
            }
            state.revert_to(snap);
            for ((a, k), v) in expected {
                prop_assert_eq!(state.storage_get_u256(addr(a), key(k)), v);
            }
        }
    }
}
