//! World state: accounts, balances, nonces, contract storage — with a
//! write journal supporting nested snapshots and reverts.
//!
//! All persistent contract data lives here (as in the EVM's storage trie),
//! keyed by `(contract address, 32-byte slot)`. Contracts themselves are
//! stateless logic (see [`crate::contract`]); that separation is what makes
//! snapshot/revert, `eth_call`-style dry runs, and TS-side testnet forking
//! uniform and cheap.

use serde::{Deserialize, Serialize};
use smacs_primitives::{Address, H256, U256};
use std::collections::HashMap;

/// Per-account data.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountInfo {
    /// Transaction count for EOAs / creation count for contracts. The
    /// nonce is Ethereum's replay protection (§II-C).
    pub nonce: u64,
    /// Balance in wei.
    pub balance: u128,
    /// Length in bytes of the deployed code image (zero for EOAs). The
    /// simulator does not store bytecode — contracts are Rust values — but
    /// the length drives the code-deposit gas charge at deployment.
    pub code_len: usize,
    /// Whether this address hosts a contract.
    pub is_contract: bool,
}

#[derive(Clone, Debug)]
enum JournalEntry {
    StorageChanged {
        addr: Address,
        key: H256,
        prev: Option<H256>,
    },
    BalanceChanged {
        addr: Address,
        prev: u128,
    },
    NonceChanged {
        addr: Address,
        prev: u64,
    },
    AccountCreated {
        addr: Address,
    },
}

/// The replicated world state of the simulated chain.
#[derive(Clone, Debug, Default)]
pub struct WorldState {
    accounts: HashMap<Address, AccountInfo>,
    storage: HashMap<(Address, H256), H256>,
    journal: Vec<JournalEntry>,
}

/// A snapshot handle from [`WorldState::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot(usize);

impl WorldState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account info, if the account exists.
    pub fn account(&self, addr: Address) -> Option<&AccountInfo> {
        self.accounts.get(&addr)
    }

    /// True iff the account exists (has been touched with funds, a nonce,
    /// or code).
    pub fn exists(&self, addr: Address) -> bool {
        self.accounts.contains_key(&addr)
    }

    /// Current balance in wei (0 for absent accounts).
    pub fn balance(&self, addr: Address) -> u128 {
        self.accounts.get(&addr).map(|a| a.balance).unwrap_or(0)
    }

    /// Current nonce (0 for absent accounts).
    pub fn nonce(&self, addr: Address) -> u64 {
        self.accounts.get(&addr).map(|a| a.nonce).unwrap_or(0)
    }

    /// True iff `addr` hosts a contract.
    pub fn is_contract(&self, addr: Address) -> bool {
        self.accounts
            .get(&addr)
            .map(|a| a.is_contract)
            .unwrap_or(false)
    }

    fn ensure_account(&mut self, addr: Address) -> &mut AccountInfo {
        if !self.accounts.contains_key(&addr) {
            self.journal.push(JournalEntry::AccountCreated { addr });
            self.accounts.insert(addr, AccountInfo::default());
        }
        self.accounts.get_mut(&addr).expect("just inserted")
    }

    /// Create (or overwrite) an account outright — used for genesis alloc.
    pub fn create_account(&mut self, addr: Address, balance: u128) {
        let account = self.ensure_account(addr);
        account.balance = balance;
    }

    /// Mark `addr` as a deployed contract with a given code length.
    pub fn set_contract(&mut self, addr: Address, code_len: usize) {
        let account = self.ensure_account(addr);
        account.is_contract = true;
        account.code_len = code_len;
    }

    /// Set the balance (journaled).
    pub fn set_balance(&mut self, addr: Address, balance: u128) {
        let prev = self.balance(addr);
        self.ensure_account(addr);
        self.journal.push(JournalEntry::BalanceChanged { addr, prev });
        self.accounts.get_mut(&addr).expect("ensured").balance = balance;
    }

    /// Credit wei to an account.
    pub fn credit(&mut self, addr: Address, amount: u128) {
        let new = self.balance(addr).saturating_add(amount);
        self.set_balance(addr, new);
    }

    /// Debit wei from an account; `false` (and no change) on insufficient
    /// funds.
    pub fn debit(&mut self, addr: Address, amount: u128) -> bool {
        let current = self.balance(addr);
        if current < amount {
            return false;
        }
        self.set_balance(addr, current - amount);
        true
    }

    /// Increment the nonce (journaled).
    pub fn bump_nonce(&mut self, addr: Address) {
        let prev = self.nonce(addr);
        self.ensure_account(addr);
        self.journal.push(JournalEntry::NonceChanged { addr, prev });
        self.accounts.get_mut(&addr).expect("ensured").nonce = prev + 1;
    }

    /// Read a storage slot (zero for never-written slots, like the EVM).
    pub fn storage_get(&self, addr: Address, key: H256) -> H256 {
        self.storage.get(&(addr, key)).copied().unwrap_or(H256::ZERO)
    }

    /// Write a storage slot (journaled). Writing zero clears the slot.
    pub fn storage_set(&mut self, addr: Address, key: H256, value: H256) {
        let prev = self.storage.get(&(addr, key)).copied();
        self.journal.push(JournalEntry::StorageChanged { addr, key, prev });
        if value.is_zero() {
            self.storage.remove(&(addr, key));
        } else {
            self.storage.insert((addr, key), value);
        }
    }

    /// Convenience: read a slot as a [`U256`].
    pub fn storage_get_u256(&self, addr: Address, key: H256) -> U256 {
        self.storage_get(addr, key).to_u256()
    }

    /// Convenience: write a slot from a [`U256`].
    pub fn storage_set_u256(&mut self, addr: Address, key: H256, value: U256) {
        self.storage_set(addr, key, H256::from_u256(value));
    }

    /// Number of live (non-zero) storage slots for `addr`.
    pub fn storage_slot_count(&self, addr: Address) -> usize {
        self.storage.keys().filter(|(a, _)| *a == addr).count()
    }

    /// Take a snapshot; a later [`WorldState::revert_to`] undoes every write
    /// made since.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.journal.len())
    }

    /// Undo all writes made after `snapshot` (in reverse order).
    pub fn revert_to(&mut self, snapshot: Snapshot) {
        while self.journal.len() > snapshot.0 {
            match self.journal.pop().expect("len checked") {
                JournalEntry::StorageChanged { addr, key, prev } => match prev {
                    Some(v) if !v.is_zero() => {
                        self.storage.insert((addr, key), v);
                    }
                    _ => {
                        self.storage.remove(&(addr, key));
                    }
                },
                JournalEntry::BalanceChanged { addr, prev } => {
                    if let Some(acct) = self.accounts.get_mut(&addr) {
                        acct.balance = prev;
                    }
                }
                JournalEntry::NonceChanged { addr, prev } => {
                    if let Some(acct) = self.accounts.get_mut(&addr) {
                        acct.nonce = prev;
                    }
                }
                JournalEntry::AccountCreated { addr } => {
                    self.accounts.remove(&addr);
                }
            }
        }
    }

    /// Discard journal history (e.g. after a block commits). Snapshots taken
    /// before this call must not be used afterwards.
    pub fn commit(&mut self) {
        self.journal.clear();
    }

    /// Deep-copy the state — the TS uses this to run candidate transactions
    /// on an isolated off-chain fork (§V).
    pub fn fork(&self) -> WorldState {
        WorldState {
            accounts: self.accounts.clone(),
            storage: self.storage.clone(),
            journal: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    fn key(n: u64) -> H256 {
        H256::from_u256(U256::from_u64(n))
    }

    #[test]
    fn balances_credit_debit() {
        let mut state = WorldState::new();
        state.credit(addr(1), 100);
        assert_eq!(state.balance(addr(1)), 100);
        assert!(state.debit(addr(1), 60));
        assert_eq!(state.balance(addr(1)), 40);
        assert!(!state.debit(addr(1), 41));
        assert_eq!(state.balance(addr(1)), 40);
    }

    #[test]
    fn storage_defaults_to_zero() {
        let state = WorldState::new();
        assert_eq!(state.storage_get(addr(1), key(0)), H256::ZERO);
    }

    #[test]
    fn storage_set_get_clear() {
        let mut state = WorldState::new();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(7));
        assert_eq!(state.storage_get_u256(addr(1), key(0)), U256::from_u64(7));
        assert_eq!(state.storage_slot_count(addr(1)), 1);
        state.storage_set_u256(addr(1), key(0), U256::ZERO);
        assert_eq!(state.storage_slot_count(addr(1)), 0);
    }

    #[test]
    fn snapshot_revert_restores_everything() {
        let mut state = WorldState::new();
        state.credit(addr(1), 100);
        state.storage_set_u256(addr(2), key(5), U256::from_u64(1));
        let snap = state.snapshot();

        state.debit(addr(1), 30);
        state.bump_nonce(addr(1));
        state.storage_set_u256(addr(2), key(5), U256::from_u64(2));
        state.storage_set_u256(addr(2), key(6), U256::from_u64(3));
        state.credit(addr(3), 55);

        state.revert_to(snap);
        assert_eq!(state.balance(addr(1)), 100);
        assert_eq!(state.nonce(addr(1)), 0);
        assert_eq!(state.storage_get_u256(addr(2), key(5)), U256::from_u64(1));
        assert_eq!(state.storage_get_u256(addr(2), key(6)), U256::ZERO);
        assert!(!state.exists(addr(3)));
    }

    #[test]
    fn nested_snapshots() {
        let mut state = WorldState::new();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(1));
        let outer = state.snapshot();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(2));
        let inner = state.snapshot();
        state.storage_set_u256(addr(1), key(0), U256::from_u64(3));
        state.revert_to(inner);
        assert_eq!(state.storage_get_u256(addr(1), key(0)), U256::from_u64(2));
        state.revert_to(outer);
        assert_eq!(state.storage_get_u256(addr(1), key(0)), U256::from_u64(1));
    }

    #[test]
    fn fork_is_isolated() {
        let mut state = WorldState::new();
        state.credit(addr(1), 10);
        let mut fork = state.fork();
        fork.credit(addr(1), 90);
        fork.storage_set_u256(addr(2), key(0), U256::from_u64(9));
        assert_eq!(state.balance(addr(1)), 10);
        assert_eq!(state.storage_get_u256(addr(2), key(0)), U256::ZERO);
        assert_eq!(fork.balance(addr(1)), 100);
    }

    #[test]
    fn contract_marking() {
        let mut state = WorldState::new();
        state.set_contract(addr(7), 1234);
        assert!(state.is_contract(addr(7)));
        assert_eq!(state.account(addr(7)).unwrap().code_len, 1234);
        assert!(!state.is_contract(addr(8)));
    }

    proptest! {
        #[test]
        fn prop_revert_restores_storage(
            writes in prop::collection::vec((0u64..4, 0u64..4, any::<u64>()), 1..24),
            split in 0usize..24,
        ) {
            let mut state = WorldState::new();
            let split = split.min(writes.len());
            for (a, k, v) in &writes[..split] {
                state.storage_set_u256(addr(*a), key(*k), U256::from_u64(*v));
            }
            // Record state before the snapshot region.
            let mut expected = std::collections::HashMap::new();
            for a in 0..4u64 {
                for k in 0..4u64 {
                    expected.insert((a, k), state.storage_get_u256(addr(a), key(k)));
                }
            }
            let snap = state.snapshot();
            for (a, k, v) in &writes[split..] {
                state.storage_set_u256(addr(*a), key(*k), U256::from_u64(*v));
            }
            state.revert_to(snap);
            for ((a, k), v) in expected {
                prop_assert_eq!(state.storage_get_u256(addr(a), key(k)), v);
            }
        }
    }
}
