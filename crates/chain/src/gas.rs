//! Gas accounting: schedule, meter, and labeled cost breakdowns.
//!
//! The schedule uses the Yellow-Paper constants of the paper's era
//! (pre-Istanbul, matching Solidity v0.4.24 deployments): 68 gas per
//! non-zero calldata byte, `SLOAD` at 200, `SSTORE` at 20000/5000, and the
//! 3000-gas `ecrecover` precompile. Experiments additionally need the
//! paper's *component* splits (Tables II and III report Verify / Misc /
//! Bitmap / Parse separately), so the meter supports named sections: gas
//! charged while a section is open is attributed to its label, and the
//! remainder of a transaction is reported as `misc`.

use std::collections::BTreeMap;
use std::fmt;

/// Yellow-Paper-derived gas cost constants.
#[derive(Clone, Debug)]
pub struct GasSchedule {
    /// Base cost of any transaction (`G_transaction`).
    pub tx_base: u64,
    /// Per zero byte of transaction data (`G_txdatazero`).
    pub tx_data_zero: u64,
    /// Per non-zero byte of transaction data (`G_txdatanonzero`).
    pub tx_data_nonzero: u64,
    /// Surcharge for contract-creating transactions (`G_txcreate`).
    pub tx_create: u64,
    /// Storage read (`G_sload`).
    pub sload: u64,
    /// Storage write: zero → non-zero (`G_sset`).
    pub sset: u64,
    /// Storage write: non-zero → any (`G_sreset`).
    pub sreset: u64,
    /// Refund for clearing a storage slot (`R_sclear`).
    pub sclear_refund: u64,
    /// Base cost of keccak256 (`G_sha3`).
    pub keccak_base: u64,
    /// Per 32-byte word hashed (`G_sha3word`).
    pub keccak_word: u64,
    /// Base cost of a message call (`G_call`).
    pub call_base: u64,
    /// Surcharge for a value-transferring call (`G_callvalue`).
    pub call_value: u64,
    /// Stipend given to the callee of a value transfer (`G_callstipend`).
    pub call_stipend: u64,
    /// Cost of creating a new account via transfer (`G_newaccount`).
    pub new_account: u64,
    /// Base cost of a LOG operation (`G_log`).
    pub log_base: u64,
    /// Per log topic (`G_logtopic`).
    pub log_topic: u64,
    /// Per byte of log data (`G_logdata`).
    pub log_data: u64,
    /// Per byte of deployed contract code (`G_codedeposit`).
    pub code_deposit: u64,
    /// `ecrecover` precompile.
    pub ecrecover: u64,
    /// Per 32-byte word of memory/calldata copying (`G_copy`).
    pub copy_word: u64,
    /// Charge for simple computation, per abstract "step". Contracts written
    /// in Rust call [`super::exec::CallContext::charge_compute`] with step
    /// counts calibrated to the Solidity code they model.
    pub compute_step: u64,
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            tx_base: 21_000,
            tx_data_zero: 4,
            tx_data_nonzero: 68,
            tx_create: 32_000,
            sload: 200,
            sset: 20_000,
            sreset: 5_000,
            sclear_refund: 15_000,
            keccak_base: 30,
            keccak_word: 6,
            call_base: 700,
            call_value: 9_000,
            call_stipend: 2_300,
            new_account: 25_000,
            log_base: 375,
            log_topic: 375,
            log_data: 8,
            code_deposit: 200,
            ecrecover: 3_000,
            copy_word: 3,
            compute_step: 1,
        }
    }
}

impl GasSchedule {
    /// Intrinsic cost of a transaction carrying `data` (§6 of the Yellow
    /// Paper): base + per-byte calldata charges (+ creation surcharge).
    pub fn intrinsic_gas(&self, data: &[u8], is_create: bool) -> u64 {
        let zeros = data.iter().filter(|&&b| b == 0).count() as u64;
        let nonzeros = data.len() as u64 - zeros;
        let mut gas = self.tx_base + zeros * self.tx_data_zero + nonzeros * self.tx_data_nonzero;
        if is_create {
            gas += self.tx_create;
        }
        gas
    }

    /// Cost of hashing `len` bytes with keccak256.
    pub fn keccak_cost(&self, len: usize) -> u64 {
        self.keccak_base + self.keccak_word * (len as u64).div_ceil(32)
    }

    /// Cost of copying `len` bytes.
    pub fn copy_cost(&self, len: usize) -> u64 {
        self.copy_word * (len as u64).div_ceil(32)
    }

    /// Cost of a LOG with `topics` topics and `data_len` bytes of data.
    pub fn log_cost(&self, topics: usize, data_len: usize) -> u64 {
        self.log_base + self.log_topic * topics as u64 + self.log_data * data_len as u64
    }
}

/// Gas exhausted mid-execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutOfGas {
    /// Gas limit that was exceeded.
    pub limit: u64,
    /// Gas that had been consumed when the failing charge was attempted.
    pub used: u64,
    /// Size of the charge that did not fit.
    pub attempted: u64,
}

impl fmt::Display for OutOfGas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of gas: limit {}, used {}, attempted charge {}",
            self.limit, self.used, self.attempted
        )
    }
}

impl std::error::Error for OutOfGas {}

/// Per-label gas attribution for one transaction.
///
/// Tables II and III of the paper report token-processing cost split into
/// `Verify`, `Misc`, `Bitmap`, and `Parse` components; the breakdown makes
/// those splits measurable rather than estimated.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GasBreakdown {
    /// Gas attributed to each named section.
    pub sections: BTreeMap<String, u64>,
    /// Total gas used by the transaction.
    pub total: u64,
}

impl GasBreakdown {
    /// Gas attributed to `label` (0 when the section never opened).
    pub fn section(&self, label: &str) -> u64 {
        self.sections.get(label).copied().unwrap_or(0)
    }

    /// Gas not attributed to any named section — the paper's "Misc" row
    /// (base transaction cost, calldata, dispatch, application logic).
    pub fn misc(&self) -> u64 {
        self.total - self.sections.values().sum::<u64>()
    }
}

/// A gas meter for a single transaction: tracks the limit, consumption,
/// refunds, and named section attribution.
#[derive(Clone, Debug)]
pub struct GasMeter {
    limit: u64,
    used: u64,
    refund: u64,
    sections: BTreeMap<String, u64>,
    open: Vec<String>,
}

impl GasMeter {
    /// Create a meter with the given gas limit.
    pub fn new(limit: u64) -> Self {
        GasMeter {
            limit,
            used: 0,
            refund: 0,
            sections: BTreeMap::new(),
            open: Vec::new(),
        }
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Gas remaining before the limit.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Accumulated refund counter (applied at transaction end, capped at
    /// half the gas used, per the Yellow Paper).
    pub fn refund(&self) -> u64 {
        self.refund
    }

    /// Consume `amount` gas, attributing it to the innermost open section.
    pub fn charge(&mut self, amount: u64) -> Result<(), OutOfGas> {
        if amount > self.remaining() {
            let err = OutOfGas {
                limit: self.limit,
                used: self.used,
                attempted: amount,
            };
            self.used = self.limit;
            return Err(err);
        }
        self.used += amount;
        if let Some(label) = self.open.last() {
            *self.sections.entry(label.clone()).or_insert(0) += amount;
        }
        Ok(())
    }

    /// Add to the refund counter.
    pub fn add_refund(&mut self, amount: u64) {
        self.refund += amount;
    }

    /// Open a named section; nested sections attribute to the innermost
    /// label only (no double counting).
    pub fn begin_section(&mut self, label: &str) {
        self.open.push(label.to_string());
    }

    /// Close the innermost section.
    pub fn end_section(&mut self) {
        self.open.pop();
    }

    /// Gas effectively used after applying the capped refund.
    pub fn effective_used(&self) -> u64 {
        self.used - self.refund.min(self.used / 2)
    }

    /// Final per-section breakdown.
    pub fn breakdown(&self) -> GasBreakdown {
        GasBreakdown {
            sections: self.sections.clone(),
            total: self.used,
        }
    }
}

/// Convert a gas quantity to USD using the paper's implied conversion:
/// 1 gwei gas price and 247 USD/ETH (back-derived from Table II, where
/// 165957 gas ↦ $0.041).
pub fn gas_to_usd(gas: u64) -> f64 {
    const GAS_PRICE_GWEI: f64 = 1.0;
    const ETH_USD: f64 = 247.0;
    gas as f64 * GAS_PRICE_GWEI * 1e-9 * ETH_USD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_gas_splits_zero_bytes() {
        let schedule = GasSchedule::default();
        assert_eq!(schedule.intrinsic_gas(&[], false), 21_000);
        // one zero byte + one non-zero byte
        assert_eq!(schedule.intrinsic_gas(&[0, 1], false), 21_000 + 4 + 68);
        assert_eq!(schedule.intrinsic_gas(&[], true), 21_000 + 32_000);
    }

    #[test]
    fn keccak_cost_rounds_words_up() {
        let schedule = GasSchedule::default();
        assert_eq!(schedule.keccak_cost(0), 30);
        assert_eq!(schedule.keccak_cost(1), 36);
        assert_eq!(schedule.keccak_cost(32), 36);
        assert_eq!(schedule.keccak_cost(33), 42);
    }

    #[test]
    fn meter_charges_and_stops_at_limit() {
        let mut meter = GasMeter::new(100);
        assert!(meter.charge(60).is_ok());
        assert_eq!(meter.remaining(), 40);
        let err = meter.charge(50).unwrap_err();
        assert_eq!(err.attempted, 50);
        // Out-of-gas consumes everything, like the EVM.
        assert_eq!(meter.remaining(), 0);
    }

    #[test]
    fn sections_attribute_charges() {
        let mut meter = GasMeter::new(1000);
        meter.charge(100).unwrap();
        meter.begin_section("verify");
        meter.charge(200).unwrap();
        meter.begin_section("bitmap");
        meter.charge(50).unwrap();
        meter.end_section();
        meter.charge(25).unwrap();
        meter.end_section();
        meter.charge(10).unwrap();
        let breakdown = meter.breakdown();
        assert_eq!(breakdown.section("verify"), 225);
        assert_eq!(breakdown.section("bitmap"), 50);
        assert_eq!(breakdown.total, 385);
        assert_eq!(breakdown.misc(), 110);
    }

    #[test]
    fn refund_is_capped_at_half() {
        let mut meter = GasMeter::new(1000);
        meter.charge(100).unwrap();
        meter.add_refund(500);
        assert_eq!(meter.effective_used(), 50);
        let mut meter2 = GasMeter::new(1000);
        meter2.charge(100).unwrap();
        meter2.add_refund(20);
        assert_eq!(meter2.effective_used(), 80);
    }

    #[test]
    fn usd_conversion_matches_paper_anchor() {
        // Table II: 165957 gas → $0.041.
        let usd = gas_to_usd(165_957);
        assert!((usd - 0.041).abs() < 0.0005, "got {usd}");
    }
}
