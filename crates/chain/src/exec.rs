//! The transaction executor: message calls, context objects, precompiles.
//!
//! This is the simulator's EVM. It executes a top-level call from an
//! externally owned account and lets contracts make nested message calls of
//! arbitrary depth — including calls back into already-active contracts,
//! which is precisely the re-entrancy behaviour the paper's §V-B case study
//! needs. Contracts observe the execution through a [`CallContext`] exposing
//! the Solidity globals the paper relies on (§II-C): `tx.origin`,
//! `msg.sender`, `msg.sig`, `msg.data`, `msg.value`, plus gas-charged
//! storage, hashing, `ecrecover`, and event primitives.

use smacs_crypto::{keccak256, recover_address, Signature};
use smacs_primitives::{Address, Bytes, H256, U256};
use std::fmt;

use crate::abi::{self, AbiType, AbiValue, Selector};
use crate::block::BlockEnv;
use crate::contract::ContractRegistry;
use crate::gas::{GasMeter, GasSchedule, OutOfGas};
use crate::receipt::Log;
use crate::state::WorldState;
use crate::trace::{CallTrace, FrameStatus, StorageAccess, TraceEvent, TraceFrame};

/// Maximum message-call depth (the EVM's 1024).
///
/// The executor recurses one host stack frame per message call; programs
/// that intentionally drive execution to the limit should run on a thread
/// with a generous stack (tens of MB). Ordinary workloads are depths 1–5.
pub const MAX_CALL_DEPTH: usize = 1024;

/// Execution failure inside the VM.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmError {
    /// Explicit revert (failed `require`, `assert`, or `throw`).
    Revert(String),
    /// Gas exhausted.
    OutOfGas(OutOfGas),
    /// Nested call deeper than [`MAX_CALL_DEPTH`].
    CallDepthExceeded,
    /// Value transfer with insufficient balance.
    InsufficientBalance,
    /// Calldata did not decode as the contract expected.
    BadCalldata(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Revert(reason) => write!(f, "revert: {reason}"),
            VmError::OutOfGas(oog) => write!(f, "{oog}"),
            VmError::CallDepthExceeded => write!(f, "call depth exceeded"),
            VmError::InsufficientBalance => write!(f, "insufficient balance for transfer"),
            VmError::BadCalldata(what) => write!(f, "bad calldata: {what}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<OutOfGas> for VmError {
    fn from(oog: OutOfGas) -> Self {
        VmError::OutOfGas(oog)
    }
}

/// A message call request.
#[derive(Clone, Debug)]
pub struct MessageCall {
    /// The calling account (`msg.sender` for the callee).
    pub caller: Address,
    /// The callee (contract or EOA).
    pub callee: Address,
    /// Wei to transfer.
    pub value: u128,
    /// Calldata.
    pub data: Bytes,
}

/// The executor for a single transaction: owns the gas meter, trace, and
/// log buffer, and borrows the world state and contract registry.
pub struct Executor<'a> {
    /// The mutable world state.
    pub state: &'a mut WorldState,
    /// Deployed contract logic.
    pub registry: &'a ContractRegistry,
    /// Gas cost constants.
    pub schedule: &'a GasSchedule,
    /// Block-level context (`block.timestamp` = Alg. 1's `now()`).
    pub block: BlockEnv,
    /// The transaction's gas meter.
    pub meter: GasMeter,
    /// `tx.origin` — the externally owned account that signed the
    /// transaction, constant along the whole call chain.
    pub origin: Address,
    logs: Vec<Log>,
    frame_stack: Vec<TraceFrame>,
    finished_root: Option<TraceFrame>,
    depth: usize,
}

impl<'a> Executor<'a> {
    /// Create an executor for one transaction.
    pub fn new(
        state: &'a mut WorldState,
        registry: &'a ContractRegistry,
        schedule: &'a GasSchedule,
        block: BlockEnv,
        origin: Address,
        gas_limit: u64,
    ) -> Self {
        Executor {
            state,
            registry,
            schedule,
            block,
            meter: GasMeter::new(gas_limit),
            origin,
            logs: Vec::new(),
            frame_stack: Vec::new(),
            finished_root: None,
            depth: 0,
        }
    }

    /// Logs emitted so far.
    pub fn take_logs(&mut self) -> Vec<Log> {
        std::mem::take(&mut self.logs)
    }

    /// The completed trace (valid after the top-level call returns).
    pub fn take_trace(&mut self) -> CallTrace {
        CallTrace {
            root: self.finished_root.take(),
        }
    }

    /// Execute a message call (top-level or nested). Reverts all state
    /// changes made by the call (and its children) if it fails.
    pub fn call(&mut self, msg: MessageCall) -> Result<Bytes, VmError> {
        if self.depth >= MAX_CALL_DEPTH {
            return Err(VmError::CallDepthExceeded);
        }
        let snapshot = self.state.snapshot();
        self.frame_stack.push(TraceFrame {
            callee: msg.callee,
            caller: msg.caller,
            selector: Selector::from_calldata(&msg.data),
            value: msg.value,
            depth: self.depth,
            events: Vec::new(),
            children: Vec::new(),
            status: FrameStatus::Success,
        });
        self.depth += 1;

        let result = self.call_inner(&msg);

        self.depth -= 1;
        let mut frame = self.frame_stack.pop().expect("pushed above");
        if let Err(err) = &result {
            frame.status = match err {
                VmError::OutOfGas(_) => FrameStatus::OutOfGas,
                _ => FrameStatus::Reverted,
            };
            self.state.revert_to(snapshot);
        }
        match self.frame_stack.last_mut() {
            Some(parent) => {
                let child = parent.children.len();
                parent.children.push(frame);
                parent.events.push(TraceEvent::Call { child });
            }
            None => self.finished_root = Some(frame),
        }
        result
    }

    fn call_inner(&mut self, msg: &MessageCall) -> Result<Bytes, VmError> {
        // Value transfer.
        if msg.value > 0 {
            if !self.state.exists(msg.callee) {
                self.meter.charge(self.schedule.new_account)?;
            }
            if !self.state.debit(msg.caller, msg.value) {
                return Err(VmError::InsufficientBalance);
            }
            self.state.credit(msg.callee, msg.value);
        }

        let Some(logic) = self.registry.get(msg.callee) else {
            // Plain transfer to an EOA: no code to run.
            return Ok(Bytes::new());
        };

        // `Bytes` is ref-counted: sharing the calldata with this frame's
        // context is a refcount bump, not a buffer copy.
        let mut ctx = CallContext {
            exec: self,
            callee: msg.callee,
            caller: msg.caller,
            value: msg.value,
            data: msg.data.clone(),
        };
        if msg.data.len() >= 4 {
            logic.execute(&mut ctx)
        } else {
            logic.fallback(&mut ctx).map(|_| Bytes::new())
        }
    }

    /// Run a contract's constructor in a creation frame.
    pub fn construct(
        &mut self,
        creator: Address,
        address: Address,
        value: u128,
        logic: &dyn crate::contract::Contract,
    ) -> Result<(), VmError> {
        let snapshot = self.state.snapshot();
        self.frame_stack.push(TraceFrame {
            callee: address,
            caller: creator,
            selector: None,
            value,
            depth: self.depth,
            events: Vec::new(),
            children: Vec::new(),
            status: FrameStatus::Success,
        });
        self.depth += 1;

        let result = (|| {
            if value > 0 {
                if !self.state.debit(creator, value) {
                    return Err(VmError::InsufficientBalance);
                }
                self.state.credit(address, value);
            }
            let mut ctx = CallContext {
                exec: self,
                callee: address,
                caller: creator,
                value,
                data: Bytes::new(),
            };
            logic.constructor(&mut ctx)
        })();

        self.depth -= 1;
        let mut frame = self.frame_stack.pop().expect("pushed above");
        if let Err(err) = &result {
            frame.status = match err {
                VmError::OutOfGas(_) => FrameStatus::OutOfGas,
                _ => FrameStatus::Reverted,
            };
            self.state.revert_to(snapshot);
        }
        match self.frame_stack.last_mut() {
            Some(parent) => {
                let child = parent.children.len();
                parent.children.push(frame);
                parent.events.push(TraceEvent::Call { child });
            }
            None => self.finished_root = Some(frame),
        }
        result
    }

    fn record_access(&mut self, access: StorageAccess) {
        if let Some(frame) = self.frame_stack.last_mut() {
            frame.events.push(TraceEvent::Access(access));
        }
    }
}

/// The view a contract has of its execution environment — the Solidity
/// globals of §II-C plus gas-charged primitives.
pub struct CallContext<'e, 'a> {
    exec: &'e mut Executor<'a>,
    callee: Address,
    caller: Address,
    value: u128,
    data: Bytes,
}

impl<'e, 'a> CallContext<'e, 'a> {
    // ---- Context objects (§II-C) ----

    /// `address(this)` — the executing contract's own address.
    pub fn this_address(&self) -> Address {
        self.callee
    }

    /// `msg.sender` — the immediate caller of the current message.
    pub fn msg_sender(&self) -> Address {
        self.caller
    }

    /// `tx.origin` — the externally owned account that signed the
    /// transaction, for the full call chain.
    pub fn tx_origin(&self) -> Address {
        self.exec.origin
    }

    /// `msg.value` — wei sent with this message.
    pub fn msg_value(&self) -> u128 {
        self.value
    }

    /// `msg.data` — the complete calldata.
    pub fn msg_data(&self) -> &[u8] {
        &self.data
    }

    /// `msg.data` as a shared [`Bytes`] handle — a refcount bump, not a
    /// buffer copy. Use this when the calldata must outlive a mutable
    /// borrow of the context (e.g. the SMACS shield re-reading it while
    /// charging gas).
    pub fn msg_data_bytes(&self) -> Bytes {
        self.data.clone()
    }

    /// `msg.sig` — the 4-byte method identifier, if present.
    pub fn msg_sig(&self) -> Option<Selector> {
        Selector::from_calldata(&self.data)
    }

    /// The block environment (`block.timestamp`, `block.number`).
    pub fn block(&self) -> BlockEnv {
        self.exec.block
    }

    /// `now` — alias for `block.timestamp`, as Solidity v0.4 spells it.
    pub fn now(&self) -> u64 {
        self.exec.block.timestamp
    }

    // ---- Calldata helpers ----

    /// ABI-decode the argument section of calldata (everything after the
    /// selector) against `types`.
    pub fn decode_args(&self, types: &[AbiType]) -> Result<Vec<AbiValue>, VmError> {
        if self.data.len() < 4 {
            return Err(VmError::BadCalldata("missing selector".into()));
        }
        abi::decode(&self.data[4..], types).map_err(|e| VmError::BadCalldata(e.to_string()))
    }

    // ---- Gas ----

    /// Charge raw gas.
    pub fn charge(&mut self, amount: u64) -> Result<(), VmError> {
        self.exec.meter.charge(amount).map_err(Into::into)
    }

    /// Charge `steps` abstract computation steps (models straight-line
    /// Solidity arithmetic/branching the simulator cannot see).
    pub fn charge_compute(&mut self, steps: u64) -> Result<(), VmError> {
        self.exec
            .meter
            .charge(steps * self.exec.schedule.compute_step)
            .map_err(Into::into)
    }

    /// Gas remaining in the transaction.
    pub fn gas_remaining(&self) -> u64 {
        self.exec.meter.remaining()
    }

    /// Open a labeled gas section (see [`crate::gas::GasMeter::begin_section`]).
    pub fn begin_gas_section(&mut self, label: &str) {
        self.exec.meter.begin_section(label);
    }

    /// Close the innermost labeled gas section.
    pub fn end_gas_section(&mut self) {
        self.exec.meter.end_section();
    }

    /// The active gas schedule.
    pub fn schedule(&self) -> &GasSchedule {
        self.exec.schedule
    }

    // ---- Storage ----

    /// `sload` — read a storage slot of the executing contract, charging
    /// the schedule's `sload` cost.
    pub fn sload(&mut self, slot: H256) -> Result<H256, VmError> {
        self.exec.meter.charge(self.exec.schedule.sload)?;
        let value = self.exec.state.storage_get(self.callee, slot);
        self.exec.record_access(StorageAccess::Read { slot });
        Ok(value)
    }

    /// `sstore` — write a storage slot, charging 20000 gas for zero→nonzero,
    /// 5000 otherwise, and crediting the clear refund for nonzero→zero.
    pub fn sstore(&mut self, slot: H256, value: H256) -> Result<(), VmError> {
        let prev = self.exec.state.storage_get(self.callee, slot);
        let cost = if prev.is_zero() && !value.is_zero() {
            self.exec.schedule.sset
        } else {
            self.exec.schedule.sreset
        };
        self.exec.meter.charge(cost)?;
        if !prev.is_zero() && value.is_zero() {
            self.exec.meter.add_refund(self.exec.schedule.sclear_refund);
        }
        self.exec.state.storage_set(self.callee, slot, value);
        self.exec.record_access(StorageAccess::Write {
            slot,
            prev,
            new: value,
        });
        Ok(())
    }

    /// Read a slot as `U256`.
    pub fn sload_u256(&mut self, slot: H256) -> Result<U256, VmError> {
        Ok(self.sload(slot)?.to_u256())
    }

    /// Write a slot from `U256`.
    pub fn sstore_u256(&mut self, slot: H256, value: U256) -> Result<(), VmError> {
        self.sstore(slot, H256::from_u256(value))
    }

    /// Solidity mapping slot derivation: `keccak256(key ‖ base_slot)`,
    /// charged as a keccak over 64 bytes.
    pub fn mapping_slot(&mut self, base: u64, key: &[u8]) -> Result<H256, VmError> {
        self.exec
            .meter
            .charge(self.exec.schedule.keccak_cost(key.len() + 32))?;
        let base_word = U256::from_u64(base).to_be_bytes();
        Ok(smacs_crypto::keccak256_concat(&[key, &base_word]))
    }

    // ---- Crypto (charged as the EVM charges) ----

    /// keccak256 with the `G_sha3` charge.
    pub fn keccak(&mut self, data: &[u8]) -> Result<H256, VmError> {
        self.exec
            .meter
            .charge(self.exec.schedule.keccak_cost(data.len()))?;
        Ok(keccak256(data))
    }

    /// The `ecrecover` precompile: 3000 gas, returns the recovered address
    /// or `None` for invalid signatures (Solidity's zero address).
    pub fn ecrecover(
        &mut self,
        digest: H256,
        signature: &Signature,
    ) -> Result<Option<Address>, VmError> {
        self.exec.meter.charge(self.exec.schedule.ecrecover)?;
        Ok(recover_address(&digest, signature))
    }

    // ---- Accounts and calls ----

    /// `address(x).balance`.
    pub fn balance_of(&mut self, addr: Address) -> Result<u128, VmError> {
        self.exec.meter.charge(20)?; // G_balance (pre-Istanbul)
        Ok(self.exec.state.balance(addr))
    }

    /// Balance of the executing contract.
    pub fn own_balance(&mut self) -> Result<u128, VmError> {
        self.balance_of(self.callee)
    }

    /// A nested message call: `callee.call.value(value)(data)`. Charges the
    /// call base cost (+ value surcharge), transfers value, and dispatches
    /// to the target contract — which may call back into this one
    /// (re-entrancy is possible by design, as in the EVM).
    pub fn call(
        &mut self,
        callee: Address,
        value: u128,
        data: impl Into<Bytes>,
    ) -> Result<Bytes, VmError> {
        let mut cost = self.exec.schedule.call_base;
        if value > 0 {
            cost += self.exec.schedule.call_value;
        }
        self.exec.meter.charge(cost)?;
        let caller = self.callee;
        self.exec.call(MessageCall {
            caller,
            callee,
            value,
            data: data.into(),
        })
    }

    /// `transfer`-style plain value send (empty calldata → triggers the
    /// recipient's fallback if it is a contract).
    pub fn transfer(&mut self, to: Address, value: u128) -> Result<(), VmError> {
        self.call(to, value, Bytes::new()).map(|_| ())
    }

    // ---- Events ----

    /// Emit a log with topics and data, charged per the schedule.
    pub fn emit_log(&mut self, topics: Vec<H256>, data: impl Into<Bytes>) -> Result<(), VmError> {
        let data = data.into();
        self.exec
            .meter
            .charge(self.exec.schedule.log_cost(topics.len(), data.len()))?;
        self.exec.logs.push(Log {
            address: self.callee,
            topics,
            data,
        });
        Ok(())
    }

    /// Emit an event identified by its signature string; topic0 is the
    /// keccak of the signature, as Solidity does.
    pub fn emit_event(&mut self, signature: &str, data: impl Into<Bytes>) -> Result<(), VmError> {
        let topic = keccak256(signature.as_bytes());
        self.emit_log(vec![topic], data)
    }

    // ---- Control flow ----

    /// Solidity `require`: revert with `reason` unless `cond` holds.
    pub fn require(&self, cond: bool, reason: &str) -> Result<(), VmError> {
        if cond {
            Ok(())
        } else {
            Err(VmError::Revert(reason.to_string()))
        }
    }

    /// Explicit revert.
    pub fn revert<T>(&self, reason: &str) -> Result<T, VmError> {
        Err(VmError::Revert(reason.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Contract;
    use std::sync::Arc;

    /// A contract that stores `arg` at slot 0 when called with selector
    /// `set(uint256)`, and returns slot 0 for `get()`.
    struct Store;

    impl Contract for Store {
        fn name(&self) -> &'static str {
            "Store"
        }
        fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
            let sel = ctx.msg_sig().unwrap();
            if sel == abi::selector("set(uint256)") {
                let args = ctx.decode_args(&[AbiType::Uint])?;
                let v = args[0].as_uint().unwrap();
                ctx.sstore_u256(H256::ZERO, v)?;
                Ok(Bytes::new())
            } else if sel == abi::selector("get()") {
                let v = ctx.sload_u256(H256::ZERO)?;
                Ok(Bytes::from(v.to_be_bytes()))
            } else if sel == abi::selector("boom()") {
                ctx.revert("boom")
            } else {
                ctx.revert("unknown method")
            }
        }
    }

    fn setup() -> (WorldState, ContractRegistry, GasSchedule) {
        let mut state = WorldState::new();
        let mut registry = ContractRegistry::new();
        let contract_addr = Address::from_low_u64(0xC0);
        state.create_account(Address::from_low_u64(1), 1_000_000);
        state.set_contract(contract_addr, 100);
        registry.insert(contract_addr, Arc::new(Store));
        (state, registry, GasSchedule::default())
    }

    fn exec_call(
        state: &mut WorldState,
        registry: &ContractRegistry,
        schedule: &GasSchedule,
        data: Vec<u8>,
    ) -> (Result<Bytes, VmError>, CallTrace, u64) {
        let origin = Address::from_low_u64(1);
        let mut executor = Executor::new(
            state,
            registry,
            schedule,
            BlockEnv::genesis(1_000_000),
            origin,
            1_000_000,
        );
        let result = executor.call(MessageCall {
            caller: origin,
            callee: Address::from_low_u64(0xC0),
            value: 0,
            data: Bytes::from(data),
        });
        let trace = executor.take_trace();
        let used = executor.meter.used();
        (result, trace, used)
    }

    #[test]
    fn store_and_read_back() {
        let (mut state, registry, schedule) = setup();
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(42))]);
        let (result, _, gas) = exec_call(&mut state, &registry, &schedule, set);
        assert!(result.is_ok());
        // SSTORE zero→nonzero dominates: must be at least 20000.
        assert!(gas >= 20_000, "gas was {gas}");

        let get = abi::encode_call("get()", &[]);
        let (result, _, _) = exec_call(&mut state, &registry, &schedule, get);
        assert_eq!(
            U256::from_be_slice(&result.unwrap()).unwrap(),
            U256::from_u64(42)
        );
    }

    #[test]
    fn revert_rolls_back_state() {
        let (mut state, registry, schedule) = setup();
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(7))]);
        exec_call(&mut state, &registry, &schedule, set).0.unwrap();

        // A failing call must not clobber existing storage.
        let (result, trace, _) = exec_call(
            &mut state,
            &registry,
            &schedule,
            abi::encode_call("boom()", &[]),
        );
        assert!(matches!(result, Err(VmError::Revert(_))));
        assert_eq!(trace.root.unwrap().status, FrameStatus::Reverted);
        assert_eq!(
            state.storage_get_u256(Address::from_low_u64(0xC0), H256::ZERO),
            U256::from_u64(7)
        );
    }

    #[test]
    fn trace_records_storage_accesses() {
        let (mut state, registry, schedule) = setup();
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(1))]);
        let (_, trace, _) = exec_call(&mut state, &registry, &schedule, set);
        let root = trace.root.unwrap();
        let accesses: Vec<_> = root.accesses().collect();
        assert_eq!(accesses.len(), 1);
        assert!(matches!(accesses[0], StorageAccess::Write { .. }));
        assert_eq!(root.selector, Some(abi::selector("set(uint256)")));
    }

    #[test]
    fn transfer_to_eoa_moves_value() {
        let (mut state, registry, schedule) = setup();
        let origin = Address::from_low_u64(1);
        let dest = Address::from_low_u64(2);
        let mut executor = Executor::new(
            &mut state,
            &registry,
            &schedule,
            BlockEnv::genesis(0),
            origin,
            1_000_000,
        );
        executor
            .call(MessageCall {
                caller: origin,
                callee: dest,
                value: 300,
                data: Bytes::new(),
            })
            .unwrap();
        assert_eq!(state.balance(dest), 300);
        assert_eq!(state.balance(origin), 1_000_000 - 300);
    }

    #[test]
    fn insufficient_balance_fails_and_reverts() {
        let (mut state, registry, schedule) = setup();
        let origin = Address::from_low_u64(1);
        let mut executor = Executor::new(
            &mut state,
            &registry,
            &schedule,
            BlockEnv::genesis(0),
            origin,
            1_000_000,
        );
        let result = executor.call(MessageCall {
            caller: origin,
            callee: Address::from_low_u64(2),
            value: u128::MAX,
            data: Bytes::new(),
        });
        assert_eq!(result, Err(VmError::InsufficientBalance));
        assert_eq!(state.balance(Address::from_low_u64(2)), 0);
    }

    #[test]
    fn out_of_gas_reverts() {
        let (mut state, registry, schedule) = setup();
        let origin = Address::from_low_u64(1);
        let mut executor = Executor::new(
            &mut state,
            &registry,
            &schedule,
            BlockEnv::genesis(0),
            origin,
            100, // far below an SSTORE
        );
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::ONE)]);
        let result = executor.call(MessageCall {
            caller: origin,
            callee: Address::from_low_u64(0xC0),
            value: 0,
            data: Bytes::from(set),
        });
        assert!(matches!(result, Err(VmError::OutOfGas(_))));
        assert_eq!(
            state.storage_get_u256(Address::from_low_u64(0xC0), H256::ZERO),
            U256::ZERO
        );
    }
}
