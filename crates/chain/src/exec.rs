//! The transaction executor: message calls, context objects, precompiles.
//!
//! This is the simulator's EVM. It executes a top-level call from an
//! externally owned account and lets contracts make nested message calls of
//! arbitrary depth — including calls back into already-active contracts,
//! which is precisely the re-entrancy behaviour the paper's §V-B case study
//! needs. Contracts observe the execution through a [`CallContext`] exposing
//! the Solidity globals the paper relies on (§II-C): `tx.origin`,
//! `msg.sender`, `msg.sig`, `msg.data`, `msg.value`, plus gas-charged
//! storage, hashing, `ecrecover`, and event primitives.
//!
//! # Execution model: explicit frame stack + effect-log continuations
//!
//! The executor does **not** recurse one host stack frame per message call.
//! Instead it drives an explicit `Vec<Frame>` state machine, so a
//! depth-1024 call chain consumes a bounded amount of host stack and
//! executors can run on small pool-worker stacks (the parallel block
//! pipeline in [`crate::chain`] depends on this).
//!
//! Contract logic is arbitrary Rust behind [`crate::contract::Contract`],
//! so a frame cannot be suspended mid-function the way a bytecode
//! interpreter suspends mid-opcode. The machine instead uses
//! **deterministic replay with an effect log**:
//!
//! - Every effectful or state-dependent [`CallContext`] operation (gas
//!   charges, `sload`/`sstore`, hashing, `ecrecover`, balance reads, log
//!   emission, gas-section markers, `gas_remaining`, nested calls) records
//!   its result as an [`Effect`] in the current frame's log the first time
//!   it runs.
//! - When a contract makes a nested call in fresh territory, the context
//!   stores the request in `Frame::pending` and returns the sentinel error
//!   [`VmError::Suspended`]. The driver loop pushes a child frame and runs
//!   it to completion; the child's result is appended to the parent's log
//!   as [`Effect::Call`].
//! - The parent's `execute` is then invoked again from the top. Logged
//!   effects replay from the log — returning the recorded results without
//!   re-charging gas, re-writing storage, re-emitting logs, or re-recording
//!   trace events — until execution reaches the call, receives the child's
//!   result natively, and continues past it.
//!
//! Once a frame has requested a call, every further effectful operation in
//! that attempt is *poisoned*: it returns [`VmError::Suspended`] without
//! logging anything, so a contract that swallows the sentinel (e.g.
//! `if ctx.call(..).is_err() { … }`) cannot corrupt the log — the poisoned
//! attempt's tail is discarded and re-runs natively on the next attempt
//! with the real call result in hand. The two contract obligations this
//! model imposes are the ones every EVM contract already meets: execution
//! must be deterministic (same context ⇒ same operation sequence; a replay
//! divergence panics with a diagnostic), and errors should be propagated
//! (`?`) rather than retried in a loop.
//!
//! State changes made by a parent before a nested call stay live in the
//! journal while the child runs (the child *sees* them — re-entrancy
//! semantics are preserved), and a frame failure reverts exactly to the
//! snapshot taken when its frame was pushed, children included.

use smacs_crypto::{keccak256, recover_address, Signature};
use smacs_primitives::{Address, Bytes, H256, U256};
use std::fmt;
use std::sync::Arc;

use crate::abi::{self, AbiType, AbiValue, Selector};
use crate::block::BlockEnv;
use crate::contract::{Contract, ContractRegistry};
use crate::gas::{GasMeter, GasSchedule, OutOfGas};
use crate::receipt::Log;
use crate::state::{Snapshot, WorldState};
use crate::trace::{CallTrace, FrameStatus, StorageAccess, TraceEvent, TraceFrame};

/// Maximum message-call depth (the EVM's 1024).
///
/// The frame-stack executor allocates call frames on the heap, so the
/// limit is a protocol constant, not a host-stack constraint: a depth-1024
/// chain runs fine on a 64 KiB thread stack.
pub const MAX_CALL_DEPTH: usize = 1024;

/// Execution failure inside the VM.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmError {
    /// Explicit revert (failed `require`, `assert`, or `throw`).
    Revert(String),
    /// Gas exhausted.
    OutOfGas(OutOfGas),
    /// Nested call deeper than [`MAX_CALL_DEPTH`].
    CallDepthExceeded,
    /// Value transfer with insufficient balance.
    InsufficientBalance,
    /// Calldata did not decode as the contract expected.
    BadCalldata(String),
    /// Continuation sentinel: a nested call is pending and the driver loop
    /// must run it before this frame can proceed. Contracts never need to
    /// handle this variant — propagate it like any other error (`?`); it
    /// never escapes [`Executor::call`].
    Suspended,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Revert(reason) => write!(f, "revert: {reason}"),
            VmError::OutOfGas(oog) => write!(f, "{oog}"),
            VmError::CallDepthExceeded => write!(f, "call depth exceeded"),
            VmError::InsufficientBalance => write!(f, "insufficient balance for transfer"),
            VmError::BadCalldata(what) => write!(f, "bad calldata: {what}"),
            VmError::Suspended => write!(f, "nested call pending (executor continuation)"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<OutOfGas> for VmError {
    fn from(oog: OutOfGas) -> Self {
        VmError::OutOfGas(oog)
    }
}

/// A message call request.
#[derive(Clone, Debug)]
pub struct MessageCall {
    /// The calling account (`msg.sender` for the callee).
    pub caller: Address,
    /// The callee (contract or EOA).
    pub callee: Address,
    /// Wei to transfer.
    pub value: u128,
    /// Calldata.
    pub data: Bytes,
}

/// One recorded result of an effectful [`CallContext`] operation, replayed
/// verbatim (without re-applying the side effect) on later attempts of the
/// same frame. See the module docs for the continuation protocol.
#[derive(Clone, Debug)]
enum Effect {
    /// `charge`, `charge_compute`, `sstore`, `emit_log`.
    Unit(Result<(), VmError>),
    /// `sload`, `mapping_slot`, `keccak`.
    Word(Result<H256, VmError>),
    /// `gas_remaining` — must be logged because the meter state differs
    /// between attempts.
    Gas(u64),
    /// `ecrecover`.
    Recovered(Result<Option<Address>, VmError>),
    /// `balance_of` / `own_balance`.
    Wei(Result<u128, VmError>),
    /// A completed nested call (appended by the driver loop).
    Call(Result<Bytes, VmError>),
    /// `begin_gas_section` — replays without re-pushing the label.
    SectionBegin,
    /// `end_gas_section` — replays without re-popping the label.
    SectionEnd,
}

/// Which `Contract` entry point a frame runs.
#[derive(Clone, Copy, Debug)]
enum FrameMode {
    Execute,
    Fallback,
    Construct,
}

/// One active message-call frame of the explicit call stack.
struct Frame {
    callee: Address,
    caller: Address,
    value: u128,
    data: Bytes,
    mode: FrameMode,
    /// `None` only transiently during setup; live frames always have logic.
    logic: Option<Arc<dyn Contract>>,
    /// Journal position to revert to if this frame fails.
    snapshot: Snapshot,
    /// This frame's trace, accumulated across attempts (events are recorded
    /// once, on the attempt that first executes the operation).
    trace: TraceFrame,
    /// Completed effects from prior attempts, replayed in order.
    effects: Vec<Effect>,
    /// Replay position within `effects` for the current attempt.
    cursor: usize,
    /// A nested call requested by the current attempt, to be driven next.
    pending: Option<MessageCall>,
}

fn replay_mismatch(op: &str, found: &Effect) -> ! {
    panic!(
        "executor replay diverged at `{op}` (logged {found:?}): contract \
         execution must be deterministic and must propagate VmError::Suspended"
    );
}

/// The executor for a single transaction: owns the gas meter, trace, and
/// log buffer, and borrows the world state and contract registry.
pub struct Executor<'a> {
    /// The mutable world state.
    pub state: &'a mut WorldState,
    /// Deployed contract logic.
    pub registry: &'a ContractRegistry,
    /// Gas cost constants.
    pub schedule: &'a GasSchedule,
    /// Block-level context (`block.timestamp` = Alg. 1's `now()`).
    pub block: BlockEnv,
    /// The transaction's gas meter.
    pub meter: GasMeter,
    /// `tx.origin` — the externally owned account that signed the
    /// transaction, constant along the whole call chain.
    pub origin: Address,
    logs: Vec<Log>,
    finished_root: Option<TraceFrame>,
}

impl<'a> Executor<'a> {
    /// Create an executor for one transaction.
    pub fn new(
        state: &'a mut WorldState,
        registry: &'a ContractRegistry,
        schedule: &'a GasSchedule,
        block: BlockEnv,
        origin: Address,
        gas_limit: u64,
    ) -> Self {
        Executor {
            state,
            registry,
            schedule,
            block,
            meter: GasMeter::new(gas_limit),
            origin,
            logs: Vec::new(),
            finished_root: None,
        }
    }

    /// Logs emitted so far.
    pub fn take_logs(&mut self) -> Vec<Log> {
        std::mem::take(&mut self.logs)
    }

    /// The completed trace (valid after the top-level call returns).
    pub fn take_trace(&mut self) -> CallTrace {
        CallTrace {
            root: self.finished_root.take(),
        }
    }

    /// Execute a message call from the top level. Reverts all state changes
    /// made by the call (and its children) if it fails.
    pub fn call(&mut self, msg: MessageCall) -> Result<Bytes, VmError> {
        self.run(msg, None)
    }

    /// Run a contract's constructor in a creation frame.
    pub fn construct(
        &mut self,
        creator: Address,
        address: Address,
        value: u128,
        logic: Arc<dyn Contract>,
    ) -> Result<(), VmError> {
        let msg = MessageCall {
            caller: creator,
            callee: address,
            value,
            data: Bytes::new(),
        };
        self.run(msg, Some(logic)).map(|_| ())
    }

    /// The driver loop: attempts the top frame, pushes children for
    /// suspensions, and delivers results upward until the root completes.
    fn run(
        &mut self,
        msg: MessageCall,
        construct_logic: Option<Arc<dyn Contract>>,
    ) -> Result<Bytes, VmError> {
        let mut stack: Vec<Frame> = Vec::new();
        let mut delivery = self.begin_frame(&mut stack, msg, construct_logic);
        loop {
            if let Some(result) = delivery.take() {
                match stack.last_mut() {
                    None => return result,
                    Some(parent) => {
                        debug_assert!(parent.pending.is_none(), "delivery clears pending");
                        parent.effects.push(Effect::Call(result));
                    }
                }
            }
            // Attempt the top frame: logged effects replay, then execution
            // proceeds natively.
            let frame = stack.last_mut().expect("delivery handled above");
            frame.cursor = 0;
            let mode = frame.mode;
            let logic = frame.logic.clone().expect("live frames have logic");
            let outcome = {
                let mut ctx = CallContext { exec: self, frame };
                match mode {
                    FrameMode::Execute => logic.execute(&mut ctx),
                    FrameMode::Fallback => logic.fallback(&mut ctx).map(|()| Bytes::new()),
                    FrameMode::Construct => logic.constructor(&mut ctx).map(|()| Bytes::new()),
                }
            };
            let nested = stack.last_mut().expect("still on stack").pending.take();
            match nested {
                Some(nested) => {
                    // `stack.len()` counts the requesting frame, matching
                    // the recursive executor's `depth` at the call site.
                    if stack.len() >= MAX_CALL_DEPTH {
                        stack
                            .last_mut()
                            .expect("non-empty")
                            .effects
                            .push(Effect::Call(Err(VmError::CallDepthExceeded)));
                    } else {
                        delivery = self.begin_frame(&mut stack, nested, None);
                    }
                }
                // No suspension: the attempt's result is the frame's result.
                None => delivery = Some(self.finish_frame(&mut stack, outcome)),
            }
        }
    }

    /// Push a frame and run its one-time setup (snapshot, value transfer,
    /// target resolution). Returns `Some(result)` if the frame completed
    /// immediately (EOA transfer, setup failure) — already finalized — or
    /// `None` if it is live on the stack awaiting its first attempt.
    fn begin_frame(
        &mut self,
        stack: &mut Vec<Frame>,
        msg: MessageCall,
        construct_logic: Option<Arc<dyn Contract>>,
    ) -> Option<Result<Bytes, VmError>> {
        let is_construct = construct_logic.is_some();
        let (caller, callee, value) = (msg.caller, msg.callee, msg.value);
        let data_len = msg.data.len();
        stack.push(Frame {
            trace: TraceFrame {
                callee,
                caller,
                selector: if is_construct {
                    None
                } else {
                    Selector::from_calldata(&msg.data)
                },
                value,
                depth: stack.len(),
                events: Vec::new(),
                children: Vec::new(),
                status: FrameStatus::Success,
            },
            snapshot: self.state.snapshot(),
            callee,
            caller,
            value,
            data: msg.data,
            mode: FrameMode::Execute,
            logic: None,
            effects: Vec::new(),
            cursor: 0,
            pending: None,
        });
        let setup: Result<(), VmError> = (|| {
            if value > 0 {
                if !is_construct && !self.state.exists_tracked(callee) {
                    self.meter.charge(self.schedule.new_account)?;
                }
                if !self.state.debit(caller, value) {
                    return Err(VmError::InsufficientBalance);
                }
                self.state.credit(callee, value);
            }
            Ok(())
        })();
        if let Err(err) = setup {
            return Some(self.finish_frame(stack, Err(err)));
        }
        let top = stack.last_mut().expect("just pushed");
        match construct_logic {
            Some(logic) => {
                top.mode = FrameMode::Construct;
                top.logic = Some(logic);
                None
            }
            None => match self.registry.get(callee) {
                Some(logic) => {
                    top.mode = if data_len >= 4 {
                        FrameMode::Execute
                    } else {
                        FrameMode::Fallback
                    };
                    top.logic = Some(logic);
                    None
                }
                // Plain transfer to an EOA: no code to run.
                None => Some(self.finish_frame(stack, Ok(Bytes::new()))),
            },
        }
    }

    /// Pop and finalize the top frame: set its trace status, revert its
    /// writes on failure, and attach its trace to the parent (or store it
    /// as the finished root).
    fn finish_frame(
        &mut self,
        stack: &mut Vec<Frame>,
        result: Result<Bytes, VmError>,
    ) -> Result<Bytes, VmError> {
        let mut frame = stack.pop().expect("finish requires a frame");
        if let Err(err) = &result {
            frame.trace.status = match err {
                VmError::OutOfGas(_) => FrameStatus::OutOfGas,
                _ => FrameStatus::Reverted,
            };
            self.state.revert_to(frame.snapshot);
        }
        match stack.last_mut() {
            Some(parent) => {
                let child = parent.trace.children.len();
                parent.trace.children.push(frame.trace);
                parent.trace.events.push(TraceEvent::Call { child });
            }
            None => self.finished_root = Some(frame.trace),
        }
        result
    }
}

/// The view a contract has of its execution environment — the Solidity
/// globals of §II-C plus gas-charged primitives.
pub struct CallContext<'e, 'a> {
    exec: &'e mut Executor<'a>,
    frame: &'e mut Frame,
}

impl<'e, 'a> CallContext<'e, 'a> {
    // ---- Replay machinery (see the module docs) ----

    /// Next logged effect, if this attempt is still replaying.
    fn replay_next(&mut self) -> Option<Effect> {
        if self.frame.cursor < self.frame.effects.len() {
            let effect = self.frame.effects[self.frame.cursor].clone();
            self.frame.cursor += 1;
            Some(effect)
        } else {
            None
        }
    }

    /// Replay / poison / record skeleton shared by every effectful op.
    fn effectful<T: Clone>(
        &mut self,
        op: &'static str,
        pack: impl FnOnce(Result<T, VmError>) -> Effect,
        unpack: impl FnOnce(Effect) -> Result<Result<T, VmError>, Effect>,
        live: impl FnOnce(&mut Self) -> Result<T, VmError>,
    ) -> Result<T, VmError> {
        if let Some(effect) = self.replay_next() {
            return match unpack(effect) {
                Ok(result) => result,
                Err(other) => replay_mismatch(op, &other),
            };
        }
        if self.frame.pending.is_some() {
            // Poisoned: a call is already pending; nothing after it may
            // execute or log in this attempt.
            return Err(VmError::Suspended);
        }
        let result = live(self);
        self.record(pack(result.clone()));
        result
    }

    /// Append a live effect, keeping the cursor at the end of the log so
    /// the attempt stays in native (non-replay) mode.
    fn record(&mut self, effect: Effect) {
        self.frame.effects.push(effect);
        self.frame.cursor = self.frame.effects.len();
    }

    // ---- Context objects (§II-C) ----

    /// `address(this)` — the executing contract's own address.
    pub fn this_address(&self) -> Address {
        self.frame.callee
    }

    /// `msg.sender` — the immediate caller of the current message.
    pub fn msg_sender(&self) -> Address {
        self.frame.caller
    }

    /// `tx.origin` — the externally owned account that signed the
    /// transaction, for the full call chain.
    pub fn tx_origin(&self) -> Address {
        self.exec.origin
    }

    /// `msg.value` — wei sent with this message.
    pub fn msg_value(&self) -> u128 {
        self.frame.value
    }

    /// `msg.data` — the complete calldata.
    pub fn msg_data(&self) -> &[u8] {
        &self.frame.data
    }

    /// `msg.data` as a shared [`Bytes`] handle — a refcount bump, not a
    /// buffer copy. Use this when the calldata must outlive a mutable
    /// borrow of the context (e.g. the SMACS shield re-reading it while
    /// charging gas).
    pub fn msg_data_bytes(&self) -> Bytes {
        self.frame.data.clone()
    }

    /// `msg.sig` — the 4-byte method identifier, if present.
    pub fn msg_sig(&self) -> Option<Selector> {
        Selector::from_calldata(&self.frame.data)
    }

    /// The block environment (`block.timestamp`, `block.number`).
    pub fn block(&self) -> BlockEnv {
        self.exec.block
    }

    /// `now` — alias for `block.timestamp`, as Solidity v0.4 spells it.
    pub fn now(&self) -> u64 {
        self.exec.block.timestamp
    }

    // ---- Calldata helpers ----

    /// ABI-decode the argument section of calldata (everything after the
    /// selector) against `types`.
    pub fn decode_args(&self, types: &[AbiType]) -> Result<Vec<AbiValue>, VmError> {
        if self.frame.data.len() < 4 {
            return Err(VmError::BadCalldata("missing selector".into()));
        }
        abi::decode(&self.frame.data[4..], types).map_err(|e| VmError::BadCalldata(e.to_string()))
    }

    // ---- Gas ----

    /// Charge raw gas.
    pub fn charge(&mut self, amount: u64) -> Result<(), VmError> {
        self.effectful("charge", Effect::Unit, unpack_unit, |ctx| {
            ctx.exec.meter.charge(amount).map_err(Into::into)
        })
    }

    /// Charge `steps` abstract computation steps (models straight-line
    /// Solidity arithmetic/branching the simulator cannot see).
    pub fn charge_compute(&mut self, steps: u64) -> Result<(), VmError> {
        self.effectful("charge_compute", Effect::Unit, unpack_unit, |ctx| {
            ctx.exec
                .meter
                .charge(steps * ctx.exec.schedule.compute_step)
                .map_err(Into::into)
        })
    }

    /// Gas remaining in the transaction. Logged as an effect: the meter's
    /// position differs between attempts of a frame, so replays must see
    /// the originally observed value.
    pub fn gas_remaining(&mut self) -> u64 {
        if let Some(effect) = self.replay_next() {
            match effect {
                Effect::Gas(gas) => return gas,
                other => replay_mismatch("gas_remaining", &other),
            }
        }
        let gas = self.exec.meter.remaining();
        if self.frame.pending.is_none() {
            self.record(Effect::Gas(gas));
        }
        gas
    }

    /// Open a labeled gas section (see [`crate::gas::GasMeter::begin_section`]).
    /// A section left open across a nested call stays open while the child
    /// runs, so child gas is attributed to it — as under recursion.
    pub fn begin_gas_section(&mut self, label: &str) {
        if let Some(effect) = self.replay_next() {
            match effect {
                Effect::SectionBegin => return,
                other => replay_mismatch("begin_gas_section", &other),
            }
        }
        if self.frame.pending.is_none() {
            self.exec.meter.begin_section(label);
            self.record(Effect::SectionBegin);
        }
    }

    /// Close the innermost labeled gas section.
    pub fn end_gas_section(&mut self) {
        if let Some(effect) = self.replay_next() {
            match effect {
                Effect::SectionEnd => return,
                other => replay_mismatch("end_gas_section", &other),
            }
        }
        if self.frame.pending.is_none() {
            self.exec.meter.end_section();
            self.record(Effect::SectionEnd);
        }
    }

    /// The active gas schedule.
    pub fn schedule(&self) -> &GasSchedule {
        self.exec.schedule
    }

    // ---- Storage ----

    /// `sload` — read a storage slot of the executing contract, charging
    /// the schedule's `sload` cost.
    pub fn sload(&mut self, slot: H256) -> Result<H256, VmError> {
        self.effectful("sload", Effect::Word, unpack_word, |ctx| {
            ctx.exec.meter.charge(ctx.exec.schedule.sload)?;
            let value = ctx.exec.state.storage_get_tracked(ctx.frame.callee, slot);
            ctx.frame
                .trace
                .events
                .push(TraceEvent::Access(StorageAccess::Read { slot }));
            Ok(value)
        })
    }

    /// `sstore` — write a storage slot, charging 20000 gas for zero→nonzero,
    /// 5000 otherwise, and crediting the clear refund for nonzero→zero.
    pub fn sstore(&mut self, slot: H256, value: H256) -> Result<(), VmError> {
        self.effectful("sstore", Effect::Unit, unpack_unit, |ctx| {
            // The previous value is a semantic read: it decides the charge.
            let prev = ctx.exec.state.storage_get_tracked(ctx.frame.callee, slot);
            let cost = if prev.is_zero() && !value.is_zero() {
                ctx.exec.schedule.sset
            } else {
                ctx.exec.schedule.sreset
            };
            ctx.exec.meter.charge(cost)?;
            if !prev.is_zero() && value.is_zero() {
                ctx.exec.meter.add_refund(ctx.exec.schedule.sclear_refund);
            }
            ctx.exec.state.storage_set(ctx.frame.callee, slot, value);
            ctx.frame
                .trace
                .events
                .push(TraceEvent::Access(StorageAccess::Write {
                    slot,
                    prev,
                    new: value,
                }));
            Ok(())
        })
    }

    /// Read a slot as `U256`.
    pub fn sload_u256(&mut self, slot: H256) -> Result<U256, VmError> {
        Ok(self.sload(slot)?.to_u256())
    }

    /// Write a slot from `U256`.
    pub fn sstore_u256(&mut self, slot: H256, value: U256) -> Result<(), VmError> {
        self.sstore(slot, H256::from_u256(value))
    }

    /// Solidity mapping slot derivation: `keccak256(key ‖ base_slot)`,
    /// charged as a keccak over 64 bytes.
    pub fn mapping_slot(&mut self, base: u64, key: &[u8]) -> Result<H256, VmError> {
        self.effectful("mapping_slot", Effect::Word, unpack_word, |ctx| {
            ctx.exec
                .meter
                .charge(ctx.exec.schedule.keccak_cost(key.len() + 32))?;
            let base_word = U256::from_u64(base).to_be_bytes();
            Ok(smacs_crypto::keccak256_concat(&[key, &base_word]))
        })
    }

    // ---- Crypto (charged as the EVM charges) ----

    /// keccak256 with the `G_sha3` charge.
    pub fn keccak(&mut self, data: &[u8]) -> Result<H256, VmError> {
        self.effectful("keccak", Effect::Word, unpack_word, |ctx| {
            ctx.exec
                .meter
                .charge(ctx.exec.schedule.keccak_cost(data.len()))?;
            Ok(keccak256(data))
        })
    }

    /// The `ecrecover` precompile: 3000 gas, returns the recovered address
    /// or `None` for invalid signatures (Solidity's zero address).
    pub fn ecrecover(
        &mut self,
        digest: H256,
        signature: &Signature,
    ) -> Result<Option<Address>, VmError> {
        self.effectful("ecrecover", Effect::Recovered, unpack_recovered, |ctx| {
            ctx.exec.meter.charge(ctx.exec.schedule.ecrecover)?;
            Ok(recover_address(&digest, signature))
        })
    }

    // ---- Accounts and calls ----

    /// `address(x).balance`.
    pub fn balance_of(&mut self, addr: Address) -> Result<u128, VmError> {
        self.effectful("balance_of", Effect::Wei, unpack_wei, |ctx| {
            ctx.exec.meter.charge(20)?; // G_balance (pre-Istanbul)
            Ok(ctx.exec.state.balance_tracked(addr))
        })
    }

    /// Balance of the executing contract.
    pub fn own_balance(&mut self) -> Result<u128, VmError> {
        let callee = self.frame.callee;
        self.balance_of(callee)
    }

    /// A nested message call: `callee.call.value(value)(data)`. Charges the
    /// call base cost (+ value surcharge), transfers value, and dispatches
    /// to the target contract — which may call back into this one
    /// (re-entrancy is possible by design, as in the EVM).
    ///
    /// Internally this yields a continuation request to the driver loop
    /// (see the module docs); from the contract's perspective it behaves
    /// exactly like a blocking call.
    pub fn call(
        &mut self,
        callee: Address,
        value: u128,
        data: impl Into<Bytes>,
    ) -> Result<Bytes, VmError> {
        let mut cost = self.exec.schedule.call_base;
        if value > 0 {
            cost += self.exec.schedule.call_value;
        }
        self.charge(cost)?;
        if let Some(effect) = self.replay_next() {
            return match effect {
                Effect::Call(result) => result,
                other => replay_mismatch("call", &other),
            };
        }
        if self.frame.pending.is_some() {
            return Err(VmError::Suspended);
        }
        self.frame.pending = Some(MessageCall {
            caller: self.frame.callee,
            callee,
            value,
            data: data.into(),
        });
        Err(VmError::Suspended)
    }

    /// `transfer`-style plain value send (empty calldata → triggers the
    /// recipient's fallback if it is a contract).
    pub fn transfer(&mut self, to: Address, value: u128) -> Result<(), VmError> {
        self.call(to, value, Bytes::new()).map(|_| ())
    }

    // ---- Events ----

    /// Emit a log with topics and data, charged per the schedule.
    pub fn emit_log(&mut self, topics: Vec<H256>, data: impl Into<Bytes>) -> Result<(), VmError> {
        let data = data.into();
        self.effectful("emit_log", Effect::Unit, unpack_unit, |ctx| {
            ctx.exec
                .meter
                .charge(ctx.exec.schedule.log_cost(topics.len(), data.len()))?;
            ctx.exec.logs.push(Log {
                address: ctx.frame.callee,
                topics,
                data,
            });
            Ok(())
        })
    }

    /// Emit an event identified by its signature string; topic0 is the
    /// keccak of the signature, as Solidity does.
    pub fn emit_event(&mut self, signature: &str, data: impl Into<Bytes>) -> Result<(), VmError> {
        let topic = keccak256(signature.as_bytes());
        self.emit_log(vec![topic], data)
    }

    // ---- Control flow ----

    /// Solidity `require`: revert with `reason` unless `cond` holds.
    pub fn require(&self, cond: bool, reason: &str) -> Result<(), VmError> {
        if cond {
            Ok(())
        } else {
            Err(VmError::Revert(reason.to_string()))
        }
    }

    /// Explicit revert.
    pub fn revert<T>(&self, reason: &str) -> Result<T, VmError> {
        Err(VmError::Revert(reason.to_string()))
    }
}

fn unpack_unit(effect: Effect) -> Result<Result<(), VmError>, Effect> {
    match effect {
        Effect::Unit(r) => Ok(r),
        other => Err(other),
    }
}

fn unpack_word(effect: Effect) -> Result<Result<H256, VmError>, Effect> {
    match effect {
        Effect::Word(r) => Ok(r),
        other => Err(other),
    }
}

fn unpack_recovered(effect: Effect) -> Result<Result<Option<Address>, VmError>, Effect> {
    match effect {
        Effect::Recovered(r) => Ok(r),
        other => Err(other),
    }
}

fn unpack_wei(effect: Effect) -> Result<Result<u128, VmError>, Effect> {
    match effect {
        Effect::Wei(r) => Ok(r),
        other => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Contract;
    use std::sync::Arc;

    /// A contract that stores `arg` at slot 0 when called with selector
    /// `set(uint256)`, and returns slot 0 for `get()`.
    struct Store;

    impl Contract for Store {
        fn name(&self) -> &'static str {
            "Store"
        }
        fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
            let sel = ctx.msg_sig().unwrap();
            if sel == abi::selector("set(uint256)") {
                let args = ctx.decode_args(&[AbiType::Uint])?;
                let v = args[0].as_uint().unwrap();
                ctx.sstore_u256(H256::ZERO, v)?;
                Ok(Bytes::new())
            } else if sel == abi::selector("get()") {
                let v = ctx.sload_u256(H256::ZERO)?;
                Ok(Bytes::from(v.to_be_bytes()))
            } else if sel == abi::selector("boom()") {
                ctx.revert("boom")
            } else {
                ctx.revert("unknown method")
            }
        }
    }

    fn setup() -> (WorldState, ContractRegistry, GasSchedule) {
        let mut state = WorldState::new();
        let mut registry = ContractRegistry::new();
        let contract_addr = Address::from_low_u64(0xC0);
        state.create_account(Address::from_low_u64(1), 1_000_000);
        state.set_contract(contract_addr, 100);
        registry.insert(contract_addr, Arc::new(Store));
        (state, registry, GasSchedule::default())
    }

    fn exec_call(
        state: &mut WorldState,
        registry: &ContractRegistry,
        schedule: &GasSchedule,
        data: Vec<u8>,
    ) -> (Result<Bytes, VmError>, CallTrace, u64) {
        let origin = Address::from_low_u64(1);
        let mut executor = Executor::new(
            state,
            registry,
            schedule,
            BlockEnv::genesis(1_000_000),
            origin,
            1_000_000,
        );
        let result = executor.call(MessageCall {
            caller: origin,
            callee: Address::from_low_u64(0xC0),
            value: 0,
            data: Bytes::from(data),
        });
        let trace = executor.take_trace();
        let used = executor.meter.used();
        (result, trace, used)
    }

    #[test]
    fn store_and_read_back() {
        let (mut state, registry, schedule) = setup();
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(42))]);
        let (result, _, gas) = exec_call(&mut state, &registry, &schedule, set);
        assert!(result.is_ok());
        // SSTORE zero→nonzero dominates: must be at least 20000.
        assert!(gas >= 20_000, "gas was {gas}");

        let get = abi::encode_call("get()", &[]);
        let (result, _, _) = exec_call(&mut state, &registry, &schedule, get);
        assert_eq!(
            U256::from_be_slice(&result.unwrap()).unwrap(),
            U256::from_u64(42)
        );
    }

    #[test]
    fn revert_rolls_back_state() {
        let (mut state, registry, schedule) = setup();
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(7))]);
        exec_call(&mut state, &registry, &schedule, set).0.unwrap();

        // A failing call must not clobber existing storage.
        let (result, trace, _) = exec_call(
            &mut state,
            &registry,
            &schedule,
            abi::encode_call("boom()", &[]),
        );
        assert!(matches!(result, Err(VmError::Revert(_))));
        assert_eq!(trace.root.unwrap().status, FrameStatus::Reverted);
        assert_eq!(
            state.storage_get_u256(Address::from_low_u64(0xC0), H256::ZERO),
            U256::from_u64(7)
        );
    }

    #[test]
    fn trace_records_storage_accesses() {
        let (mut state, registry, schedule) = setup();
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(1))]);
        let (_, trace, _) = exec_call(&mut state, &registry, &schedule, set);
        let root = trace.root.unwrap();
        let accesses: Vec<_> = root.accesses().collect();
        assert_eq!(accesses.len(), 1);
        assert!(matches!(accesses[0], StorageAccess::Write { .. }));
        assert_eq!(root.selector, Some(abi::selector("set(uint256)")));
    }

    #[test]
    fn transfer_to_eoa_moves_value() {
        let (mut state, registry, schedule) = setup();
        let origin = Address::from_low_u64(1);
        let dest = Address::from_low_u64(2);
        let mut executor = Executor::new(
            &mut state,
            &registry,
            &schedule,
            BlockEnv::genesis(0),
            origin,
            1_000_000,
        );
        executor
            .call(MessageCall {
                caller: origin,
                callee: dest,
                value: 300,
                data: Bytes::new(),
            })
            .unwrap();
        assert_eq!(state.balance(dest), 300);
        assert_eq!(state.balance(origin), 1_000_000 - 300);
    }

    #[test]
    fn insufficient_balance_fails_and_reverts() {
        let (mut state, registry, schedule) = setup();
        let origin = Address::from_low_u64(1);
        let mut executor = Executor::new(
            &mut state,
            &registry,
            &schedule,
            BlockEnv::genesis(0),
            origin,
            1_000_000,
        );
        let result = executor.call(MessageCall {
            caller: origin,
            callee: Address::from_low_u64(2),
            value: u128::MAX,
            data: Bytes::new(),
        });
        assert_eq!(result, Err(VmError::InsufficientBalance));
        assert_eq!(state.balance(Address::from_low_u64(2)), 0);
    }

    #[test]
    fn out_of_gas_reverts() {
        let (mut state, registry, schedule) = setup();
        let origin = Address::from_low_u64(1);
        let mut executor = Executor::new(
            &mut state,
            &registry,
            &schedule,
            BlockEnv::genesis(0),
            origin,
            100, // far below an SSTORE
        );
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::ONE)]);
        let result = executor.call(MessageCall {
            caller: origin,
            callee: Address::from_low_u64(0xC0),
            value: 0,
            data: Bytes::from(set),
        });
        assert!(matches!(result, Err(VmError::OutOfGas(_))));
        assert_eq!(
            state.storage_get_u256(Address::from_low_u64(0xC0), H256::ZERO),
            U256::ZERO
        );
    }

    /// A contract that swallows the result of a nested call and branches on
    /// it — exercising the suspension-poisoning path: the post-call tail of
    /// the first attempt must be discarded and re-run with the real result.
    struct Swallower {
        target: Address,
    }

    impl Contract for Swallower {
        fn name(&self) -> &'static str {
            "Swallower"
        }
        fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
            let get = abi::encode_call("get()", &[]);
            match ctx.call(self.target, 0, get) {
                Ok(ret) => {
                    // Record the child's answer + 1 in our own slot 0.
                    let v = U256::from_be_slice(&ret).unwrap();
                    ctx.sstore_u256(H256::ZERO, v + U256::ONE)?;
                    Ok(Bytes::new())
                }
                Err(_) => {
                    // Poisoned on attempt 1 (sentinel swallowed); on the
                    // replay attempt the real error lands here.
                    ctx.sstore_u256(H256::ZERO, U256::from_u64(0xDEAD))?;
                    Ok(Bytes::new())
                }
            }
        }
    }

    #[test]
    fn swallowed_suspension_replays_with_real_result() {
        let (mut state, mut registry, schedule) = setup();
        let swallower_addr = Address::from_low_u64(0xD0);
        state.set_contract(swallower_addr, 100);
        registry.insert(
            swallower_addr,
            Arc::new(Swallower {
                target: Address::from_low_u64(0xC0),
            }),
        );
        // Store 41 in the Store contract, then have the Swallower read it.
        let set = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(41))]);
        exec_call(&mut state, &registry, &schedule, set).0.unwrap();

        let origin = Address::from_low_u64(1);
        let mut executor = Executor::new(
            &mut state,
            &registry,
            &schedule,
            BlockEnv::genesis(0),
            origin,
            1_000_000,
        );
        executor
            .call(MessageCall {
                caller: origin,
                callee: swallower_addr,
                value: 0,
                data: Bytes::from(abi::encode_call("any()", &[])),
            })
            .unwrap();
        assert_eq!(
            state.storage_get_u256(swallower_addr, H256::ZERO),
            U256::from_u64(42),
            "swallower must see the real child result, not the sentinel"
        );
    }
}
