//! Transactions: signed data packages originated by externally owned
//! accounts (§II-C of the paper).
//!
//! A transaction carries a nonce (Ethereum's replay protection — validated
//! by the network but *not* visible to contracts, which is why SMACS needs
//! its own in-contract one-time token mechanism, §IV-C), a gas limit and
//! price, an optional target, a wei value, and calldata. The signing digest
//! is the keccak256 of the RLP-encoded body, and the sender is recovered
//! from the signature — the `tx.origin` seen by every frame of the call
//! chain.

use smacs_crypto::{keccak256, recover_address, Keypair, Signature};
use smacs_primitives::rlp::{self, Item, ToRlp};
use smacs_primitives::{Address, Bytes, H256};
use std::fmt;
use std::sync::Mutex;

/// An unsigned transaction body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Sender's account nonce — must equal the account's current nonce.
    pub nonce: u64,
    /// Gas price in wei per gas unit.
    pub gas_price: u128,
    /// Gas limit for the whole transaction.
    pub gas_limit: u64,
    /// Callee; `None` denotes a contract-creation transaction.
    pub to: Option<Address>,
    /// Transferred value in wei.
    pub value: u128,
    /// Calldata (method selector + ABI-encoded arguments, possibly with a
    /// SMACS token array embedded).
    pub data: Bytes,
}

impl Transaction {
    /// A plain call with sensible defaults for gas (callers override as
    /// needed).
    pub fn call(nonce: u64, to: Address, value: u128, data: impl Into<Bytes>) -> Self {
        Transaction {
            nonce,
            gas_price: 1_000_000_000, // 1 gwei — the paper-era default
            gas_limit: 8_000_000,
            to: Some(to),
            value,
            data: data.into(),
        }
    }

    fn rlp_body(&self) -> Item {
        Item::List(vec![
            self.nonce.to_rlp(),
            self.gas_price.to_rlp(),
            self.gas_limit.to_rlp(),
            match self.to {
                Some(addr) => addr.to_rlp(),
                None => Item::Bytes(vec![]),
            },
            self.value.to_rlp(),
            self.data.to_rlp(),
        ])
    }

    /// The digest an EOA signs: `keccak256(rlp(body))`.
    pub fn signing_digest(&self) -> H256 {
        keccak256(&rlp::encode(&self.rlp_body()))
    }

    /// Sign with `keypair`, producing a [`SignedTransaction`]. The signer's
    /// address is pre-seeded into the sender cache, so the common path
    /// (sign locally, submit, execute) never runs `ecrecover` at all.
    pub fn sign(self, keypair: &Keypair) -> SignedTransaction {
        let signature = keypair.sign_digest(&self.signing_digest());
        let signed = SignedTransaction {
            tx: self,
            signature,
            sender_cache: Mutex::new(None),
        };
        *signed.sender_cache.lock().expect("fresh lock") =
            Some((signed.hash(), Some(keypair.address())));
        signed
    }
}

/// A signed transaction ready for submission.
pub struct SignedTransaction {
    /// The signed body.
    pub tx: Transaction,
    /// 65-byte recoverable signature over [`Transaction::signing_digest`].
    pub signature: Signature,
    /// Memoized recovered sender, keyed by the transaction hash so any
    /// mutation of the body or signature invalidates it. `ecrecover` is by
    /// far the most expensive step of transaction intake; this runs it once
    /// per transaction instead of once per access.
    sender_cache: Mutex<Option<(H256, Option<Address>)>>,
}

impl Clone for SignedTransaction {
    fn clone(&self) -> Self {
        SignedTransaction {
            tx: self.tx.clone(),
            signature: self.signature,
            sender_cache: Mutex::new(*self.sender_cache.lock().expect("cache lock")),
        }
    }
}

impl PartialEq for SignedTransaction {
    fn eq(&self, other: &Self) -> bool {
        self.tx == other.tx && self.signature == other.signature
    }
}

impl Eq for SignedTransaction {}

impl SignedTransaction {
    /// Assemble from parts (e.g. parsed off the wire) with a cold sender
    /// cache.
    pub fn from_parts(tx: Transaction, signature: Signature) -> Self {
        SignedTransaction {
            tx,
            signature,
            sender_cache: Mutex::new(None),
        }
    }

    /// Recover the sender address; `None` if the signature is invalid.
    /// Before processing a transaction, "their authenticity is validated by
    /// the Ethereum network" (§II-C) — the chain rejects `None`.
    ///
    /// Memoized: the first call runs `ecrecover` and caches the result
    /// under the current transaction hash; later calls re-derive only the
    /// (cheap) hash and reuse the recovery while it matches.
    pub fn sender(&self) -> Option<Address> {
        let hash = self.hash();
        let mut cache = self.sender_cache.lock().expect("cache lock");
        if let Some((cached_hash, cached_sender)) = *cache {
            if cached_hash == hash {
                return cached_sender;
            }
        }
        let sender = recover_address(&self.tx.signing_digest(), &self.signature);
        *cache = Some((hash, sender));
        sender
    }

    /// The transaction hash (id): keccak over the RLP body plus signature.
    pub fn hash(&self) -> H256 {
        let item = Item::List(vec![
            self.tx.rlp_body(),
            Item::Bytes(self.signature.to_bytes().to_vec()),
        ]);
        keccak256(&rlp::encode(&item))
    }
}

impl fmt::Debug for SignedTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SignedTransaction(hash={}, nonce={}, to={:?})",
            self.hash(),
            self.tx.nonce,
            self.tx.to
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_primitives::U256;

    fn sample_tx(nonce: u64) -> Transaction {
        Transaction::call(nonce, Address::from_low_u64(9), 42, vec![1, 2, 3])
    }

    #[test]
    fn sender_recovery_round_trip() {
        let kp = Keypair::from_seed(100);
        let signed = sample_tx(0).sign(&kp);
        assert_eq!(signed.sender(), Some(kp.address()));
    }

    #[test]
    fn tampering_changes_recovered_sender() {
        let kp = Keypair::from_seed(101);
        let mut signed = sample_tx(0).sign(&kp);
        // Warm the memoized sender, then tamper: the cache is keyed by the
        // transaction hash, so the stale recovery must not be served.
        assert_eq!(signed.sender(), Some(kp.address()));
        signed.tx.value = 43;
        assert_ne!(signed.sender(), Some(kp.address()));
    }

    #[test]
    fn cold_cache_recovers_and_memoizes() {
        let kp = Keypair::from_seed(104);
        let signed = sample_tx(0).sign(&kp);
        // Rebuild from parts to discard the pre-seeded cache.
        let parsed = SignedTransaction::from_parts(signed.tx.clone(), signed.signature);
        assert_eq!(parsed.sender(), Some(kp.address()));
        assert_eq!(parsed.sender(), Some(kp.address()));
        assert_eq!(parsed, signed);
    }

    #[test]
    fn nonce_affects_digest_and_hash() {
        let kp = Keypair::from_seed(102);
        let a = sample_tx(0).sign(&kp);
        let b = sample_tx(1).sign(&kp);
        assert_ne!(a.tx.signing_digest(), b.tx.signing_digest());
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn creation_tx_has_empty_to() {
        let tx = Transaction {
            nonce: 0,
            gas_price: 1,
            gas_limit: 100_000,
            to: None,
            value: 0,
            data: Bytes::new(),
        };
        // Digest must differ from a call to the zero address.
        let call = Transaction {
            to: Some(Address::ZERO),
            ..tx.clone()
        };
        assert_ne!(tx.signing_digest(), call.signing_digest());
    }

    #[test]
    fn hash_is_stable() {
        let kp = Keypair::from_seed(103);
        let signed = sample_tx(5).sign(&kp);
        assert_eq!(signed.hash(), signed.hash());
        // And sensitive to data.
        let mut other = signed.clone();
        other.tx.data = Bytes::from(U256::from_u64(7).to_be_bytes());
        assert_ne!(signed.hash(), other.hash());
    }
}
