//! Transactions: signed data packages originated by externally owned
//! accounts (§II-C of the paper).
//!
//! A transaction carries a nonce (Ethereum's replay protection — validated
//! by the network but *not* visible to contracts, which is why SMACS needs
//! its own in-contract one-time token mechanism, §IV-C), a gas limit and
//! price, an optional target, a wei value, and calldata. The signing digest
//! is the keccak256 of the RLP-encoded body, and the sender is recovered
//! from the signature — the `tx.origin` seen by every frame of the call
//! chain.

use smacs_crypto::{keccak256, recover_address, Keypair, Signature};
use smacs_primitives::rlp::{self, Item, ToRlp};
use smacs_primitives::{Address, Bytes, H256};
use std::fmt;
use std::sync::Mutex;

/// An unsigned transaction body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Sender's account nonce — must equal the account's current nonce.
    pub nonce: u64,
    /// Gas price in wei per gas unit.
    pub gas_price: u128,
    /// Gas limit for the whole transaction.
    pub gas_limit: u64,
    /// Callee; `None` denotes a contract-creation transaction.
    pub to: Option<Address>,
    /// Transferred value in wei.
    pub value: u128,
    /// Calldata (method selector + ABI-encoded arguments, possibly with a
    /// SMACS token array embedded).
    pub data: Bytes,
}

impl Transaction {
    /// A plain call with sensible defaults for gas (callers override as
    /// needed).
    pub fn call(nonce: u64, to: Address, value: u128, data: impl Into<Bytes>) -> Self {
        Transaction {
            nonce,
            gas_price: 1_000_000_000, // 1 gwei — the paper-era default
            gas_limit: 8_000_000,
            to: Some(to),
            value,
            data: data.into(),
        }
    }

    fn rlp_body(&self) -> Item {
        Item::List(vec![
            self.nonce.to_rlp(),
            self.gas_price.to_rlp(),
            self.gas_limit.to_rlp(),
            match self.to {
                Some(addr) => addr.to_rlp(),
                None => Item::Bytes(vec![]),
            },
            self.value.to_rlp(),
            self.data.to_rlp(),
        ])
    }

    /// The digest an EOA signs: `keccak256(rlp(body))`.
    pub fn signing_digest(&self) -> H256 {
        keccak256(&rlp::encode(&self.rlp_body()))
    }

    /// Sign with `keypair`, producing a [`SignedTransaction`]. The signer's
    /// address is pre-seeded into the sender cache, so the common path
    /// (sign locally, submit, execute) never runs `ecrecover` at all.
    pub fn sign(self, keypair: &Keypair) -> SignedTransaction {
        let signature = keypair.sign_digest(&self.signing_digest());
        let signed = SignedTransaction {
            tx: self,
            signature,
            hash_cache: Mutex::new(None),
            sender_cache: Mutex::new(None),
        };
        *signed.sender_cache.lock().expect("fresh lock") =
            Some((signed.hash(), Some(keypair.address())));
        signed
    }
}

/// Cheap identity of a signed transaction's contents: every scalar field
/// by value, the calldata by buffer address. The fingerprint keeps its own
/// handle on the [`Bytes`] buffer, which both guarantees the address stays
/// valid for comparison and rules out ABA reuse: while a cached
/// fingerprint is alive the allocator cannot hand the same address to a
/// *different* buffer, so equal addresses imply the very same immutable
/// contents. A replaced buffer merely misses the cache and recomputes.
#[derive(Clone)]
struct TxFingerprint {
    nonce: u64,
    gas_price: u128,
    gas_limit: u64,
    to: Option<Address>,
    value: u128,
    data: Bytes,
    signature: Signature,
}

impl PartialEq for TxFingerprint {
    fn eq(&self, other: &Self) -> bool {
        self.nonce == other.nonce
            && self.gas_price == other.gas_price
            && self.gas_limit == other.gas_limit
            && self.to == other.to
            && self.value == other.value
            && std::ptr::eq(
                self.data.as_slice().as_ptr(),
                other.data.as_slice().as_ptr(),
            )
            && self.data.len() == other.data.len()
            && self.signature == other.signature
    }
}

impl TxFingerprint {
    fn of(signed: &SignedTransaction) -> TxFingerprint {
        TxFingerprint {
            nonce: signed.tx.nonce,
            gas_price: signed.tx.gas_price,
            gas_limit: signed.tx.gas_limit,
            to: signed.tx.to,
            value: signed.tx.value,
            data: signed.tx.data.clone(),
            signature: signed.signature,
        }
    }
}

/// A signed transaction ready for submission.
pub struct SignedTransaction {
    /// The signed body.
    pub tx: Transaction,
    /// 65-byte recoverable signature over [`Transaction::signing_digest`].
    pub signature: Signature,
    /// Memoized transaction hash, keyed by a cheap field fingerprint so any
    /// mutation of the body or signature invalidates it. `hash()` otherwise
    /// re-RLP-encodes (an allocation plus a keccak) on every access — and
    /// the sender cache below consults it on every `sender()` call.
    hash_cache: Mutex<Option<(TxFingerprint, H256)>>,
    /// Memoized recovered sender, keyed by the transaction hash so any
    /// mutation of the body or signature invalidates it. `ecrecover` is by
    /// far the most expensive step of transaction intake; this runs it once
    /// per transaction instead of once per access.
    sender_cache: Mutex<Option<(H256, Option<Address>)>>,
}

impl Clone for SignedTransaction {
    fn clone(&self) -> Self {
        SignedTransaction {
            tx: self.tx.clone(),
            signature: self.signature,
            hash_cache: Mutex::new(self.hash_cache.lock().expect("cache lock").clone()),
            sender_cache: Mutex::new(*self.sender_cache.lock().expect("cache lock")),
        }
    }
}

impl PartialEq for SignedTransaction {
    fn eq(&self, other: &Self) -> bool {
        self.tx == other.tx && self.signature == other.signature
    }
}

impl Eq for SignedTransaction {}

impl SignedTransaction {
    /// Assemble from parts (e.g. parsed off the wire) with a cold sender
    /// cache.
    pub fn from_parts(tx: Transaction, signature: Signature) -> Self {
        SignedTransaction {
            tx,
            signature,
            hash_cache: Mutex::new(None),
            sender_cache: Mutex::new(None),
        }
    }

    /// Recover the sender address; `None` if the signature is invalid.
    /// Before processing a transaction, "their authenticity is validated by
    /// the Ethereum network" (§II-C) — the chain rejects `None`.
    ///
    /// Memoized: the first call runs `ecrecover` and caches the result
    /// under the current transaction hash; later calls re-derive only the
    /// (cheap) hash and reuse the recovery while it matches.
    pub fn sender(&self) -> Option<Address> {
        let hash = self.hash();
        let mut cache = self.sender_cache.lock().expect("cache lock");
        if let Some((cached_hash, cached_sender)) = *cache {
            if cached_hash == hash {
                return cached_sender;
            }
        }
        let sender = recover_address(&self.tx.signing_digest(), &self.signature);
        *cache = Some((hash, sender));
        sender
    }

    /// The transaction hash (id): keccak over the RLP body plus signature.
    ///
    /// Memoized under a [`TxFingerprint`] of the fields, so repeated access
    /// (every `sender()` call, receipts, logging) skips the RLP encode and
    /// keccak while the transaction is unchanged.
    pub fn hash(&self) -> H256 {
        let fingerprint = TxFingerprint::of(self);
        let mut cache = self.hash_cache.lock().expect("cache lock");
        if let Some((cached_fp, cached_hash)) = cache.as_ref() {
            if *cached_fp == fingerprint {
                return *cached_hash;
            }
        }
        let item = Item::List(vec![
            self.tx.rlp_body(),
            Item::Bytes(self.signature.to_bytes().to_vec()),
        ]);
        let hash = keccak256(&rlp::encode(&item));
        *cache = Some((fingerprint, hash));
        hash
    }
}

impl fmt::Debug for SignedTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SignedTransaction(hash={}, nonce={}, to={:?})",
            self.hash(),
            self.tx.nonce,
            self.tx.to
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_primitives::U256;

    fn sample_tx(nonce: u64) -> Transaction {
        Transaction::call(nonce, Address::from_low_u64(9), 42, vec![1, 2, 3])
    }

    #[test]
    fn sender_recovery_round_trip() {
        let kp = Keypair::from_seed(100);
        let signed = sample_tx(0).sign(&kp);
        assert_eq!(signed.sender(), Some(kp.address()));
    }

    #[test]
    fn tampering_changes_recovered_sender() {
        let kp = Keypair::from_seed(101);
        let mut signed = sample_tx(0).sign(&kp);
        // Warm the memoized sender, then tamper: the cache is keyed by the
        // transaction hash, so the stale recovery must not be served.
        assert_eq!(signed.sender(), Some(kp.address()));
        signed.tx.value = 43;
        assert_ne!(signed.sender(), Some(kp.address()));
    }

    #[test]
    fn cold_cache_recovers_and_memoizes() {
        let kp = Keypair::from_seed(104);
        let signed = sample_tx(0).sign(&kp);
        // Rebuild from parts to discard the pre-seeded cache.
        let parsed = SignedTransaction::from_parts(signed.tx.clone(), signed.signature);
        assert_eq!(parsed.sender(), Some(kp.address()));
        assert_eq!(parsed.sender(), Some(kp.address()));
        assert_eq!(parsed, signed);
    }

    #[test]
    fn nonce_affects_digest_and_hash() {
        let kp = Keypair::from_seed(102);
        let a = sample_tx(0).sign(&kp);
        let b = sample_tx(1).sign(&kp);
        assert_ne!(a.tx.signing_digest(), b.tx.signing_digest());
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn creation_tx_has_empty_to() {
        let tx = Transaction {
            nonce: 0,
            gas_price: 1,
            gas_limit: 100_000,
            to: None,
            value: 0,
            data: Bytes::new(),
        };
        // Digest must differ from a call to the zero address.
        let call = Transaction {
            to: Some(Address::ZERO),
            ..tx.clone()
        };
        assert_ne!(tx.signing_digest(), call.signing_digest());
    }

    #[test]
    fn hash_cache_invalidates_on_any_mutation() {
        let kp = Keypair::from_seed(105);
        let mut signed = sample_tx(0).sign(&kp);
        let warm = signed.hash();
        assert_eq!(signed.hash(), warm);
        // Scalar field mutation.
        signed.tx.gas_limit += 1;
        let after_gas = signed.hash();
        assert_ne!(after_gas, warm);
        // Calldata replacement (new buffer, new pointer).
        signed.tx.data = Bytes::from(vec![9, 9, 9]);
        let after_data = signed.hash();
        assert_ne!(after_data, after_gas);
        // Signature mutation.
        signed.signature.s[0] ^= 1;
        assert_ne!(signed.hash(), after_data);
    }

    #[test]
    fn hash_is_stable() {
        let kp = Keypair::from_seed(103);
        let signed = sample_tx(5).sign(&kp);
        assert_eq!(signed.hash(), signed.hash());
        // And sensitive to data.
        let mut other = signed.clone();
        other.tx.data = Bytes::from(U256::from_u64(7).to_be_bytes());
        assert_ne!(signed.hash(), other.hash());
    }
}
