//! Transaction receipts: status, gas accounting, logs, return data, trace.

use smacs_primitives::{Address, Bytes, H256};

use crate::gas::GasBreakdown;
use crate::trace::CallTrace;

/// Outcome of a transaction execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecStatus {
    /// Executed to completion; state changes committed.
    Success,
    /// Reverted with a reason; state changes rolled back, gas consumed.
    Reverted(String),
    /// Ran out of gas; state changes rolled back, all gas consumed.
    OutOfGas,
}

impl ExecStatus {
    /// True iff the transaction succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, ExecStatus::Success)
    }
}

/// An emitted event log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Log {
    /// Emitting contract.
    pub address: Address,
    /// Indexed topics.
    pub topics: Vec<H256>,
    /// Unindexed payload.
    pub data: Bytes,
}

/// The receipt of an executed transaction.
#[derive(Clone, PartialEq, Debug)]
pub struct Receipt {
    /// Hash of the transaction this receipt belongs to.
    pub tx_hash: H256,
    /// Block the transaction landed in.
    pub block_number: u64,
    /// Execution outcome.
    pub status: ExecStatus,
    /// Gas consumed (after refunds).
    pub gas_used: u64,
    /// Labeled gas attribution (the paper's Verify/Misc/Bitmap/Parse splits).
    pub breakdown: GasBreakdown,
    /// Logs emitted by successful execution (empty on revert).
    pub logs: Vec<Log>,
    /// ABI-encoded return data of the top-level call.
    pub return_data: Bytes,
    /// Full execution trace (input to the §V runtime-verification tools).
    pub trace: CallTrace,
}

impl Receipt {
    /// Revert reason, if the transaction reverted.
    pub fn revert_reason(&self) -> Option<&str> {
        match &self.status {
            ExecStatus::Reverted(reason) => Some(reason),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates() {
        assert!(ExecStatus::Success.is_success());
        assert!(!ExecStatus::Reverted("x".into()).is_success());
        assert!(!ExecStatus::OutOfGas.is_success());
    }

    #[test]
    fn revert_reason_extraction() {
        let receipt = Receipt {
            tx_hash: H256::ZERO,
            block_number: 0,
            status: ExecStatus::Reverted("token expired".into()),
            gas_used: 0,
            breakdown: GasBreakdown::default(),
            logs: vec![],
            return_data: Bytes::new(),
            trace: CallTrace::empty(),
        };
        assert_eq!(receipt.revert_reason(), Some("token expired"));
    }
}
