//! Execution traces: the call tree with per-frame storage access sets.
//!
//! Every transaction execution produces a [`CallTrace`]. The trace is the
//! raw material for the runtime-verification tools of §V: the ECF checker
//! walks the call tree looking for re-entered frames whose storage accesses
//! interleave, and Hydra compares head outputs recorded at the root.

use smacs_primitives::{Address, H256};

use crate::abi::Selector;

/// How a frame finished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameStatus {
    /// Completed normally.
    Success,
    /// Reverted (explicitly or by a failed require).
    Reverted,
    /// Ran out of gas.
    OutOfGas,
}

/// A storage access performed by a frame (directly, not via children).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageAccess {
    /// `sload(slot)`.
    Read {
        /// The slot read.
        slot: H256,
    },
    /// `sstore(slot, new)` observing `prev`.
    Write {
        /// The slot written.
        slot: H256,
        /// Value before the write.
        prev: H256,
        /// Value after the write.
        new: H256,
    },
}

/// One ordered event inside a frame: its own storage accesses interleaved
/// with markers for nested calls. The ordering is what lets the ECF checker
/// split a frame's accesses into before-the-callback and after-the-callback
/// sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A storage access by this frame's own code.
    Access(StorageAccess),
    /// A nested call; `child` indexes into [`TraceFrame::children`].
    Call {
        /// Index of the nested frame in `children`.
        child: usize,
    },
}

/// One message-call frame.
///
/// Call trees can be [`MAX_CALL_DEPTH`](crate::exec::MAX_CALL_DEPTH)-deep
/// (1024), and executors run on small pool-worker stacks, so every
/// whole-tree operation that structurally recurses — `Clone`, `Drop`,
/// [`TraceFrame::walk`], [`TraceFrame::reenters`] — is implemented
/// iteratively with an explicit worklist. (`Debug` and `PartialEq` remain
/// derived: they only run in tests/diagnostics on full-size stacks.)
#[derive(PartialEq, Debug)]
pub struct TraceFrame {
    /// The contract (or EOA) that received the call.
    pub callee: Address,
    /// The immediate caller (`msg.sender` for this frame).
    pub caller: Address,
    /// The 4-byte selector, if the calldata carried one (`msg.sig`).
    pub selector: Option<Selector>,
    /// Wei transferred with the call.
    pub value: u128,
    /// Call depth (0 = top-level transaction call).
    pub depth: usize,
    /// Ordered events: this frame's own storage accesses interleaved with
    /// nested-call markers.
    pub events: Vec<TraceEvent>,
    /// Nested calls, in order.
    pub children: Vec<TraceFrame>,
    /// How the frame finished.
    pub status: FrameStatus,
}

impl Clone for TraceFrame {
    fn clone(&self) -> Self {
        struct Work<'a> {
            src: &'a TraceFrame,
            dst: TraceFrame,
            next_child: usize,
        }
        fn shallow(f: &TraceFrame) -> TraceFrame {
            TraceFrame {
                callee: f.callee,
                caller: f.caller,
                selector: f.selector,
                value: f.value,
                depth: f.depth,
                events: f.events.clone(),
                children: Vec::with_capacity(f.children.len()),
                status: f.status,
            }
        }
        let mut stack = vec![Work {
            src: self,
            dst: shallow(self),
            next_child: 0,
        }];
        loop {
            let top = stack.last_mut().expect("returns before emptying");
            if top.next_child < top.src.children.len() {
                let child = &top.src.children[top.next_child];
                top.next_child += 1;
                stack.push(Work {
                    src: child,
                    dst: shallow(child),
                    next_child: 0,
                });
            } else {
                let done = stack.pop().expect("non-empty");
                match stack.last_mut() {
                    Some(parent) => parent.dst.children.push(done.dst),
                    None => return done.dst,
                }
            }
        }
    }
}

impl Drop for TraceFrame {
    fn drop(&mut self) {
        // Hoist descendants into a flat worklist so the compiler-generated
        // recursive drop glue only ever sees empty `children`.
        let mut stack = std::mem::take(&mut self.children);
        while let Some(mut frame) = stack.pop() {
            stack.append(&mut frame.children);
        }
    }
}

impl TraceFrame {
    /// All frames (this one and descendants), pre-order.
    pub fn walk(&self) -> Vec<&TraceFrame> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(frame) = stack.pop() {
            out.push(frame);
            stack.extend(frame.children.iter().rev());
        }
        out
    }

    /// This frame's own storage accesses, in order.
    pub fn accesses(&self) -> impl Iterator<Item = &StorageAccess> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Access(a) => Some(a),
            TraceEvent::Call { .. } => None,
        })
    }

    /// Slots written by this frame's own code.
    pub fn written_slots(&self) -> impl Iterator<Item = H256> + '_ {
        self.accesses().filter_map(|a| match a {
            StorageAccess::Write { slot, .. } => Some(*slot),
            StorageAccess::Read { .. } => None,
        })
    }

    /// Slots read by this frame's own code.
    pub fn read_slots(&self) -> impl Iterator<Item = H256> + '_ {
        self.accesses().filter_map(|a| match a {
            StorageAccess::Read { slot } => Some(*slot),
            StorageAccess::Write { .. } => None,
        })
    }

    /// Whether any descendant frame (strictly below this one) re-enters
    /// `addr` — i.e. calls back into a contract that already has a live
    /// frame above it.
    pub fn reenters(&self, addr: Address) -> bool {
        // (frame, live) where `live` = frame or an ancestor is `addr`.
        let mut stack = vec![(self, self.callee == addr)];
        while let Some((frame, live)) = stack.pop() {
            for child in &frame.children {
                if live && child.callee == addr {
                    return true;
                }
                stack.push((child, live || child.callee == addr));
            }
        }
        false
    }
}

/// The complete trace of one transaction.
#[derive(Clone, PartialEq, Debug)]
pub struct CallTrace {
    /// The top-level frame (absent for plain EOA→EOA transfers).
    pub root: Option<TraceFrame>,
}

impl CallTrace {
    /// An empty trace.
    pub fn empty() -> Self {
        CallTrace { root: None }
    }

    /// All frames in pre-order.
    pub fn frames(&self) -> Vec<&TraceFrame> {
        self.root.as_ref().map(|r| r.walk()).unwrap_or_default()
    }

    /// Maximum call depth reached.
    pub fn max_depth(&self) -> usize {
        self.frames().iter().map(|f| f.depth).max().unwrap_or(0)
    }

    /// Whether contract `addr` is re-entered anywhere in the trace.
    pub fn has_reentrancy(&self, addr: Address) -> bool {
        self.root
            .as_ref()
            .map(|r| r.reenters(addr))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(callee: u64, depth: usize, children: Vec<TraceFrame>) -> TraceFrame {
        TraceFrame {
            callee: Address::from_low_u64(callee),
            caller: Address::from_low_u64(0),
            selector: None,
            value: 0,
            depth,
            events: (0..children.len())
                .map(|child| TraceEvent::Call { child })
                .collect(),
            children,
            status: FrameStatus::Success,
        }
    }

    #[test]
    fn walk_is_preorder() {
        let trace = frame(
            1,
            0,
            vec![frame(2, 1, vec![frame(3, 2, vec![])]), frame(4, 1, vec![])],
        );
        let order: Vec<u64> = trace
            .walk()
            .iter()
            .map(|f| u64::from_be_bytes(f.callee.0[12..].try_into().unwrap()))
            .collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reentrancy_detection() {
        // 1 → 2 → 1 is re-entrant on 1.
        let reentrant = frame(1, 0, vec![frame(2, 1, vec![frame(1, 2, vec![])])]);
        assert!(reentrant.reenters(Address::from_low_u64(1)));
        assert!(!reentrant.reenters(Address::from_low_u64(2)));

        // 1 → 2, 1 → 2 again (sequential, not nested) is NOT re-entrant on 2.
        let sequential = frame(1, 0, vec![frame(2, 1, vec![]), frame(2, 1, vec![])]);
        assert!(!sequential.reenters(Address::from_low_u64(2)));
    }

    #[test]
    fn trace_depth() {
        let trace = CallTrace {
            root: Some(frame(1, 0, vec![frame(2, 1, vec![frame(3, 2, vec![])])])),
        };
        assert_eq!(trace.max_depth(), 2);
        assert_eq!(CallTrace::empty().max_depth(), 0);
    }
}
