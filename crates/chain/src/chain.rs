//! Chain orchestration: block production, transaction intake, deployment,
//! dry runs, forking, and reorgs.

use smacs_crypto::{keccak256, Keypair};
use smacs_primitives::pool::WorkerPool;
use smacs_primitives::rlp::{self, Item, ToRlp};
use smacs_primitives::{Address, Bytes, H256};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::block::{Block, BlockEnv};
use crate::contract::{Contract, ContractRegistry, DeployedContract};
use crate::exec::{Executor, MessageCall, VmError};
use crate::gas::{GasBreakdown, GasSchedule};
use crate::receipt::{ExecStatus, Log, Receipt};
use crate::state::{AccountInfo, TouchSet, WorldState};
use crate::trace::CallTrace;
use crate::tx::{SignedTransaction, Transaction};

/// Chain-level configuration.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Seconds between consecutive block timestamps.
    pub block_time: u64,
    /// Genesis Unix timestamp.
    pub genesis_timestamp: u64,
    /// Gas cost constants.
    pub schedule: GasSchedule,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            block_time: 13,                   // Ethereum's paper-era average
            genesis_timestamp: 1_546_300_800, // 2019-01-01, the paper's data-collection era
            schedule: GasSchedule::default(),
        }
    }
}

/// Why a transaction was rejected before execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChainError {
    /// The signature did not recover to any sender.
    InvalidSignature,
    /// The nonce did not match the sender's account nonce — Ethereum's
    /// replay protection (§II-C): an already-accepted transaction "will not
    /// be processed again".
    BadNonce {
        /// Nonce the account expects next.
        expected: u64,
        /// Nonce the transaction carried.
        got: u64,
    },
    /// Sender cannot cover `gas_limit × gas_price + value`.
    InsufficientFunds,
    /// Gas limit below the intrinsic cost of the calldata.
    IntrinsicGasTooLow,
    /// Reorg request deeper than the chain.
    BadReorgHeight,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::InvalidSignature => write!(f, "invalid transaction signature"),
            ChainError::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            ChainError::InsufficientFunds => write!(f, "insufficient funds for gas + value"),
            ChainError::IntrinsicGasTooLow => write!(f, "gas limit below intrinsic cost"),
            ChainError::BadReorgHeight => write!(f, "reorg height beyond chain tip"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Everything a transaction execution produces besides its chain-level
/// bookkeeping (receipt assembly, pending-block membership). Produced by
/// the core execution routine so it can run identically on the canonical
/// state and on per-transaction forks.
struct TxOutcome {
    status: ExecStatus,
    return_data: Bytes,
    logs: Vec<Log>,
    trace: CallTrace,
    gas_used: u64,
    breakdown: GasBreakdown,
}

/// How [`Chain::execute_block_with`] schedules a block's transactions.
pub enum BlockMode<'p> {
    /// One at a time on the canonical state — the reference semantics.
    Sequential,
    /// Optimistic Block-STM-style parallel execution on the given pool;
    /// results are bit-identical to [`BlockMode::Sequential`].
    Parallel(&'p WorkerPool),
}

/// The net state effect of a validated speculation: the final value of
/// every account/slot its transaction wrote, read off the transaction's
/// fork. Applying these to the canonical state reproduces a sequential
/// execution exactly, because validation guaranteed every value the
/// speculation *read* matches the canonical state at apply time.
struct TxDelta {
    /// `None` means the account ended absent (all its writes reverted and
    /// it never existed in the pre-state) — nothing to apply.
    accounts: Vec<(Address, Option<AccountInfo>)>,
    storage: Vec<(Address, H256, H256)>,
}

impl TxDelta {
    fn capture(fork: &WorldState, touch: &TouchSet) -> TxDelta {
        let mut accounts: Vec<_> = touch
            .account_writes
            .iter()
            .map(|&addr| (addr, fork.account(addr).cloned()))
            .collect();
        accounts.sort_by_key(|(addr, _)| *addr);
        let mut storage: Vec<_> = touch
            .storage_writes
            .iter()
            .map(|&(addr, key)| (addr, key, fork.storage_get(addr, key)))
            .collect();
        storage.sort_by_key(|(addr, key, _)| (*addr, *key));
        TxDelta { accounts, storage }
    }

    fn apply(self, state: &mut WorldState) {
        for (addr, info) in self.accounts {
            if let Some(info) = info {
                state.apply_account(addr, info);
            }
        }
        for (addr, key, value) in self.storage {
            state.storage_set(addr, key, value);
        }
    }
}

/// One transaction's parallel-phase result, pending in-order validation.
struct Speculation {
    outcome: Result<TxOutcome, ChainError>,
    touch: TouchSet,
    delta: TxDelta,
}

/// The simulated chain: state, contracts, blocks, receipts.
///
/// Transactions submitted with [`Chain::submit`] execute immediately into
/// the pending block; [`Chain::seal_block`] closes it and advances the
/// timestamp. A fork ([`Chain::fork`]) deep-copies the state for off-chain
/// simulation (what a Token Service runs its verification tools on), and
/// [`Chain::reorg`] re-derives the state on an alternative suffix of blocks
/// — used to demonstrate that even a 51% adversary cannot mint tokens
/// (§VII-A).
pub struct Chain {
    config: ChainConfig,
    state: WorldState,
    registry: ContractRegistry,
    blocks: Vec<Block>,
    pending: Vec<SignedTransaction>,
    pending_timestamp: u64,
    receipts: HashMap<H256, Receipt>,
    genesis_accounts: Vec<(Address, u128)>,
}

impl Chain {
    /// A fresh chain with the given configuration.
    pub fn new(config: ChainConfig) -> Self {
        let genesis = Block::genesis(config.genesis_timestamp);
        let pending_timestamp = config.genesis_timestamp + config.block_time;
        Chain {
            config,
            state: WorldState::new(),
            registry: ContractRegistry::new(),
            blocks: vec![genesis],
            pending: Vec::new(),
            pending_timestamp,
            receipts: HashMap::new(),
            genesis_accounts: Vec::new(),
        }
    }

    /// A chain with default config.
    pub fn default_chain() -> Self {
        Self::new(ChainConfig::default())
    }

    /// The active gas schedule.
    pub fn schedule(&self) -> &GasSchedule {
        &self.config.schedule
    }

    /// Immutable view of the world state.
    pub fn state(&self) -> &WorldState {
        &self.state
    }

    /// The contract registry.
    pub fn registry(&self) -> &ContractRegistry {
        &self.registry
    }

    /// Height of the last sealed block.
    pub fn height(&self) -> u64 {
        self.blocks.last().expect("genesis always present").number
    }

    /// The sealed blocks, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The environment the pending block executes under.
    pub fn pending_env(&self) -> BlockEnv {
        BlockEnv {
            number: self.height() + 1,
            timestamp: self.pending_timestamp,
        }
    }

    /// Receipt for a transaction hash, if it has been executed.
    pub fn receipt(&self, tx_hash: H256) -> Option<&Receipt> {
        self.receipts.get(&tx_hash)
    }

    /// Create a funded externally owned account.
    pub fn fund_account(&mut self, addr: Address, wei: u128) {
        self.state.create_account(addr, wei);
        self.state.commit();
        self.genesis_accounts.push((addr, wei));
    }

    /// Convenience: deterministic funded keypair for tests/experiments.
    pub fn funded_keypair(&mut self, seed: u64, wei: u128) -> Keypair {
        let kp = Keypair::from_seed(seed);
        self.fund_account(kp.address(), wei);
        kp
    }

    /// Advance the pending block's timestamp by `seconds` (time travel for
    /// expiry tests; monotone only).
    pub fn advance_time(&mut self, seconds: u64) {
        self.pending_timestamp += seconds;
    }

    /// The contract address Ethereum derives for a creation:
    /// `keccak256(rlp([sender, nonce]))[12..]`.
    pub fn contract_address(sender: Address, nonce: u64) -> Address {
        let item = Item::List(vec![sender.to_rlp(), nonce.to_rlp()]);
        let hash = keccak256(&rlp::encode(&item));
        Address::from_slice(&hash.0[12..]).expect("20-byte suffix")
    }

    /// Deploy `logic` from `owner`, charging creation gas (intrinsic +
    /// constructor execution + code deposit). Returns the deployment.
    pub fn deploy(
        &mut self,
        owner: &Keypair,
        logic: Arc<dyn Contract>,
    ) -> Result<(DeployedContract, Receipt), ChainError> {
        self.deploy_with_value(owner, logic, 0)
    }

    /// [`Chain::deploy`] with an endowment.
    pub fn deploy_with_value(
        &mut self,
        owner: &Keypair,
        logic: Arc<dyn Contract>,
        value: u128,
    ) -> Result<(DeployedContract, Receipt), ChainError> {
        self.deploy_with_limit(owner, logic, value, 10_000_000)
    }

    /// [`Chain::deploy`] with an explicit gas limit — large storage
    /// initializations (Table IV's 126 kbit bitmap) exceed the default.
    pub fn deploy_with_limit(
        &mut self,
        owner: &Keypair,
        logic: Arc<dyn Contract>,
        value: u128,
        gas_limit: u64,
    ) -> Result<(DeployedContract, Receipt), ChainError> {
        let sender = owner.address();
        let nonce = self.state.nonce(sender);
        let tx = Transaction {
            nonce,
            gas_price: 1_000_000_000,
            gas_limit,
            to: None,
            value,
            data: Bytes::new(),
        };
        let signed = tx.sign(owner);
        let address = Self::contract_address(sender, nonce);
        self.registry.insert(address, logic.clone());
        let receipt = self.execute_transaction(&signed)?;
        let deployed = DeployedContract { address, logic };
        Ok((deployed, receipt))
    }

    /// Submit a signed transaction: validate, execute into the pending
    /// block, and return the receipt.
    pub fn submit(&mut self, signed: SignedTransaction) -> Result<Receipt, ChainError> {
        self.execute_transaction(&signed)
    }

    /// Build, sign, and submit a call transaction from `from` in one step.
    pub fn call_contract(
        &mut self,
        from: &Keypair,
        to: Address,
        value: u128,
        data: impl Into<Bytes>,
    ) -> Result<Receipt, ChainError> {
        let nonce = self.state.nonce(from.address());
        let tx = Transaction::call(nonce, to, value, data.into());
        self.submit(tx.sign(from))
    }

    fn execute_transaction(&mut self, signed: &SignedTransaction) -> Result<Receipt, ChainError> {
        let env = self.pending_env();
        let outcome = Self::execute_tx_on(
            &mut self.state,
            &self.registry,
            &self.config.schedule,
            env,
            signed,
            true,
        )?;
        Ok(self.record_tx(signed, outcome))
    }

    /// The core per-transaction execution routine, usable on the canonical
    /// state (sequential / conflict re-execution) and on per-transaction
    /// forks (parallel speculation). `commit` controls whether the state's
    /// journal is flushed at the usual points — `false` on forks, whose
    /// net effect is harvested as a [`TxDelta`] instead.
    ///
    /// Validation reads (sender nonce/balance) go through the tracked
    /// accessors so a speculation that failed validation on a stale fork
    /// still conflicts with the earlier transaction that changed the
    /// sender's account, and gets re-executed.
    fn execute_tx_on(
        state: &mut WorldState,
        registry: &ContractRegistry,
        schedule: &GasSchedule,
        env: BlockEnv,
        signed: &SignedTransaction,
        commit: bool,
    ) -> Result<TxOutcome, ChainError> {
        let sender = signed.sender().ok_or(ChainError::InvalidSignature)?;
        let tx = &signed.tx;
        let expected_nonce = state.nonce_tracked(sender);
        if tx.nonce != expected_nonce {
            return Err(ChainError::BadNonce {
                expected: expected_nonce,
                got: tx.nonce,
            });
        }
        let gas_cost = tx.gas_limit as u128 * tx.gas_price;
        let upfront = gas_cost.saturating_add(tx.value);
        if state.balance_tracked(sender) < upfront {
            return Err(ChainError::InsufficientFunds);
        }
        let is_create = tx.to.is_none();
        let intrinsic = schedule.intrinsic_gas(&tx.data, is_create);
        if intrinsic > tx.gas_limit {
            return Err(ChainError::IntrinsicGasTooLow);
        }

        // Buy gas and bump the nonce (irrevocable even on revert).
        state.debit(sender, gas_cost);
        state.bump_nonce(sender);
        if commit {
            state.commit();
        }

        let mut executor = Executor::new(state, registry, schedule, env, sender, tx.gas_limit);
        executor
            .meter
            .charge(intrinsic)
            .expect("intrinsic fits: checked above");

        let (status, return_data, logs, trace, gas_used, breakdown) = if is_create {
            let address = Self::contract_address(sender, expected_nonce);
            let logic = registry
                .get(address)
                .expect("deploy registers logic before executing");
            let outcome = (|| {
                executor
                    .meter
                    .charge(logic.code_len() as u64 * executor.schedule.code_deposit)?;
                executor.construct(sender, address, tx.value, logic.clone())
            })();
            let logs = executor.take_logs();
            let trace = executor.take_trace();
            let breakdown = executor.meter.breakdown();
            let gas_used = executor.meter.effective_used();
            match outcome {
                Ok(()) => {
                    state.set_contract(address, logic.code_len());
                    (
                        ExecStatus::Success,
                        Bytes::new(),
                        logs,
                        trace,
                        gas_used,
                        breakdown,
                    )
                }
                Err(err) => (
                    vm_error_status(&err),
                    Bytes::new(),
                    Vec::new(),
                    trace,
                    gas_used,
                    breakdown,
                ),
            }
        } else {
            let callee = tx.to.expect("checked is_create");
            let outcome = executor.call(MessageCall {
                caller: sender,
                callee,
                value: tx.value,
                data: tx.data.clone(),
            });
            let logs = executor.take_logs();
            let trace = executor.take_trace();
            let breakdown = executor.meter.breakdown();
            let gas_used = executor.meter.effective_used();
            match outcome {
                Ok(ret) => (ExecStatus::Success, ret, logs, trace, gas_used, breakdown),
                Err(err) => (
                    vm_error_status(&err),
                    Bytes::new(),
                    Vec::new(),
                    trace,
                    gas_used,
                    breakdown,
                ),
            }
        };

        // Refund unused gas.
        let refund_wei = (tx.gas_limit - gas_used) as u128 * tx.gas_price;
        state.credit(sender, refund_wei);
        if commit {
            state.commit();
        }

        Ok(TxOutcome {
            status,
            return_data,
            logs,
            trace,
            gas_used,
            breakdown,
        })
    }

    /// Chain-level bookkeeping for an executed transaction: build the
    /// receipt, add the transaction to the pending block, index the receipt.
    fn record_tx(&mut self, signed: &SignedTransaction, outcome: TxOutcome) -> Receipt {
        let receipt = Receipt {
            tx_hash: signed.hash(),
            block_number: self.height() + 1,
            status: outcome.status,
            gas_used: outcome.gas_used,
            breakdown: outcome.breakdown,
            logs: outcome.logs,
            return_data: outcome.return_data,
            trace: outcome.trace,
        };
        self.pending.push(signed.clone());
        self.receipts.insert(receipt.tx_hash, receipt.clone());
        receipt
    }

    /// The single block-execution entry point: run `txs` into the pending
    /// block under the given [`BlockMode`]. Per-transaction failures never
    /// abort the block — each transaction gets its own `Result`, and
    /// callers that replay history simply ignore the errors, as miners do.
    pub fn execute_block_with(
        &mut self,
        txs: &[SignedTransaction],
        mode: BlockMode<'_>,
    ) -> Vec<Result<Receipt, ChainError>> {
        match mode {
            BlockMode::Sequential => txs
                .iter()
                .map(|signed| self.execute_transaction(signed))
                .collect(),
            BlockMode::Parallel(pool) => self.execute_block_parallel(txs, pool),
        }
    }

    /// Execute `txs` into the pending block and seal it — block production
    /// through one pipeline, sequential or parallel.
    pub fn seal_block_with(
        &mut self,
        txs: &[SignedTransaction],
        mode: BlockMode<'_>,
    ) -> (Vec<Result<Receipt, ChainError>>, &Block) {
        let results = self.execute_block_with(txs, mode);
        (results, self.seal_block())
    }

    /// Optimistic Block-STM-style parallel block execution.
    ///
    /// Phase 1 (parallel): every transaction runs speculatively on its own
    /// [`WorldState::fork`] of the pre-block state, with touch recording
    /// on; its net effect is harvested as a [`TxDelta`].
    ///
    /// Phase 2 (sequential, in transaction order): a speculation is valid
    /// iff its read set does not overlap the writes of any earlier
    /// transaction in the block ([`TouchSet::conflicts_with_writes`]) —
    /// then its delta applies to the canonical state verbatim. Conflicting
    /// transactions re-execute on the canonical state. Results — receipts,
    /// traces, logs, gas, final state — are bit-identical to
    /// [`BlockMode::Sequential`]; the differential suite pins this.
    pub fn execute_block_parallel(
        &mut self,
        txs: &[SignedTransaction],
        pool: &WorkerPool,
    ) -> Vec<Result<Receipt, ChainError>> {
        if txs.is_empty() {
            return Vec::new();
        }
        let env = self.pending_env();
        let base = &self.state;
        let registry = &self.registry;
        let schedule = &self.config.schedule;
        let speculations: Vec<Speculation> = pool.scope_map(txs.len(), |i| {
            let mut fork = base.fork();
            fork.begin_touch_recording();
            let outcome = Self::execute_tx_on(&mut fork, registry, schedule, env, &txs[i], false);
            let touch = fork.take_touch_set();
            let delta = TxDelta::capture(&fork, &touch);
            Speculation {
                outcome,
                touch,
                delta,
            }
        });

        let mut committed = TouchSet::default();
        let mut results = Vec::with_capacity(txs.len());
        for (i, spec) in speculations.into_iter().enumerate() {
            let outcome = if spec.touch.conflicts_with_writes(&committed) {
                // An earlier transaction wrote something this speculation
                // read: its fork view was stale. Re-execute on the
                // canonical state (recording, so its real writes join the
                // committed set).
                self.state.begin_touch_recording();
                let outcome = Self::execute_tx_on(
                    &mut self.state,
                    &self.registry,
                    &self.config.schedule,
                    env,
                    &txs[i],
                    true,
                );
                let touch = self.state.take_touch_set();
                committed.absorb_writes(&touch);
                outcome
            } else {
                spec.delta.apply(&mut self.state);
                self.state.commit();
                committed.absorb_writes(&spec.touch);
                spec.outcome
            };
            results.push(outcome.map(|o| self.record_tx(&txs[i], o)));
        }
        results
    }

    /// Seal the pending block and start a new one.
    pub fn seal_block(&mut self) -> &Block {
        let parent_hash = self.blocks.last().expect("genesis").hash();
        let block = Block {
            number: self.height() + 1,
            timestamp: self.pending_timestamp,
            parent_hash,
            transactions: std::mem::take(&mut self.pending),
        };
        self.blocks.push(block);
        self.pending_timestamp += self.config.block_time;
        self.blocks.last().expect("just pushed")
    }

    /// `eth_call`-style dry run: execute without committing state, without
    /// nonce/balance bookkeeping. Returns the call result, gas used, and
    /// the trace — everything a TS-side verification tool needs.
    pub fn dry_run(
        &mut self,
        from: Address,
        to: Address,
        value: u128,
        data: impl Into<Bytes>,
    ) -> (Result<Bytes, VmError>, u64, CallTrace, GasBreakdown) {
        let snapshot = self.state.snapshot();
        let env = self.pending_env();
        let mut executor = Executor::new(
            &mut self.state,
            &self.registry,
            &self.config.schedule,
            env,
            from,
            10_000_000,
        );
        let result = executor.call(MessageCall {
            caller: from,
            callee: to,
            value,
            data: data.into(),
        });
        let trace = executor.take_trace();
        let gas = executor.meter.used();
        let breakdown = executor.meter.breakdown();
        self.state.revert_to(snapshot);
        (result, gas, trace, breakdown)
    }

    /// Deep-copy the chain — the "local testnet" a Token Service runs its
    /// runtime-verification tools on (§V). Contract logic is shared
    /// (immutable); state and history are copied.
    pub fn fork(&self) -> Chain {
        Chain {
            config: self.config.clone(),
            state: self.state.fork(),
            registry: self.registry.clone(),
            blocks: self.blocks.clone(),
            pending: self.pending.clone(),
            pending_timestamp: self.pending_timestamp,
            receipts: self.receipts.clone(),
            genesis_accounts: self.genesis_accounts.clone(),
        }
    }

    /// Rewrite history from `keep_height` (exclusive): drop every later
    /// block, reset state to genesis, and replay the kept prefix. Returns
    /// the dropped transactions so a caller can model an adversary
    /// selectively re-including them (§VII-A's 51% discussion).
    ///
    /// Replay re-executes deployments because contract logic stays in the
    /// registry keyed by address.
    pub fn reorg(&mut self, keep_height: u64) -> Result<Vec<SignedTransaction>, ChainError> {
        if keep_height > self.height() {
            return Err(ChainError::BadReorgHeight);
        }
        let dropped: Vec<SignedTransaction> = self
            .blocks
            .iter()
            .filter(|b| b.number > keep_height)
            .flat_map(|b| b.transactions.iter().cloned())
            .chain(self.pending.drain(..))
            .collect();

        let replay: Vec<Block> = self
            .blocks
            .iter()
            .filter(|b| b.number != 0 && b.number <= keep_height)
            .cloned()
            .collect();

        // Reset to genesis. Funding is not blockchain history in this
        // simulator (it is genesis alloc), so we must rebuild it: capture
        // EOA balances seeded via fund_account by replaying from scratch is
        // impossible — instead we conservatively keep genesis accounts that
        // never appear as contract addresses. Simplest sound approach:
        // start from empty state, re-fund from recorded genesis alloc.
        let genesis_alloc = self.genesis_alloc();
        self.state = WorldState::new();
        for (addr, wei) in genesis_alloc {
            self.state.create_account(addr, wei);
        }
        self.state.commit();
        self.blocks.truncate(1);
        self.pending_timestamp = self.config.genesis_timestamp + self.config.block_time;
        self.receipts.clear();

        for block in replay {
            // Failed replays are possible if the adversary reordered
            // dependencies; the block pipeline returns per-tx results and
            // never aborts, so dropping them ignores errors like miners do.
            let _ = self.seal_block_with(&block.transactions, BlockMode::Sequential);
        }
        Ok(dropped)
    }

    fn genesis_alloc(&self) -> Vec<(Address, u128)> {
        self.genesis_accounts.clone()
    }

    /// Record of genesis-funded accounts (populated by [`Chain::fund_account`]).
    pub fn genesis_accounts_list(&self) -> &[(Address, u128)] {
        &self.genesis_accounts
    }
}

fn vm_error_status(err: &VmError) -> ExecStatus {
    match err {
        VmError::OutOfGas(_) => ExecStatus::OutOfGas,
        VmError::Revert(reason) => ExecStatus::Reverted(reason.clone()),
        other => ExecStatus::Reverted(other.to_string()),
    }
}
