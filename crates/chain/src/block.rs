//! Blocks and the block-level environment contracts observe.

use smacs_crypto::{keccak256, Keccak256};
use smacs_primitives::H256;

use crate::tx::SignedTransaction;

/// The block context visible to executing contracts (`block.timestamp` is
/// the `now()` of Alg. 1's expiry check).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEnv {
    /// Block height.
    pub number: u64,
    /// Unix timestamp in seconds.
    pub timestamp: u64,
}

impl BlockEnv {
    /// The genesis environment at a chosen start time.
    pub fn genesis(timestamp: u64) -> Self {
        BlockEnv {
            number: 0,
            timestamp,
        }
    }
}

/// A mined block: an ordered list of transactions plus chain linkage.
#[derive(Clone, Debug)]
pub struct Block {
    /// Block height.
    pub number: u64,
    /// Unix timestamp in seconds (monotone non-decreasing along the chain).
    pub timestamp: u64,
    /// Hash of the parent block.
    pub parent_hash: H256,
    /// The included transactions, in execution order.
    pub transactions: Vec<SignedTransaction>,
}

impl Block {
    /// The block hash: keccak over header fields and transaction hashes.
    pub fn hash(&self) -> H256 {
        let mut hasher = Keccak256::new();
        hasher.update(&self.number.to_be_bytes());
        hasher.update(&self.timestamp.to_be_bytes());
        hasher.update(self.parent_hash.as_bytes());
        for tx in &self.transactions {
            hasher.update(tx.hash().as_bytes());
        }
        hasher.finalize()
    }

    /// The conventional genesis block.
    pub fn genesis(timestamp: u64) -> Self {
        Block {
            number: 0,
            timestamp,
            parent_hash: keccak256(b"smacs-genesis"),
            transactions: Vec::new(),
        }
    }

    /// The environment contracts see while this block executes.
    pub fn env(&self) -> BlockEnv {
        BlockEnv {
            number: self.number,
            timestamp: self.timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_depends_on_contents() {
        let genesis = Block::genesis(1_500_000_000);
        let mut other = genesis.clone();
        other.timestamp += 1;
        assert_ne!(genesis.hash(), other.hash());
    }

    #[test]
    fn env_mirrors_header() {
        let block = Block {
            number: 7,
            timestamp: 99,
            parent_hash: H256::ZERO,
            transactions: vec![],
        };
        assert_eq!(
            block.env(),
            BlockEnv {
                number: 7,
                timestamp: 99
            }
        );
    }
}
