//! Differential test: the journaled/overlay `WorldState` must be
//! observably identical to a naive clone-the-world reference model across
//! randomized operation sequences — writes, nested checkpoints, reverts,
//! commits, and forks.
//!
//! The reference model implements snapshots by deep-cloning its entire maps
//! and reverts by swapping the clone back, i.e. exactly the semantics the
//! optimized implementation is supposed to preserve while being
//! O(changes) instead of O(world).

use smacs_chain::state::WorldState;
use smacs_primitives::{Address, H256, U256};
use std::collections::HashMap;

/// Deterministic xorshift* PRNG so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The clone-based reference: full-copy snapshots, full-copy forks.
#[derive(Clone, Default)]
struct RefState {
    accounts: HashMap<Address, (u64, u128, usize, bool)>, // nonce, balance, code_len, is_contract
    storage: HashMap<(Address, H256), H256>,
}

impl RefState {
    fn exists(&self, a: Address) -> bool {
        self.accounts.contains_key(&a)
    }

    fn entry(&mut self, a: Address) -> &mut (u64, u128, usize, bool) {
        self.accounts.entry(a).or_default()
    }

    fn balance(&self, a: Address) -> u128 {
        self.accounts.get(&a).map(|e| e.1).unwrap_or(0)
    }

    fn storage_get(&self, a: Address, k: H256) -> H256 {
        self.storage.get(&(a, k)).copied().unwrap_or(H256::ZERO)
    }

    fn storage_set(&mut self, a: Address, k: H256, v: H256) {
        if v.is_zero() {
            self.storage.remove(&(a, k));
        } else {
            self.storage.insert((a, k), v);
        }
    }
}

const ADDR_SPACE: u64 = 5;
const KEY_SPACE: u64 = 6;

fn addr(n: u64) -> Address {
    Address::from_low_u64(n + 1)
}

fn key(n: u64) -> H256 {
    H256::from_u256(U256::from_u64(n))
}

/// Assert the merged observable state matches the reference exactly:
/// existence, account fields, and every slot of the small address/key space.
fn assert_equivalent(world: &WorldState, reference: &RefState, ctx: &str) {
    for a in 0..ADDR_SPACE {
        let a = addr(a);
        assert_eq!(world.exists(a), reference.exists(a), "{ctx}: exists({a})");
        let expected = reference.accounts.get(&a);
        assert_eq!(
            world.nonce(a),
            expected.map(|e| e.0).unwrap_or(0),
            "{ctx}: nonce({a})"
        );
        assert_eq!(
            world.balance(a),
            reference.balance(a),
            "{ctx}: balance({a})"
        );
        assert_eq!(
            world.account(a).map(|acct| acct.code_len).unwrap_or(0),
            expected.map(|e| e.2).unwrap_or(0),
            "{ctx}: code_len({a})"
        );
        assert_eq!(
            world.is_contract(a),
            expected.map(|e| e.3).unwrap_or(false),
            "{ctx}: is_contract({a})"
        );
        for k in 0..KEY_SPACE {
            let k = key(k);
            assert_eq!(
                world.storage_get(a, k),
                reference.storage_get(a, k),
                "{ctx}: storage({a}, {k})"
            );
        }
        // Non-zero slot accounting must agree too (exercises tombstones).
        let ref_count = reference.storage.keys().filter(|(ra, _)| *ra == a).count();
        assert_eq!(
            world.storage_slot_count(a),
            ref_count,
            "{ctx}: slot_count({a})"
        );
    }
}

/// One operation applied identically to both implementations.
fn apply_random_op(
    rng: &mut Rng,
    world: &mut WorldState,
    reference: &mut RefState,
    snapshots: &mut Vec<(smacs_chain::state::Snapshot, RefState)>,
    forks: &mut Vec<(WorldState, RefState)>,
    step: usize,
) {
    match rng.below(12) {
        // Balance writes (credit / debit / set).
        0 | 1 => {
            let a = addr(rng.below(ADDR_SPACE));
            let amount = rng.below(1000) as u128;
            world.credit(a, amount);
            let entry = reference.entry(a);
            entry.1 = entry.1.saturating_add(amount);
        }
        2 => {
            let a = addr(rng.below(ADDR_SPACE));
            let amount = rng.below(1500) as u128;
            let ok = world.debit(a, amount);
            let can = reference.balance(a) >= amount;
            assert_eq!(ok, can, "step {step}: debit admissibility");
            if can {
                reference.entry(a).1 -= amount;
            }
        }
        // Storage writes, including zero-clears.
        3..=5 => {
            let a = addr(rng.below(ADDR_SPACE));
            let k = rng.below(KEY_SPACE);
            let v = if rng.below(4) == 0 {
                U256::ZERO
            } else {
                U256::from_u64(rng.below(1_000_000) + 1)
            };
            world.storage_set_u256(a, key(k), v);
            reference.storage_set(a, key(k), H256::from_u256(v));
        }
        6 => {
            let a = addr(rng.below(ADDR_SPACE));
            world.bump_nonce(a);
            reference.entry(a).0 += 1;
        }
        7 => {
            let a = addr(rng.below(ADDR_SPACE));
            let code_len = rng.below(4096) as usize;
            world.set_contract(a, code_len);
            let entry = reference.entry(a);
            entry.2 = code_len;
            entry.3 = true;
        }
        // Checkpoint management: push, revert-to-random, commit.
        8 => {
            if snapshots.len() < 6 {
                snapshots.push((world.snapshot(), reference.clone()));
            }
        }
        9 => {
            if !snapshots.is_empty() {
                // Reverting to snapshot i invalidates the deeper ones.
                let i = rng.below(snapshots.len() as u64) as usize;
                let (snap, ref_copy) = snapshots[i].clone();
                world.revert_to(snap);
                *reference = ref_copy;
                snapshots.truncate(i);
            }
        }
        10 => {
            world.commit();
            snapshots.clear(); // commit invalidates outstanding snapshots
        }
        // Forking: the fork must observe the same state and stay isolated.
        11 => {
            if forks.len() < 3 {
                forks.push((world.fork(), reference.clone()));
            }
        }
        _ => unreachable!(),
    }
}

#[test]
fn journaled_state_matches_clone_reference() {
    for seed in 1..=20u64 {
        let mut rng = Rng(seed | 1);
        let mut world = WorldState::new();
        let mut reference = RefState::default();
        let mut snapshots: Vec<(smacs_chain::state::Snapshot, RefState)> = Vec::new();
        let mut forks: Vec<(WorldState, RefState)> = Vec::new();

        for step in 0..400 {
            apply_random_op(
                &mut rng,
                &mut world,
                &mut reference,
                &mut snapshots,
                &mut forks,
                step,
            );
            assert_equivalent(&world, &reference, &format!("seed {seed} step {step}"));
        }

        // Forks captured along the way must still show exactly the state at
        // their creation point (isolation from everything that followed).
        for (i, (fork, expected)) in forks.iter().enumerate() {
            assert_equivalent(fork, expected, &format!("seed {seed} fork {i}"));
        }

        // And mutating a fork must not affect the original.
        if let Some((mut fork, mut fork_ref)) = forks.pop() {
            let before_world = reference.clone();
            for step in 0..100 {
                let mut fork_snaps = Vec::new();
                let mut fork_forks = Vec::new();
                apply_random_op(
                    &mut rng,
                    &mut fork,
                    &mut fork_ref,
                    &mut fork_snaps,
                    &mut fork_forks,
                    step,
                );
            }
            assert_equivalent(
                &world,
                &before_world,
                &format!("seed {seed} post-fork-mutation"),
            );
        }
    }
}

/// Deep nesting: a tower of checkpoints unwound in random order.
#[test]
fn nested_checkpoint_tower_unwinds_exactly() {
    for seed in 1..=10u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9) | 1);
        let mut world = WorldState::new();
        let mut reference = RefState::default();
        let mut tower: Vec<(smacs_chain::state::Snapshot, RefState)> = Vec::new();

        for depth in 0..30 {
            tower.push((world.snapshot(), reference.clone()));
            // A few writes per level.
            for _ in 0..3 {
                let a = addr(rng.below(ADDR_SPACE));
                let k = rng.below(KEY_SPACE);
                let v = U256::from_u64(rng.below(100));
                world.storage_set_u256(a, key(k), v);
                reference.storage_set(a, key(k), H256::from_u256(v));
                world.credit(a, depth as u128);
                reference.entry(a).1 += depth as u128;
            }
        }
        // Unwind to random heights until the tower is empty.
        while !tower.is_empty() {
            let i = rng.below(tower.len() as u64) as usize;
            let (snap, ref_copy) = tower[i].clone();
            world.revert_to(snap);
            reference = ref_copy;
            tower.truncate(i);
            assert_equivalent(&world, &reference, &format!("seed {seed} unwind to {i}"));
        }
    }
}
