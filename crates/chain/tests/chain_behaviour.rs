//! End-to-end behaviour of the chain simulator: deployment, transaction
//! validation (signatures, nonces, funds), block sealing, dry runs, forks,
//! reorgs, and re-entrant message calls.

use smacs_chain::abi::{self, AbiType, AbiValue};
use smacs_chain::{CallContext, Chain, ChainError, Contract, ExecStatus, Transaction, VmError};
use smacs_crypto::Keypair;
use smacs_primitives::{Address, Bytes, H256, U256};
use std::sync::Arc;

/// A counter contract: `increment()` bumps slot 0; `get()` returns it;
/// `ping(address)` calls `increment()` on another counter.
struct Counter;

impl Contract for Counter {
    fn name(&self) -> &'static str {
        "Counter"
    }
    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        ctx.sstore_u256(H256::ZERO, U256::ZERO)?;
        Ok(())
    }
    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector("increment()") {
            let v = ctx.sload_u256(H256::ZERO)?;
            ctx.sstore_u256(H256::ZERO, v.wrapping_add(U256::ONE))?;
            Ok(Bytes::new())
        } else if sel == abi::selector("get()") {
            Ok(Bytes::from(ctx.sload_u256(H256::ZERO)?.to_be_bytes()))
        } else if sel == abi::selector("ping(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let target = args[0].as_address().unwrap();
            ctx.call(target, 0, abi::encode_call("increment()", &[]))?;
            Ok(Bytes::new())
        } else {
            ctx.revert("unknown method")
        }
    }
}

/// A contract that re-enters its caller's `poke()` from its fallback.
struct Bouncer;

impl Contract for Bouncer {
    fn name(&self) -> &'static str {
        "Bouncer"
    }
    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        ctx.revert("no methods")
    }
    fn fallback(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        // Call back into the sender if it is a contract (depth-limited by
        // the value running out).
        if ctx.msg_value() > 0 {
            let sender = ctx.msg_sender();
            ctx.call(sender, 0, abi::encode_call("onBounce()", &[]))?;
        }
        Ok(())
    }
}

/// A contract that sends value to a Bouncer and counts re-entries.
struct Sender;

impl Contract for Sender {
    fn name(&self) -> &'static str {
        "Sender"
    }
    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().unwrap();
        if sel == abi::selector("send(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let target = args[0].as_address().unwrap();
            ctx.transfer(target, 5)?;
            Ok(Bytes::new())
        } else if sel == abi::selector("onBounce()") {
            let n = ctx.sload_u256(H256::ZERO)?;
            ctx.sstore_u256(H256::ZERO, n.wrapping_add(U256::ONE))?;
            Ok(Bytes::new())
        } else {
            ctx.revert("unknown")
        }
    }
}

fn counter_value(chain: &Chain, addr: Address) -> U256 {
    chain.state().storage_get_u256(addr, H256::ZERO)
}

#[test]
fn deploy_and_call() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(20));
    let (counter, receipt) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    assert!(receipt.status.is_success());
    // Deployment charges at least base + create + code deposit.
    assert!(receipt.gas_used > 53_000, "gas {}", receipt.gas_used);
    assert!(chain.state().is_contract(counter.address));

    let receipt = chain
        .call_contract(
            &owner,
            counter.address,
            0,
            abi::encode_call("increment()", &[]),
        )
        .unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(counter_value(&chain, counter.address), U256::ONE);

    let receipt = chain
        .call_contract(&owner, counter.address, 0, abi::encode_call("get()", &[]))
        .unwrap();
    assert_eq!(
        U256::from_be_slice(&receipt.return_data).unwrap(),
        U256::ONE
    );
}

#[test]
fn nonce_replay_is_rejected() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(2, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();

    let tx = Transaction::call(
        chain.state().nonce(owner.address()),
        counter.address,
        0,
        abi::encode_call("increment()", &[]),
    );
    let signed = tx.sign(&owner);
    chain.submit(signed.clone()).unwrap();
    // Replaying the very same signed transaction must fail: "If a
    // transaction has been accepted by Ethereum, it will not be processed
    // again" (§VII-A).
    let err = chain.submit(signed).unwrap_err();
    assert!(matches!(err, ChainError::BadNonce { .. }));
    assert_eq!(counter_value(&chain, counter.address), U256::ONE);
}

#[test]
fn invalid_signature_is_rejected() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(3, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    let tx = Transaction::call(1, counter.address, 0, vec![]);
    let mut signed = tx.sign(&owner);
    // Corrupt the payload after signing: the recovered sender no longer
    // matches any funded account ⇒ nonce/balance checks reject it.
    signed.tx.value = 999;
    let err = chain.submit(signed).unwrap_err();
    assert!(
        matches!(
            err,
            ChainError::BadNonce { .. } | ChainError::InsufficientFunds
        ),
        "got {err:?}"
    );
}

#[test]
fn insufficient_funds_rejected() {
    let mut chain = Chain::default_chain();
    let poor = chain.funded_keypair(4, 1000); // can't even buy gas
    let rich = chain.funded_keypair(5, 10u128.pow(20));
    let (counter, _) = chain.deploy(&rich, Arc::new(Counter)).unwrap();
    let tx = Transaction::call(0, counter.address, 0, vec![]);
    let err = chain.submit(tx.sign(&poor)).unwrap_err();
    assert_eq!(err, ChainError::InsufficientFunds);
}

#[test]
fn gas_refund_returns_unused_gas() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(6, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    let before = chain.state().balance(owner.address());
    let receipt = chain
        .call_contract(
            &owner,
            counter.address,
            0,
            abi::encode_call("increment()", &[]),
        )
        .unwrap();
    let after = chain.state().balance(owner.address());
    // Exactly gas_used * gas_price was spent (gas price 1 gwei).
    assert_eq!(before - after, receipt.gas_used as u128 * 1_000_000_000);
}

#[test]
fn blocks_seal_and_timestamps_advance() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(7, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    let t0 = chain.pending_env().timestamp;
    chain
        .call_contract(
            &owner,
            counter.address,
            0,
            abi::encode_call("increment()", &[]),
        )
        .unwrap();
    let block = chain.seal_block();
    assert_eq!(block.number, 1);
    assert_eq!(block.transactions.len(), 2); // deploy + call
    let t1 = chain.pending_env().timestamp;
    assert!(t1 > t0);
    chain.advance_time(3600);
    assert_eq!(chain.pending_env().timestamp, t1 + 3600);
}

#[test]
fn cross_contract_call_chain() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(8, 10u128.pow(20));
    let (a, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    let (b, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    // a.ping(b) increments b, not a.
    let receipt = chain
        .call_contract(
            &owner,
            a.address,
            0,
            abi::encode_call("ping(address)", &[AbiValue::Address(b.address)]),
        )
        .unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(counter_value(&chain, a.address), U256::ZERO);
    assert_eq!(counter_value(&chain, b.address), U256::ONE);
    // Trace shows the nested frame.
    let root = receipt.trace.root.as_ref().unwrap();
    assert_eq!(root.children.len(), 1);
    assert_eq!(root.children[0].callee, b.address);
    assert_eq!(root.children[0].depth, 1);
}

#[test]
fn fallback_reentrancy_is_possible() {
    // Sender sends value to Bouncer; Bouncer's fallback calls back into
    // Sender.onBounce() while Sender.send() is still on the stack.
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(9, 10u128.pow(20));
    let (sender, _) = chain.deploy(&owner, Arc::new(Sender)).unwrap();
    let (bouncer, _) = chain.deploy(&owner, Arc::new(Bouncer)).unwrap();
    chain.fund_account(sender.address, 1_000);

    let receipt = chain
        .call_contract(
            &owner,
            sender.address,
            0,
            abi::encode_call("send(address)", &[AbiValue::Address(bouncer.address)]),
        )
        .unwrap();
    assert!(receipt.status.is_success(), "status {:?}", receipt.status);
    // onBounce ran once.
    assert_eq!(counter_value(&chain, sender.address), U256::ONE);
    // And the trace flags the re-entrancy on Sender.
    assert!(receipt.trace.has_reentrancy(sender.address));
    assert!(!receipt.trace.has_reentrancy(bouncer.address));
}

#[test]
fn dry_run_leaves_no_trace_in_state() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(10, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    let (result, gas, trace, _) = chain.dry_run(
        owner.address(),
        counter.address,
        0,
        abi::encode_call("increment()", &[]),
    );
    assert!(result.is_ok());
    assert!(gas > 0);
    assert!(trace.root.is_some());
    // State unchanged, nonce unchanged.
    assert_eq!(counter_value(&chain, counter.address), U256::ZERO);
    assert_eq!(chain.state().nonce(owner.address()), 1); // only the deploy
}

#[test]
fn fork_runs_independently() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(11, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();

    let mut fork = chain.fork();
    fork.call_contract(
        &owner,
        counter.address,
        0,
        abi::encode_call("increment()", &[]),
    )
    .unwrap();
    assert_eq!(counter_value(&fork, counter.address), U256::ONE);
    assert_eq!(counter_value(&chain, counter.address), U256::ZERO);
}

#[test]
fn reorg_replays_kept_prefix_and_drops_suffix() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(12, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    chain.seal_block(); // block 1: deploy

    chain
        .call_contract(
            &owner,
            counter.address,
            0,
            abi::encode_call("increment()", &[]),
        )
        .unwrap();
    chain.seal_block(); // block 2: first increment

    chain
        .call_contract(
            &owner,
            counter.address,
            0,
            abi::encode_call("increment()", &[]),
        )
        .unwrap();
    chain.seal_block(); // block 3: second increment
    assert_eq!(counter_value(&chain, counter.address), U256::from_u64(2));

    // A 51% adversary rewrites history after block 2.
    let dropped = chain.reorg(2).unwrap();
    assert_eq!(dropped.len(), 1);
    assert_eq!(chain.height(), 2);
    // The replayed prefix preserved the deploy and the first increment.
    assert!(chain.state().is_contract(counter.address));
    assert_eq!(counter_value(&chain, counter.address), U256::ONE);

    // Reorg beyond the tip is rejected.
    assert_eq!(chain.reorg(99).unwrap_err(), ChainError::BadReorgHeight);
}

#[test]
fn contract_addresses_are_deterministic() {
    let kp = Keypair::from_seed(13);
    let a0 = Chain::contract_address(kp.address(), 0);
    let a1 = Chain::contract_address(kp.address(), 1);
    assert_ne!(a0, a1);
    assert_eq!(a0, Chain::contract_address(kp.address(), 0));
}

#[test]
fn intrinsic_gas_too_low_rejected() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(14, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    let tx = Transaction {
        nonce: chain.state().nonce(owner.address()),
        gas_price: 1_000_000_000,
        gas_limit: 20_000, // below the 21_000 base
        to: Some(counter.address),
        value: 0,
        data: Bytes::new(),
    };
    let err = chain.submit(tx.sign(&owner)).unwrap_err();
    assert_eq!(err, ChainError::IntrinsicGasTooLow);
}

#[test]
fn reverted_tx_still_consumes_gas_and_bumps_nonce() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(15, 10u128.pow(20));
    let (counter, _) = chain.deploy(&owner, Arc::new(Counter)).unwrap();
    let before = chain.state().balance(owner.address());
    let receipt = chain
        .call_contract(
            &owner,
            counter.address,
            0,
            abi::encode_call("nosuch()", &[]),
        )
        .unwrap();
    assert!(matches!(receipt.status, ExecStatus::Reverted(_)));
    assert!(receipt.gas_used >= 21_000);
    assert!(chain.state().balance(owner.address()) < before);
    assert_eq!(chain.state().nonce(owner.address()), 2);
}

/// A contract that recurses into itself forever — the call-depth limit
/// must stop it (and charge gas for the attempt).
struct Recursor;

impl Contract for Recursor {
    fn name(&self) -> &'static str {
        "Recursor"
    }
    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let this = ctx.this_address();
        ctx.call(this, 0, abi::encode_call("spin()", &[]))
    }
}

#[test]
fn call_depth_limit_enforced_on_64kib_stack() {
    // The frame-stack executor keeps call frames on the heap, so driving
    // execution all the way to the depth limit must work on a deliberately
    // tiny thread stack — impossible under the old recursive executor,
    // which needed tens of MB for 1024 nested host frames. This is also
    // what lets executors run on pool-worker threads in the parallel block
    // pipeline.
    std::thread::Builder::new()
        .stack_size(64 * 1024)
        .spawn(|| {
            let mut chain = Chain::default_chain();
            let owner = chain.funded_keypair(90, 10u128.pow(24));
            let (recursor, _) = chain.deploy(&owner, Arc::new(Recursor)).unwrap();
            let tx = Transaction {
                nonce: chain.state().nonce(owner.address()),
                gas_price: 1_000_000_000,
                gas_limit: 30_000_000, // only the depth limit stops it
                to: Some(recursor.address),
                value: 0,
                data: Bytes::from(abi::encode_call("spin()", &[])),
            };
            let receipt = chain.submit(tx.sign(&owner)).unwrap();
            assert!(!receipt.status.is_success());
            // The trace shows deep nesting, bounded by MAX_CALL_DEPTH.
            assert!(receipt.trace.max_depth() >= 1000);
            assert!(receipt.trace.max_depth() <= smacs_chain::exec::MAX_CALL_DEPTH);
        })
        .unwrap()
        .join()
        .unwrap();
}

/// Timestamps along sealed blocks are strictly monotone, and `now()` seen
/// by contracts equals the pending block's timestamp.
#[test]
fn block_timestamps_monotone() {
    let mut chain = Chain::default_chain();
    let mut last = chain.blocks().last().unwrap().timestamp;
    for i in 0..5 {
        if i == 2 {
            chain.advance_time(100);
        }
        let block = chain.seal_block();
        assert!(
            block.timestamp > last,
            "block {} not after {}",
            block.timestamp,
            last
        );
        last = block.timestamp;
    }
}
