//! Run every experiment in sequence — the one-shot EXPERIMENTS.md feed.
fn main() {
    println!("== Table II ==");
    print!("{}", smacs_bench::table2::report(&smacs_bench::table2::measure()));
    println!("\n== Table III ==");
    print!("{}", smacs_bench::table3::report(&smacs_bench::table3::measure()));
    println!("\n== Table IV ==");
    print!("{}", smacs_bench::table4::report(&smacs_bench::table4::measure()));
    println!("\n== Fig. 8 ==");
    print!("{}", smacs_bench::fig8::report(&smacs_bench::fig8::measure()));
    println!("\n== Fig. 9 ==");
    let exp = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    print!("{}", smacs_bench::fig9::report(&smacs_bench::fig9::measure(exp)));
    println!("\n== Runtime tools (§VI-B b) ==");
    print!("{}", smacs_bench::runtime_tools::report(&smacs_bench::runtime_tools::measure()));
    println!("\n== Motivation (§II-B / §II-D) ==");
    let (ten_k, bluzelle) = smacs_bench::motivation::measure();
    print!("{}", smacs_bench::motivation::report(&ten_k, &bluzelle));
}
