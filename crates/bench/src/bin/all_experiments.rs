//! Run every experiment in sequence — the one-shot EXPERIMENTS.md feed —
//! then emit a machine-readable perf summary to `BENCH_results.json`.
fn main() {
    println!("== Table II ==");
    print!(
        "{}",
        smacs_bench::table2::report(&smacs_bench::table2::measure())
    );
    println!("\n== Table III ==");
    print!(
        "{}",
        smacs_bench::table3::report(&smacs_bench::table3::measure())
    );
    println!("\n== Table IV ==");
    print!(
        "{}",
        smacs_bench::table4::report(&smacs_bench::table4::measure())
    );
    println!("\n== Fig. 8 ==");
    print!(
        "{}",
        smacs_bench::fig8::report(&smacs_bench::fig8::measure())
    );
    println!("\n== Fig. 9 ==");
    let exp = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    print!(
        "{}",
        smacs_bench::fig9::report(&smacs_bench::fig9::measure(exp))
    );
    println!("\n== Runtime tools (§VI-B b) ==");
    print!(
        "{}",
        smacs_bench::runtime_tools::report(&smacs_bench::runtime_tools::measure())
    );
    println!("\n== Motivation (§II-B / §II-D) ==");
    let (ten_k, bluzelle) = smacs_bench::motivation::measure();
    print!("{}", smacs_bench::motivation::report(&ten_k, &bluzelle));

    println!("\n== Perf (journaled state / zero-copy call path) ==");
    const SLOTS: u64 = 100_000;
    let rows = smacs_bench::perf::standard_sweep(SLOTS);
    for row in &rows {
        println!("{:<48} {:>14.0} ns/op", row.name, row.ns);
    }
    let json = smacs_bench::perf::sweep_to_json(SLOTS, &rows).render_pretty();
    match std::fs::write("BENCH_results.json", &json) {
        Ok(()) => println!("\nwrote BENCH_results.json"),
        Err(e) => eprintln!("\ncould not write BENCH_results.json: {e}"),
    }
}
