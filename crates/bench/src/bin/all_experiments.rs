//! Run every experiment in sequence — the one-shot EXPERIMENTS.md feed —
//! then emit a machine-readable perf summary to `BENCH_results.json` and
//! append a timestamped entry to `BENCH_history.jsonl` (one JSON object
//! per line, so regressions can be traced across runs instead of being
//! overwritten).
use smacs_primitives::json::Json;

fn main() {
    println!("== Table II ==");
    print!(
        "{}",
        smacs_bench::table2::report(&smacs_bench::table2::measure())
    );
    println!("\n== Table III ==");
    print!(
        "{}",
        smacs_bench::table3::report(&smacs_bench::table3::measure())
    );
    println!("\n== Table IV ==");
    print!(
        "{}",
        smacs_bench::table4::report(&smacs_bench::table4::measure())
    );
    println!("\n== Fig. 8 ==");
    print!(
        "{}",
        smacs_bench::fig8::report(&smacs_bench::fig8::measure())
    );
    println!("\n== Fig. 9 ==");
    let exp = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    print!(
        "{}",
        smacs_bench::fig9::report(&smacs_bench::fig9::measure(exp))
    );
    println!("\n== Runtime tools (§VI-B b) ==");
    print!(
        "{}",
        smacs_bench::runtime_tools::report(&smacs_bench::runtime_tools::measure())
    );
    println!("\n== Motivation (§II-B / §II-D) ==");
    let (ten_k, bluzelle) = smacs_bench::motivation::measure();
    print!("{}", smacs_bench::motivation::report(&ten_k, &bluzelle));

    println!("\n== Perf (journaled state / zero-copy call path) ==");
    const SLOTS: u64 = 100_000;
    let rows = smacs_bench::perf::standard_sweep(SLOTS);
    for row in &rows {
        println!("{:<48} {:>14.0} ns/op", row.name, row.ns);
    }

    println!("\n== TS wire throughput (v2 batch vs sequential v1) ==");
    let wire = smacs_bench::perf::ts_wire_throughput(64, 3);
    println!(
        "batch of {}: {:>10.0} tokens/s   sequential v1: {:>10.0} tokens/s   speedup {:.2}x",
        wire.batch_size,
        wire.batch_tokens_per_sec,
        wire.v1_sequential_tokens_per_sec,
        wire.speedup()
    );

    println!("\n== TS concurrent issuance (signing fan-out vs pool size) ==");
    let scaling = smacs_bench::perf::concurrent_signing_scaling(256, &[1, 2, 4, 8], 3);
    for point in &scaling {
        println!(
            "pool of {:>2}: {:>10.0} tokens/s",
            point.workers, point.tokens_per_sec
        );
    }

    println!("\n== TS concurrent issuance (HTTP, client threads 1→8) ==");
    let http_scaling = smacs_bench::perf::http_issuance_scaling(&[1, 2, 4, 8], 32);
    for point in &http_scaling {
        println!(
            "{:>2} clients: {:>10.0} tokens/s",
            point.workers, point.tokens_per_sec
        );
    }

    println!("\n== TS failover (3 replicas, kill + recover one) ==");
    let failover = smacs_bench::perf::ts_failover_throughput(128);
    println!(
        "steady: {:>10.0} tokens/s   one replica down: {:>10.0} tokens/s ({:.0}% of steady)   recovered: {:>10.0} tokens/s",
        failover.steady_tokens_per_sec,
        failover.degraded_tokens_per_sec,
        failover.degraded_fraction_x100(),
        failover.recovered_tokens_per_sec
    );

    println!("\n== TS wire-quorum one-time issuance (counter partition + heal) ==");
    let wire_failover = smacs_bench::perf::ts_failover_wire_throughput(64);
    println!(
        "steady: {:>10.0} one-time/s   one counter node dark: {:>10.0} one-time/s ({:.0}% of steady)   healed: {:>10.0} one-time/s",
        wire_failover.steady_one_time_per_sec,
        wire_failover.partitioned_one_time_per_sec,
        wire_failover.partitioned_fraction_x100(),
        wire_failover.recovered_one_time_per_sec
    );

    println!("\n== TS connection scaling (epoll reactor, 50k keep-alive target) ==");
    let conn_probe = smacs_bench::perf::connection_scaling_probe(50_000);
    println!(
        "{} of {} target connections held ({} parked): pool {} workers, {} process threads (thread-per-connection model: {}), idle CPU {:.2}% over {} ms",
        conn_probe.connections,
        conn_probe.target_connections,
        conn_probe.parked_connections,
        conn_probe.pool_workers,
        conn_probe.os_threads,
        conn_probe.spawn_model_threads,
        conn_probe.idle_cpu_pct_x100 as f64 / 100.0,
        conn_probe.idle_window_ms
    );

    println!("\n== TS connection storm (accept flood vs batch signing) ==");
    let storm_probe = smacs_bench::perf::connection_storm_probe(500, 16, 16);
    println!(
        "{} parked + {} storm connections, {} errors: batch p99 calm {:>9} ns / storm {:>9} ns",
        storm_probe.parked_connections,
        storm_probe.storm_connections,
        storm_probe.storm_errors,
        storm_probe.calm_batch_p99_ns,
        storm_probe.storm_batch_p99_ns
    );

    println!("\n== Open-loop load (scenario corpus, latency percentiles) ==");
    use smacs_bench::openloop;
    let oracle = openloop::oracle_over_http(openloop::SMOKE_EVENTS, openloop::SMOKE_RPS);
    println!("oracle/http     {}", openloop::report_line(&oracle));
    let airdrop = openloop::airdrop_over_replicas(openloop::SMOKE_EVENTS, openloop::SMOKE_RPS);
    println!("airdrop/quorum  {}", openloop::report_line(&airdrop));

    println!("\n== Open-loop issue → token-bearing call → receipt ==");
    let chain_call =
        openloop::chain_calls_over_http(openloop::CHAIN_SMOKE_EVENTS, openloop::CHAIN_SMOKE_RPS);
    println!("issue+call/http {}", openloop::report_line(&chain_call));

    println!("\n== Parallel block execution (optimistic, 1/2/4-thread) ==");
    // Caveat: on the 1-CPU reference container these parallel legs
    // measure pipeline overhead, not speedup; the scaling gate lives in
    // tests/shapes.rs and self-arms only on real multi-core hardware.
    const PB_BLOCKS: usize = 8;
    const PB_TXS: usize = 64;
    let parallel_points =
        smacs_bench::perf::parallel_block_execution(PB_BLOCKS, PB_TXS, &[1, 2, 4], &[0, 50, 100]);
    for p in &parallel_points {
        print!(
            "conflict {:>3}%: seq {:>8.0} tx/s  ",
            p.conflict_pct, p.sequential_txs_per_sec
        );
        for &(t, tps) in &p.by_threads {
            print!("{t}T {tps:>8.0} tx/s  ");
        }
        println!();
    }

    println!("\n== TouchSet recording overhead (overlay hot path) ==");
    let touchset = smacs_bench::perf::touchset_overhead_ns(SLOTS, 32);
    println!(
        "plain {:>7.1} ns/op   recording {:>7.1} ns/op   overhead {:>6.1} ns/op",
        touchset.plain_op_ns,
        touchset.recorded_op_ns,
        (touchset.recorded_op_ns - touchset.plain_op_ns).max(0.0)
    );

    println!("\n== WorldState::commit rebuild-threshold sweep ==");
    const THRESHOLDS: &[usize] = &[1_024, 4_096, 8_192, 16_384, 65_536];
    let threshold_points = smacs_bench::perf::commit_threshold_sweep(SLOTS, THRESHOLDS);
    for p in &threshold_points {
        println!(
            "threshold {:>6}: commit {:>10.0} ns/block   post-burst fork {:>10.0} ns   residual overlay {:>6}",
            p.threshold, p.commit_ns, p.post_burst_fork_ns, p.residual_overlay
        );
    }

    let mut summary = smacs_bench::perf::sweep_to_json(SLOTS, &rows);
    if let Json::Obj(members) = &mut summary {
        members.push((
            "ts_issue_batch".into(),
            smacs_bench::perf::wire_throughput_to_json(&wire),
        ));
        members.push((
            "ts_concurrent_issuance".into(),
            smacs_bench::perf::scaling_to_json(256, &scaling),
        ));
        members.push((
            "ts_http_client_scaling".into(),
            smacs_bench::perf::scaling_to_json(32, &http_scaling),
        ));
        members.push((
            "ts_failover".into(),
            smacs_bench::perf::failover_to_json(&failover),
        ));
        members.push((
            "ts_failover_wire".into(),
            smacs_bench::perf::wire_failover_to_json(&wire_failover),
        ));
        members.push((
            "connection_scaling".into(),
            smacs_bench::perf::connection_scaling_to_json(&conn_probe),
        ));
        members.push((
            "connection_storm".into(),
            smacs_bench::perf::connection_storm_to_json(&storm_probe),
        ));
        members.push((
            "open_loop_oracle".into(),
            smacs_driver::loadgen::report_to_json(&oracle),
        ));
        members.push((
            "open_loop_airdrop".into(),
            smacs_driver::loadgen::report_to_json(&airdrop),
        ));
        members.push((
            "open_loop_chain_call".into(),
            smacs_driver::loadgen::report_to_json(&chain_call),
        ));
        members.push((
            "parallel_block_execution".into(),
            smacs_bench::perf::parallel_block_to_json(PB_BLOCKS, PB_TXS, &parallel_points),
        ));
        members.push((
            "touchset_overhead".into(),
            smacs_bench::perf::touchset_overhead_to_json(&touchset),
        ));
        members.push((
            "commit_threshold_sweep".into(),
            smacs_bench::perf::threshold_sweep_to_json(SLOTS, &threshold_points),
        ));
    }
    match std::fs::write("BENCH_results.json", summary.render_pretty()) {
        Ok(()) => println!("\nwrote BENCH_results.json"),
        Err(e) => eprintln!("\ncould not write BENCH_results.json: {e}"),
    }

    // Append-only history: `{"unix_secs": …, "results": {…}}` per run.
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = Json::Obj(vec![
        ("unix_secs".into(), Json::Int(unix_secs as i128)),
        ("results".into(), summary),
    ]);
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_history.jsonl")
        .and_then(|mut f| {
            use std::io::Write;
            writeln!(f, "{}", entry.render())
        });
    match appended {
        Ok(()) => println!("appended BENCH_history.jsonl"),
        Err(e) => eprintln!("could not append BENCH_history.jsonl: {e}"),
    }
}
