//! Regenerate Table III.
fn main() {
    let rows = smacs_bench::table3::measure();
    print!("{}", smacs_bench::table3::report(&rows));
}
