//! Regenerate Fig. 9. Pass a smaller exponent as argv[1] for quick runs
//! (default 5, the paper's 10^5).
fn main() {
    let max_exponent = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let series = smacs_bench::fig9::measure(max_exponent);
    print!("{}", smacs_bench::fig9::report(&series));
}
