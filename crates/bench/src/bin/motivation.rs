//! Regenerate the §II-B / §II-D on-chain whitelist cost anchors.
fn main() {
    let (ten_k, bluzelle) = smacs_bench::motivation::measure();
    print!("{}", smacs_bench::motivation::report(&ten_k, &bluzelle));
}
