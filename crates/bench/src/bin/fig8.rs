//! Regenerate Fig. 8.
fn main() {
    let series = smacs_bench::fig8::measure();
    print!("{}", smacs_bench::fig8::report(&series));
}
