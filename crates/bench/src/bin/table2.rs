//! Regenerate Table II.
fn main() {
    let rows = smacs_bench::table2::measure();
    print!("{}", smacs_bench::table2::report(&rows));
}
