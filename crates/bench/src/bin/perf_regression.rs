//! Warn-only perf regression gate for CI.
//!
//! Two layers, both advisory:
//!
//! 1. **Live probe** — measures concurrent-issuance throughput (batch
//!    signing through the worker pool) right now and compares it against
//!    the most recent `BENCH_history.jsonl` entry recorded on a machine
//!    with the same parallelism.
//! 2. **History diff** — walks *every* numeric metric in the last two
//!    history entries and flags the ones that moved past tolerance, with
//!    direction awareness: `*_ns` and `*cpu_pct*` metrics regress by
//!    going *up*, `*per_sec`/`*speedup*` metrics regress by going
//!    *down*. Neutral
//!    facts (batch sizes, worker counts, thread counts, timestamps) are
//!    skipped.
//!
//! A regression prints a GitHub Actions `::warning::` annotation — it
//! never fails the build, because shared CI runners are far too noisy for
//! a hard gate; the annotations plus the appended history line give a
//! human the trail to judge a real regression.
//!
//! Exit code is always 0.

use smacs_primitives::json::Json;

/// Regressions beyond this fraction of the previous run trigger the
/// warning annotation (e.g. 0.8: anything slower than 80% of baseline).
const TOLERANCE: f64 = 0.8;

/// Which way a metric is allowed to drift.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// Latency-style: regression = value went up.
    LowerIsBetter,
    /// Throughput-style: regression = value went down.
    HigherIsBetter,
    /// Config/context value: never compared.
    Neutral,
}

/// Classify a flattened metric path by its leaf key's naming convention.
fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.ends_with("_ns") || leaf.contains("cpu_pct") {
        Direction::LowerIsBetter
    } else if leaf.contains("per_sec") || leaf.contains("speedup") {
        Direction::HigherIsBetter
    } else {
        Direction::Neutral
    }
}

/// Flatten every numeric leaf of a results object into `(dotted.path,
/// value)` rows. Arrays index into the path (`points.2.tokens_per_sec`) so
/// sweep points compare positionally.
fn flatten(json: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Obj(members) => {
            for (key, value) in members {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(value, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(item, &format!("{prefix}.{i}"), out);
            }
        }
        other => {
            if let Some(v) = other.as_int() {
                out.push((prefix.to_string(), v as f64));
            }
        }
    }
}

/// The last two `results` objects in the history file, oldest first.
fn last_two_results(history_path: &str) -> Option<(Json, Json)> {
    let history = std::fs::read_to_string(history_path).ok()?;
    let mut results: Vec<Json> = history
        .lines()
        .filter_map(|line| Json::parse(line).ok())
        .filter_map(|entry| entry.get("results").cloned())
        .collect();
    let current = results.pop()?;
    let previous = results.pop()?;
    Some((previous, current))
}

/// Diff every comparable metric between the two newest history entries;
/// returns the number of regressions flagged.
fn diff_history(history_path: &str) -> usize {
    let Some((previous, current)) = last_two_results(history_path) else {
        println!("fewer than two entries in {history_path}; no history diff");
        return 0;
    };
    let mut prev_rows = Vec::new();
    let mut cur_rows = Vec::new();
    flatten(&previous, "", &mut prev_rows);
    flatten(&current, "", &mut cur_rows);

    let mut compared = 0usize;
    let mut regressions = 0usize;
    for (path, cur) in &cur_rows {
        let dir = direction(path);
        if dir == Direction::Neutral {
            continue;
        }
        let Some((_, prev)) = prev_rows.iter().find(|(p, _)| p == path) else {
            continue; // metric is new in this run
        };
        if *prev <= 0.0 || *cur <= 0.0 {
            continue;
        }
        compared += 1;
        // Normalize both directions into "fraction of baseline goodness".
        let fraction = match dir {
            Direction::LowerIsBetter => *prev / *cur,
            Direction::HigherIsBetter => *cur / *prev,
            Direction::Neutral => unreachable!(),
        };
        if fraction < TOLERANCE {
            regressions += 1;
            println!(
                "::warning title=perf regression ({path})::{cur:.0} vs {prev:.0} recorded ({:.0}% of baseline, tolerance {:.0}%)",
                fraction * 100.0,
                TOLERANCE * 100.0
            );
        }
    }
    println!("history diff: {compared} metrics compared, {regressions} past tolerance");
    regressions
}

fn best_tokens_per_sec(results: &Json) -> Option<f64> {
    let points = results
        .get("ts_concurrent_issuance")?
        .get("points")?
        .as_arr()?;
    points
        .iter()
        .filter_map(|p| p.get("tokens_per_sec")?.as_int())
        .map(|v| v as f64)
        .fold(None, |best: Option<f64>, v| {
            Some(best.map_or(v, |b| b.max(v)))
        })
}

/// The newest history entry recorded on a machine like this one.
/// Entries stamp `available_parallelism`; comparing a laptop's numbers
/// against a CI runner's (or vice versa) would make the warning fire —
/// or stay silent — for hardware reasons, so mismatched entries are
/// skipped entirely.
fn last_recorded(history_path: &str, parallelism: usize) -> Option<f64> {
    let history = std::fs::read_to_string(history_path).ok()?;
    history
        .lines()
        .rev()
        .filter_map(|line| Json::parse(line).ok())
        .find_map(|entry| {
            let scaling = entry.get("results")?.get("ts_concurrent_issuance")?;
            let recorded_on = scaling.get("available_parallelism")?.as_int()?;
            if recorded_on != parallelism as i128 {
                return None;
            }
            best_tokens_per_sec(entry.get("results")?)
        })
}

fn main() {
    let history_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_history.jsonl".into());

    // A quick sweep: the widest pool this machine supports, small batch,
    // few rounds — CI smoke, not the full acceptance run.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let points = smacs_bench::perf::concurrent_signing_scaling(64, &[workers], 3);
    let current = points
        .iter()
        .map(|p| p.tokens_per_sec)
        .fold(0.0f64, f64::max);
    println!("concurrent issuance now: {current:.0} tokens/s (pool of {workers})");

    match last_recorded(&history_path, workers) {
        None => {
            println!(
                "no prior ts_concurrent_issuance entry from a {workers}-thread machine in {history_path}; nothing to compare"
            );
        }
        Some(previous) => {
            println!("last recorded: {previous:.0} tokens/s");
            if current < previous * TOLERANCE {
                // GitHub Actions annotation; harmless plain text elsewhere.
                println!(
                    "::warning title=concurrent-issuance throughput regression::{current:.0} tokens/s vs {previous:.0} recorded ({:.0}% of baseline, tolerance {:.0}%)",
                    current / previous * 100.0,
                    TOLERANCE * 100.0
                );
            } else {
                println!(
                    "within tolerance ({:.0}% of baseline)",
                    current / previous * 100.0
                );
            }
        }
    }

    diff_history(&history_path);
}
