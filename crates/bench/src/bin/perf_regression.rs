//! Warn-only perf regression gate for CI.
//!
//! Measures concurrent-issuance throughput (batch signing through the
//! worker pool) right now and compares it against the most recent
//! `BENCH_history.jsonl` entry that recorded the same probe. A drop past
//! the tolerance prints a GitHub Actions `::warning::` annotation — it
//! never fails the build, because shared CI runners are far too noisy for
//! a hard gate; the annotation plus the appended history line give a
//! human the trail to judge a real regression.
//!
//! Exit code is always 0.

use smacs_primitives::json::Json;

/// Regressions beyond this fraction of the previous run trigger the
/// warning annotation.
const TOLERANCE: f64 = 0.8;

fn best_tokens_per_sec(results: &Json) -> Option<f64> {
    let points = results
        .get("ts_concurrent_issuance")?
        .get("points")?
        .as_arr()?;
    points
        .iter()
        .filter_map(|p| p.get("tokens_per_sec")?.as_int())
        .map(|v| v as f64)
        .fold(None, |best: Option<f64>, v| {
            Some(best.map_or(v, |b| b.max(v)))
        })
}

/// The newest history entry recorded on a machine like this one.
/// Entries stamp `available_parallelism`; comparing a laptop's numbers
/// against a CI runner's (or vice versa) would make the warning fire —
/// or stay silent — for hardware reasons, so mismatched entries are
/// skipped entirely.
fn last_recorded(history_path: &str, parallelism: usize) -> Option<f64> {
    let history = std::fs::read_to_string(history_path).ok()?;
    history
        .lines()
        .rev()
        .filter_map(|line| Json::parse(line).ok())
        .find_map(|entry| {
            let scaling = entry.get("results")?.get("ts_concurrent_issuance")?;
            let recorded_on = scaling.get("available_parallelism")?.as_int()?;
            if recorded_on != parallelism as i128 {
                return None;
            }
            best_tokens_per_sec(entry.get("results")?)
        })
}

fn main() {
    let history_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_history.jsonl".into());

    // A quick sweep: the widest pool this machine supports, small batch,
    // few rounds — CI smoke, not the full acceptance run.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let points = smacs_bench::perf::concurrent_signing_scaling(64, &[workers], 3);
    let current = points
        .iter()
        .map(|p| p.tokens_per_sec)
        .fold(0.0f64, f64::max);
    println!("concurrent issuance now: {current:.0} tokens/s (pool of {workers})");

    match last_recorded(&history_path, workers) {
        None => {
            println!(
                "no prior ts_concurrent_issuance entry from a {workers}-thread machine in {history_path}; nothing to compare"
            );
        }
        Some(previous) => {
            println!("last recorded: {previous:.0} tokens/s");
            if current < previous * TOLERANCE {
                // GitHub Actions annotation; harmless plain text elsewhere.
                println!(
                    "::warning title=concurrent-issuance throughput regression::{current:.0} tokens/s vs {previous:.0} recorded ({:.0}% of baseline, tolerance {:.0}%)",
                    current / previous * 100.0,
                    TOLERANCE * 100.0
                );
            } else {
                println!(
                    "within tolerance ({:.0}% of baseline)",
                    current / previous * 100.0
                );
            }
        }
    }
}
