//! Regenerate the §VI-B(b) runtime-tool throughput numbers.
fn main() {
    let results = smacs_bench::runtime_tools::measure();
    print!("{}", smacs_bench::runtime_tools::report(&results));
}
