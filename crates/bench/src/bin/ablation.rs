//! Run the design-choice ablations (bitmap vs naive one-time tracking,
//! shield overhead, per-call vs per-update access-control cost).
fn main() {
    let uses = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let one_time = smacs_bench::ablation::measure_one_time(uses);
    let shield = smacs_bench::ablation::measure_shield_overhead();
    let trade = smacs_bench::ablation::measure_access_control_trade();
    print!(
        "{}",
        smacs_bench::ablation::report(&one_time, &shield, &trade)
    );
}
