//! Regenerate Table IV.
fn main() {
    let rows = smacs_bench::table4::measure();
    print!("{}", smacs_bench::table4::report(&rows));
}
