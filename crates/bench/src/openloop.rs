//! Open-loop latency-percentile bench points over the scenario corpus.
//!
//! These wire `smacs_driver::loadgen` to real HTTP Token Services:
//!
//! - [`oracle_over_http`] — the `oracle` scenario against a single
//!   `FrontEnd` + `HttpServer` (method-token issuance on the wire);
//! - [`airdrop_over_replicas`] — the `airdrop` scenario against a
//!   3-replica `ReplicaSet` through `FailoverClient`, so every event is a
//!   one-time issuance that crosses the majority-quorum `CounterCluster`.
//!
//! - [`chain_calls_over_http`] — the full client pipeline per event:
//!   obtain a method token from an HTTP TS, then spend it in a
//!   token-bearing transaction against a shielded on-chain contract and
//!   wait for the receipt, so the e2e percentiles cover issuance *and*
//!   execution latency (the paper's end-to-end client path, §III-C).
//!
//! Reports go into `BENCH_results.json` under `open_loop_oracle` /
//! `open_loop_airdrop` / `open_loop_chain_call`; the `*_p99_ns` keys are
//! tail-latency gates for `perf_regression` (lower-is-better),
//! `achieved_per_sec` guards against silent rate collapse
//! (higher-is-better), and `offered_rps` is config (neutral).

use crate::setup::World;
use smacs_contracts::BenchTarget;
use smacs_core::client::ClientWallet;
use smacs_driver::loadgen::{run_open_loop, run_open_loop_with, Arrivals, LoadConfig, LoadReport};
use smacs_driver::scenario::{self, OWNER_SECRET};
use smacs_token::TokenRequest;
use smacs_ts::front::FrontEnd;
use smacs_ts::{
    FailoverClient, HttpClient, HttpServer, ReplicaSet, ReplicaSetConfig, RuleBook, TokenService,
    TokenServiceConfig, TsApi,
};
use std::sync::{Arc, Mutex};

/// Default smoke sizing: enough events for a stable p99 on the 1-CPU
/// reference container without stretching CI.
pub const SMOKE_EVENTS: usize = 400;
/// Offered rate for the smoke runs (events/second). Well under the
/// ~10k/s single-thread issuance ceiling, so achieved ≈ offered unless
/// something regresses.
pub const SMOKE_RPS: u64 = 800;

fn config(events: usize, offered_rps: u64) -> LoadConfig {
    LoadConfig {
        offered_rps,
        events,
        senders: 4,
        arrivals: Arrivals::Poisson,
        seed: 0x0bea_c0de,
    }
}

/// Drive the `oracle` scenario open-loop against one HTTP TS.
pub fn oracle_over_http(events: usize, offered_rps: u64) -> LoadReport {
    let world = scenario::build("oracle", 21).unwrap();
    let requests = world.requests.clone();
    let front = Arc::new(FrontEnd::new(
        world.token_service(),
        OWNER_SECRET,
        world.now(),
    ));
    let server = HttpServer::start(front).expect("bind loopback");
    let client = HttpClient::connect(server.addr());
    let report = run_open_loop(&client, &requests, &config(events, offered_rps));
    server.shutdown();
    report
}

/// Drive the `airdrop` scenario open-loop against a 3-replica set:
/// every event is a one-time claim token, so each issuance takes a
/// majority-quorum round through the `CounterCluster`.
pub fn airdrop_over_replicas(events: usize, offered_rps: u64) -> LoadReport {
    let world = scenario::build("airdrop", 22).unwrap();
    let requests = world.requests.clone();
    let set = ReplicaSet::start(
        world.toolkit.ts_keypair().clone(),
        world.rules.clone(),
        ReplicaSetConfig {
            replicas: 3,
            now: world.now(),
            ..ReplicaSetConfig::default()
        },
    )
    .expect("bind replica set");
    let client = FailoverClient::new(set.addrs());
    let report = run_open_loop(&client, &requests, &config(events, offered_rps));
    set.shutdown();
    report
}

/// Default smoke sizing for the issue→call pipeline: each event carries
/// an on-chain transaction through one shared chain, so the offered rate
/// sits well under the single-chain inclusion ceiling.
pub const CHAIN_SMOKE_EVENTS: usize = 120;
/// Offered rate for the issue→call smoke (events/second).
pub const CHAIN_SMOKE_RPS: u64 = 200;

/// Drive the full issue → token-bearing call → receipt pipeline
/// open-loop: every event fetches a fresh method token from the HTTP TS,
/// attaches it to a `ping` transaction against the shielded
/// [`BenchTarget`], and submits it to the chain, counting the event
/// complete only when the receipt comes back `Success`. The chain is one
/// shared resource behind a lock — the serialization a single node's
/// inclusion path imposes is part of what the e2e percentiles measure.
/// Each sender lane owns a funded wallet, so nonces stay per-lane
/// sequential no matter how lanes interleave on the lock.
pub fn chain_calls_over_http(events: usize, offered_rps: u64) -> LoadReport {
    let mut world = World::new();
    let cfg = config(events, offered_rps);
    let wallets: Vec<ClientWallet> = (0..cfg.senders.max(1))
        .map(|i| ClientWallet::new(world.chain.funded_keypair(7_000 + i as u64, 10u128.pow(24))))
        .collect();
    let service = TokenService::new(
        world.toolkit.ts_keypair().clone(),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    );
    let server = HttpServer::start(Arc::new(FrontEnd::new(service, "bench-owner", world.now())))
        .expect("bind loopback");
    let client = HttpClient::connect(server.addr());
    let target = world.target;
    let payload = BenchTarget::ping_payload(7, 35);
    let chain = Mutex::new(&mut world.chain);
    let report = run_open_loop_with(&cfg, |k| {
        let wallet = &wallets[k % wallets.len()];
        let request = TokenRequest::method_token(target, wallet.address(), BenchTarget::PING_SIG);
        let Ok(token) = client.issue(&request) else {
            return false;
        };
        let mut chain = chain.lock().expect("chain lock");
        wallet
            .call_with_token(&mut chain, target, 0, &payload, token)
            .map(|receipt| receipt.status.is_success())
            .unwrap_or(false)
    });
    server.shutdown();
    report
}

/// One-line console rendering of a report.
pub fn report_line(report: &LoadReport) -> String {
    format!(
        "offered {:>5} rps  achieved {:>5}/s  issue p50/p99/p999 {:>7}/{:>8}/{:>8} ns  e2e p99 {:>9} ns  ({} ok, {} err)",
        report.offered_rps,
        report.achieved_per_sec,
        report.issue.p50_ns,
        report.issue.p99_ns,
        report.issue.p999_ns,
        report.e2e.p99_ns,
        report.completed,
        report.errors
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_http_smoke_completes_cleanly() {
        let report = oracle_over_http(60, 600);
        assert_eq!(report.completed, 60);
        assert_eq!(report.errors, 0);
        assert!(report.issue.p99_ns > 0);
    }

    #[test]
    fn airdrop_replica_smoke_burns_unique_one_time_indexes() {
        let report = airdrop_over_replicas(40, 400);
        assert_eq!(report.completed, 40);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn chain_call_smoke_spends_tokens_on_chain() {
        let report = chain_calls_over_http(24, 240);
        // `completed` counts only events whose receipt came back Success,
        // so 24/24 proves every token issued over the wire verified
        // on-chain.
        assert_eq!(report.completed, 24);
        assert_eq!(report.errors, 0);
        // e2e is measured from the scheduled arrival, issue from the
        // actual send: per-sample e2e ≥ issue, so the percentiles order.
        assert!(report.e2e.p99_ns >= report.issue.p99_ns);
    }
}
