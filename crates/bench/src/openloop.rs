//! Open-loop latency-percentile bench points over the scenario corpus.
//!
//! These wire `smacs_driver::loadgen` to real HTTP Token Services:
//!
//! - [`oracle_over_http`] — the `oracle` scenario against a single
//!   `FrontEnd` + `HttpServer` (method-token issuance on the wire);
//! - [`airdrop_over_replicas`] — the `airdrop` scenario against a
//!   3-replica `ReplicaSet` through `FailoverClient`, so every event is a
//!   one-time issuance that crosses the majority-quorum `CounterCluster`.
//!
//! Reports go into `BENCH_results.json` under `open_loop_oracle` /
//! `open_loop_airdrop`; the `*_p99_ns` keys are tail-latency gates for
//! `perf_regression` (lower-is-better), `achieved_per_sec` guards
//! against silent rate collapse (higher-is-better), and `offered_rps`
//! is config (neutral).

use smacs_driver::loadgen::{run_open_loop, Arrivals, LoadConfig, LoadReport};
use smacs_driver::scenario::{self, OWNER_SECRET};
use smacs_ts::front::FrontEnd;
use smacs_ts::{FailoverClient, HttpClient, HttpServer, ReplicaSet, ReplicaSetConfig};
use std::sync::Arc;

/// Default smoke sizing: enough events for a stable p99 on the 1-CPU
/// reference container without stretching CI.
pub const SMOKE_EVENTS: usize = 400;
/// Offered rate for the smoke runs (events/second). Well under the
/// ~10k/s single-thread issuance ceiling, so achieved ≈ offered unless
/// something regresses.
pub const SMOKE_RPS: u64 = 800;

fn config(events: usize, offered_rps: u64) -> LoadConfig {
    LoadConfig {
        offered_rps,
        events,
        senders: 4,
        arrivals: Arrivals::Poisson,
        seed: 0x0bea_c0de,
    }
}

/// Drive the `oracle` scenario open-loop against one HTTP TS.
pub fn oracle_over_http(events: usize, offered_rps: u64) -> LoadReport {
    let world = scenario::build("oracle", 21).unwrap();
    let requests = world.requests.clone();
    let front = Arc::new(FrontEnd::new(
        world.token_service(),
        OWNER_SECRET,
        world.now(),
    ));
    let server = HttpServer::start(front).expect("bind loopback");
    let client = HttpClient::connect(server.addr());
    let report = run_open_loop(&client, &requests, &config(events, offered_rps));
    server.shutdown();
    report
}

/// Drive the `airdrop` scenario open-loop against a 3-replica set:
/// every event is a one-time claim token, so each issuance takes a
/// majority-quorum round through the `CounterCluster`.
pub fn airdrop_over_replicas(events: usize, offered_rps: u64) -> LoadReport {
    let world = scenario::build("airdrop", 22).unwrap();
    let requests = world.requests.clone();
    let set = ReplicaSet::start(
        world.toolkit.ts_keypair().clone(),
        world.rules.clone(),
        ReplicaSetConfig {
            replicas: 3,
            now: world.now(),
            ..ReplicaSetConfig::default()
        },
    )
    .expect("bind replica set");
    let client = FailoverClient::new(set.addrs());
    let report = run_open_loop(&client, &requests, &config(events, offered_rps));
    set.shutdown();
    report
}

/// One-line console rendering of a report.
pub fn report_line(report: &LoadReport) -> String {
    format!(
        "offered {:>5} rps  achieved {:>5}/s  issue p50/p99/p999 {:>7}/{:>8}/{:>8} ns  e2e p99 {:>9} ns  ({} ok, {} err)",
        report.offered_rps,
        report.achieved_per_sec,
        report.issue.p50_ns,
        report.issue.p99_ns,
        report.issue.p999_ns,
        report.e2e.p99_ns,
        report.completed,
        report.errors
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_http_smoke_completes_cleanly() {
        let report = oracle_over_http(60, 600);
        assert_eq!(report.completed, 60);
        assert_eq!(report.errors, 0);
        assert!(report.issue.p99_ns > 0);
    }

    #[test]
    fn airdrop_replica_smoke_burns_unique_one_time_indexes() {
        let report = airdrop_over_replicas(40, 400);
        assert_eq!(report.completed, 40);
        assert_eq!(report.errors, 0);
    }
}
