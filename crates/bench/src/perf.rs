//! Perf probes for the journaled-state / zero-copy work: snapshot+revert
//! against a large world, O(1) forking, and deep token call chains.
//!
//! Each probe is a plain function returning nanoseconds per operation so it
//! can back three consumers: the criterion micro-benchmarks
//! (`benches/micro.rs`), the machine-readable `BENCH_results.json` summary
//! emitted by `all_experiments`, and the asymptotic regression test in
//! `tests/shapes.rs`.

use crate::setup::World;
use smacs_chain::state::WorldState;
use smacs_contracts::ChainLink;
use smacs_core::client::build_chain_call_data;
use smacs_primitives::json::Json;
use smacs_primitives::{Address, H256, U256};
use smacs_token::{Token, TokenType};
use std::collections::HashMap;
use std::time::Instant;

type AccountMap = HashMap<Address, u128>;
type StorageMap = HashMap<(Address, H256), H256>;

fn addr(n: u64) -> Address {
    Address::from_low_u64(n + 1)
}

fn key(n: u64) -> H256 {
    H256::from_u256(U256::from_u64(n))
}

/// Build a journaled world holding `slots` committed storage slots.
pub fn populated_world(slots: u64) -> WorldState {
    let mut world = WorldState::new();
    for i in 0..slots {
        world.storage_set(addr(i % 64), key(i), key(i + 1));
    }
    world.commit();
    world
}

/// The pre-journal baseline: snapshot/fork by deep-cloning the full maps —
/// cost grows with world size, which is exactly what the journal removes.
pub struct CloneBaselineState {
    accounts: AccountMap,
    storage: StorageMap,
    snapshots: Vec<(AccountMap, StorageMap)>,
}

impl CloneBaselineState {
    /// A baseline world holding `slots` storage slots.
    pub fn populated(slots: u64) -> Self {
        let mut storage = HashMap::new();
        for i in 0..slots {
            storage.insert((addr(i % 64), key(i)), key(i + 1));
        }
        CloneBaselineState {
            accounts: HashMap::new(),
            storage,
            snapshots: Vec::new(),
        }
    }

    /// Deep-clone snapshot (O(world)).
    pub fn snapshot(&mut self) {
        self.snapshots
            .push((self.accounts.clone(), self.storage.clone()));
    }

    /// Write one slot.
    pub fn storage_set(&mut self, a: Address, k: H256, v: H256) {
        self.storage.insert((a, k), v);
    }

    /// Restore the latest snapshot (O(world)).
    pub fn revert(&mut self) {
        let (accounts, storage) = self.snapshots.pop().expect("snapshot taken");
        self.accounts = accounts;
        self.storage = storage;
    }

    /// Deep-copy fork (O(world)).
    pub fn fork(&self) -> (AccountMap, StorageMap) {
        (self.accounts.clone(), self.storage.clone())
    }
}

fn time_per_iter(iters: u32, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// ns for snapshot → 1-slot write → revert on a journaled world of `slots`.
pub fn journaled_snapshot_revert_ns(slots: u64, iters: u32) -> f64 {
    let mut world = populated_world(slots);
    time_per_iter(iters, || {
        let snap = world.snapshot();
        world.storage_set(addr(3), key(1), key(99));
        world.revert_to(snap);
    })
}

/// ns for the same snapshot → write → revert on the clone-based baseline.
pub fn clone_snapshot_revert_ns(slots: u64, iters: u32) -> f64 {
    let mut world = CloneBaselineState::populated(slots);
    time_per_iter(iters, || {
        world.snapshot();
        world.storage_set(addr(3), key(1), key(99));
        world.revert();
    })
}

/// ns to fork a committed journaled world of `slots` slots.
pub fn journaled_fork_ns(slots: u64, iters: u32) -> f64 {
    let world = populated_world(slots);
    time_per_iter(iters, || {
        std::hint::black_box(world.fork());
    })
}

/// ns to fork the clone-based baseline of the same size.
pub fn clone_fork_ns(slots: u64, iters: u32) -> f64 {
    let world = CloneBaselineState::populated(slots);
    time_per_iter(iters, || {
        std::hint::black_box(world.fork());
    })
}

/// ns to fork a committed world and simulate a small transaction on the
/// fork — the Token Service's per-request validation pattern (§V).
pub fn fork_simulate_ns(slots: u64, iters: u32) -> f64 {
    let world = populated_world(slots);
    time_per_iter(iters, || {
        let mut fork = world.fork();
        let snap = fork.snapshot();
        fork.storage_set(addr(5), key(2), key(77));
        fork.credit(addr(6), 1);
        fork.revert_to(snap);
        std::hint::black_box(&fork);
    })
}

/// A ready deep-call-chain scenario: world, entry link, and token-bearing
/// calldata for a `depth`-hop shielded chain.
pub struct ChainScenario {
    /// The prepared world.
    pub world: World,
    /// Entry link address.
    pub entry: Address,
    /// Calldata with the token array attached.
    pub calldata: Vec<u8>,
}

impl ChainScenario {
    /// Build a `depth`-hop shielded chain with per-link super tokens.
    pub fn new(depth: usize) -> ChainScenario {
        let (world, links) = World::with_chain_depth(depth);
        let payload = ChainLink::poke_payload();
        let tokens: Vec<(Address, Token)> = links
            .iter()
            .map(|&link| {
                (
                    link,
                    world.issue(TokenType::Super, link, ChainLink::POKE_SIG, &payload, false),
                )
            })
            .collect();
        let calldata = build_chain_call_data(&payload, &tokens);
        ChainScenario {
            world,
            entry: links[0],
            calldata,
        }
    }

    /// One dry-run traversal of the whole chain; panics if any hop fails.
    pub fn run_once(&mut self) {
        let from = self.world.client.address();
        let (result, _gas, _trace, _) =
            self.world
                .chain
                .dry_run(from, self.entry, 0, self.calldata.clone());
        result.expect("chain traversal");
    }
}

/// ns per full traversal of a `depth`-hop token call chain (dry run).
pub fn call_chain_ns(depth: usize, iters: u32) -> f64 {
    let mut scenario = ChainScenario::new(depth);
    time_per_iter(iters, || scenario.run_once())
}

/// One labeled measurement in the machine-readable summary.
pub struct PerfRow {
    /// Metric name.
    pub name: &'static str,
    /// Nanoseconds per operation.
    pub ns: f64,
}

/// The standard perf sweep behind `BENCH_results.json`. `slots` sizes the
/// large world (the acceptance sweep uses 100_000).
pub fn standard_sweep(slots: u64) -> Vec<PerfRow> {
    let iters = 200;
    vec![
        PerfRow {
            name: "state_snapshot_large_world_journaled_ns",
            ns: journaled_snapshot_revert_ns(slots, iters),
        },
        PerfRow {
            name: "state_snapshot_large_world_clone_baseline_ns",
            ns: clone_snapshot_revert_ns(slots, 20),
        },
        PerfRow {
            name: "fork_large_world_journaled_ns",
            ns: journaled_fork_ns(slots, iters),
        },
        PerfRow {
            name: "fork_large_world_clone_baseline_ns",
            ns: clone_fork_ns(slots, 20),
        },
        PerfRow {
            name: "fork_simulate_ns",
            ns: fork_simulate_ns(slots, iters),
        },
        PerfRow {
            name: "call_chain_depth16_ns",
            ns: call_chain_ns(16, 10),
        },
    ]
}

/// Render a perf sweep (plus derived speedups) as a JSON object.
pub fn sweep_to_json(slots: u64, rows: &[PerfRow]) -> Json {
    let get = |name: &str| rows.iter().find(|r| r.name == name).map(|r| r.ns);
    let mut members: Vec<(String, Json)> = vec![("world_slots".into(), Json::Int(slots as i128))];
    for row in rows {
        members.push((row.name.into(), Json::Int(row.ns as i128)));
    }
    if let (Some(journaled), Some(clone)) = (
        get("state_snapshot_large_world_journaled_ns"),
        get("state_snapshot_large_world_clone_baseline_ns"),
    ) {
        members.push((
            "snapshot_speedup_vs_clone".into(),
            Json::Int((clone / journaled.max(1.0)) as i128),
        ));
    }
    if let (Some(journaled), Some(clone)) = (
        get("fork_large_world_journaled_ns"),
        get("fork_large_world_clone_baseline_ns"),
    ) {
        members.push((
            "fork_speedup_vs_clone".into(),
            Json::Int((clone / journaled.max(1.0)) as i128),
        ));
    }
    Json::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_scenario_traverses_all_links() {
        let mut scenario = ChainScenario::new(3);
        scenario.run_once();
    }

    #[test]
    fn sweep_emits_all_metrics() {
        let rows = standard_sweep(500); // small world: keep the test fast
        assert_eq!(rows.len(), 6);
        let json = sweep_to_json(500, &rows);
        assert!(json.get("snapshot_speedup_vs_clone").is_some());
        assert!(json.get("call_chain_depth16_ns").is_some());
    }
}
