//! Perf probes for the journaled-state / zero-copy work — snapshot+revert
//! against a large world, O(1) forking, deep token call chains — plus the
//! TS wire-throughput comparison (v2 batch issuance vs sequential v1
//! round trips) and the concurrent-issuance probes (batch-signing
//! throughput vs worker-pool size, HTTP throughput vs client threads, and
//! the pooled server's thread cost under many keep-alive connections).
//!
//! Each probe is a plain function returning numbers so it can back three
//! consumers: the criterion micro-benchmarks (`benches/micro.rs`), the
//! machine-readable `BENCH_results.json` summary emitted by
//! `all_experiments`, and the regression tests in `tests/shapes.rs`.

use crate::setup::World;
use smacs_chain::state::WorldState;
use smacs_chain::{BlockMode, Chain, SignedTransaction, Transaction};
use smacs_contracts::{BenchTarget, ChainLink, SmacsAmm};
use smacs_core::client::build_chain_call_data;
use smacs_crypto::Keypair;
use smacs_primitives::json::Json;
use smacs_primitives::{Address, Bytes, WorkerPool, H256, U256};
use smacs_token::{Token, TokenRequest, TokenType};
use smacs_ts::front::{FrontEnd, FrontRequest, FrontResponse};
use smacs_ts::http::{post_json, HttpClient, HttpServer};
use smacs_ts::{RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

type AccountMap = HashMap<Address, u128>;
type StorageMap = HashMap<(Address, H256), H256>;

fn addr(n: u64) -> Address {
    Address::from_low_u64(n + 1)
}

fn key(n: u64) -> H256 {
    H256::from_u256(U256::from_u64(n))
}

/// Build a journaled world holding `slots` committed storage slots.
pub fn populated_world(slots: u64) -> WorldState {
    let mut world = WorldState::new();
    for i in 0..slots {
        world.storage_set(addr(i % 64), key(i), key(i + 1));
    }
    world.commit();
    world
}

/// The pre-journal baseline: snapshot/fork by deep-cloning the full maps —
/// cost grows with world size, which is exactly what the journal removes.
pub struct CloneBaselineState {
    accounts: AccountMap,
    storage: StorageMap,
    snapshots: Vec<(AccountMap, StorageMap)>,
}

impl CloneBaselineState {
    /// A baseline world holding `slots` storage slots.
    pub fn populated(slots: u64) -> Self {
        let mut storage = HashMap::new();
        for i in 0..slots {
            storage.insert((addr(i % 64), key(i)), key(i + 1));
        }
        CloneBaselineState {
            accounts: HashMap::new(),
            storage,
            snapshots: Vec::new(),
        }
    }

    /// Deep-clone snapshot (O(world)).
    pub fn snapshot(&mut self) {
        self.snapshots
            .push((self.accounts.clone(), self.storage.clone()));
    }

    /// Write one slot.
    pub fn storage_set(&mut self, a: Address, k: H256, v: H256) {
        self.storage.insert((a, k), v);
    }

    /// Restore the latest snapshot (O(world)).
    pub fn revert(&mut self) {
        let (accounts, storage) = self.snapshots.pop().expect("snapshot taken");
        self.accounts = accounts;
        self.storage = storage;
    }

    /// Deep-copy fork (O(world)).
    pub fn fork(&self) -> (AccountMap, StorageMap) {
        (self.accounts.clone(), self.storage.clone())
    }
}

fn time_per_iter(iters: u32, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// ns for snapshot → 1-slot write → revert on a journaled world of `slots`.
pub fn journaled_snapshot_revert_ns(slots: u64, iters: u32) -> f64 {
    let mut world = populated_world(slots);
    time_per_iter(iters, || {
        let snap = world.snapshot();
        world.storage_set(addr(3), key(1), key(99));
        world.revert_to(snap);
    })
}

/// ns for the same snapshot → write → revert on the clone-based baseline.
pub fn clone_snapshot_revert_ns(slots: u64, iters: u32) -> f64 {
    let mut world = CloneBaselineState::populated(slots);
    time_per_iter(iters, || {
        world.snapshot();
        world.storage_set(addr(3), key(1), key(99));
        world.revert();
    })
}

/// ns to fork a committed journaled world of `slots` slots.
pub fn journaled_fork_ns(slots: u64, iters: u32) -> f64 {
    let world = populated_world(slots);
    time_per_iter(iters, || {
        std::hint::black_box(world.fork());
    })
}

/// ns to fork the clone-based baseline of the same size.
pub fn clone_fork_ns(slots: u64, iters: u32) -> f64 {
    let world = CloneBaselineState::populated(slots);
    time_per_iter(iters, || {
        std::hint::black_box(world.fork());
    })
}

/// ns to fork a committed world and simulate a small transaction on the
/// fork — the Token Service's per-request validation pattern (§V).
pub fn fork_simulate_ns(slots: u64, iters: u32) -> f64 {
    let world = populated_world(slots);
    time_per_iter(iters, || {
        let mut fork = world.fork();
        let snap = fork.snapshot();
        fork.storage_set(addr(5), key(2), key(77));
        fork.credit(addr(6), 1);
        fork.revert_to(snap);
        std::hint::black_box(&fork);
    })
}

/// A ready deep-call-chain scenario: world, entry link, and token-bearing
/// calldata for a `depth`-hop shielded chain.
pub struct ChainScenario {
    /// The prepared world.
    pub world: World,
    /// Entry link address.
    pub entry: Address,
    /// Calldata with the token array attached.
    pub calldata: Vec<u8>,
}

impl ChainScenario {
    /// Build a `depth`-hop shielded chain with per-link super tokens.
    pub fn new(depth: usize) -> ChainScenario {
        let (world, links) = World::with_chain_depth(depth);
        let payload = ChainLink::poke_payload();
        let tokens: Vec<(Address, Token)> = links
            .iter()
            .map(|&link| {
                (
                    link,
                    world.issue(TokenType::Super, link, ChainLink::POKE_SIG, &payload, false),
                )
            })
            .collect();
        let calldata = build_chain_call_data(&payload, &tokens);
        ChainScenario {
            world,
            entry: links[0],
            calldata,
        }
    }

    /// One dry-run traversal of the whole chain; panics if any hop fails.
    pub fn run_once(&mut self) {
        let from = self.world.client.address();
        let (result, _gas, _trace, _) =
            self.world
                .chain
                .dry_run(from, self.entry, 0, self.calldata.clone());
        result.expect("chain traversal");
    }
}

/// ns per full traversal of a `depth`-hop token call chain (dry run).
pub fn call_chain_ns(depth: usize, iters: u32) -> f64 {
    let mut scenario = ChainScenario::new(depth);
    time_per_iter(iters, || scenario.run_once())
}

// ---- TS wire throughput: v2 batch vs sequential v1 ----

/// A running HTTP Token Service plus the request set for throughput
/// probes.
pub struct WireScenario {
    server: HttpServer,
    /// The v2 keep-alive client.
    pub client: HttpClient,
    /// The issuance requests (distinct senders, same contract/method).
    pub requests: Vec<TokenRequest>,
}

impl WireScenario {
    /// Start a permissive TS over loopback HTTP and prepare `batch_size`
    /// method-token requests.
    pub fn new(batch_size: usize) -> WireScenario {
        let service = TokenService::new(
            Keypair::from_seed(12_000),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        let server = HttpServer::start(Arc::new(FrontEnd::new(service, "bench-owner", 0)))
            .expect("loopback server");
        let client = HttpClient::connect(server.addr());
        let contract = Address::from_low_u64(0xC0);
        let requests = (0..batch_size)
            .map(|i| {
                TokenRequest::method_token(
                    contract,
                    Address::from_low_u64(1_000 + i as u64),
                    BenchTarget::PING_SIG,
                )
            })
            .collect();
        WireScenario {
            server,
            client,
            requests,
        }
    }

    /// One v2 batch round trip; panics unless every token minted.
    pub fn run_batch(&self) {
        let results = self
            .client
            .issue_batch(&self.requests)
            .expect("batch envelope");
        assert!(results.iter().all(|r| r.is_ok()), "batch issuance failed");
    }

    /// The v1 baseline: one single-issue round trip per request, each on a
    /// fresh connection (v1 was one-request-per-connection by design).
    pub fn run_v1_sequential(&self) {
        for request in &self.requests {
            let body = smacs_primitives::json::to_string(&FrontRequest::IssueToken {
                request: request.clone(),
            });
            let response = post_json(self.server.addr(), &body).expect("v1 round trip");
            let parsed: FrontResponse =
                smacs_primitives::json::from_str(&response).expect("v1 response");
            assert!(
                matches!(parsed, FrontResponse::Token { .. }),
                "v1 issuance failed: {parsed:?}"
            );
        }
    }
}

/// The wire-throughput comparison behind the `ts_issue_batch` bench.
pub struct WireThroughput {
    /// Tokens per round trip in the batch path.
    pub batch_size: usize,
    /// Tokens/sec via one v2 `issue_batch` envelope per `batch_size`
    /// tokens over a keep-alive connection.
    pub batch_tokens_per_sec: f64,
    /// Tokens/sec via `batch_size` sequential v1 single-issue round trips
    /// (fresh connection each, as v1 clients worked).
    pub v1_sequential_tokens_per_sec: f64,
}

impl WireThroughput {
    /// Batch speedup factor.
    pub fn speedup(&self) -> f64 {
        self.batch_tokens_per_sec / self.v1_sequential_tokens_per_sec.max(1e-9)
    }
}

/// Measure batched-vs-sequential issuance throughput over real loopback
/// HTTP: `rounds` passes of `batch_size` tokens down each path.
pub fn ts_wire_throughput(batch_size: usize, rounds: u32) -> WireThroughput {
    let scenario = WireScenario::new(batch_size);
    // Warm both paths (connection setup, lazy signer tables).
    scenario.client.ping().expect("server alive");
    scenario
        .client
        .issue(&scenario.requests[0])
        .expect("warm issue");

    let start = Instant::now();
    for _ in 0..rounds {
        scenario.run_batch();
    }
    let batch_tps = (batch_size as u32 * rounds) as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..rounds {
        scenario.run_v1_sequential();
    }
    let v1_tps = (batch_size as u32 * rounds) as f64 / start.elapsed().as_secs_f64();

    WireThroughput {
        batch_size,
        batch_tokens_per_sec: batch_tps,
        v1_sequential_tokens_per_sec: v1_tps,
    }
}

/// Render the wire-throughput comparison as a JSON object for
/// `BENCH_results.json`.
pub fn wire_throughput_to_json(wire: &WireThroughput) -> Json {
    Json::Obj(vec![
        ("batch_size".into(), Json::Int(wire.batch_size as i128)),
        (
            "batch_tokens_per_sec".into(),
            Json::Int(wire.batch_tokens_per_sec as i128),
        ),
        (
            "v1_sequential_tokens_per_sec".into(),
            Json::Int(wire.v1_sequential_tokens_per_sec as i128),
        ),
        (
            "batch_speedup_x100".into(),
            Json::Int((wire.speedup() * 100.0) as i128),
        ),
    ])
}

// ---- concurrent issuance: signing fan-out scaling + connection scaling ----

/// Throughput at one parallelism degree.
pub struct ScalePoint {
    /// Worker threads in the signing pool (1 = the sequential baseline).
    pub workers: usize,
    /// Tokens minted per second.
    pub tokens_per_sec: f64,
}

/// Tokens/sec for batch issuance as the signing pool grows — the
/// acceptance sweep behind `ts_concurrent_issuance`. Each point uses a
/// dedicated pool of exactly `workers` threads; on an N-core box the
/// curve should rise near-linearly until `workers ≈ N` (on a 1-core box
/// every point collapses to the sequential baseline — the recorded
/// numbers say which machine they came from via `available_parallelism`).
pub fn concurrent_signing_scaling(
    batch: usize,
    workers_axis: &[usize],
    rounds: u32,
) -> Vec<ScalePoint> {
    let contract = Address::from_low_u64(0xC0);
    let requests: Vec<TokenRequest> = (0..batch)
        .map(|i| {
            TokenRequest::method_token(
                contract,
                Address::from_low_u64(20_000 + i as u64),
                BenchTarget::PING_SIG,
            )
        })
        .collect();
    workers_axis
        .iter()
        .map(|&workers| {
            let pool = WorkerPool::new(workers, 4096);
            let service = TokenService::new(
                Keypair::from_seed(13_000),
                RuleBook::permissive(),
                TokenServiceConfig::default(),
            )
            .with_pool(pool.clone());
            // Warm: signer tables, pool threads, allocator.
            assert!(service.issue_batch(&requests, 0).iter().all(|r| r.is_ok()));
            let start = Instant::now();
            for _ in 0..rounds {
                let results = service.issue_batch(&requests, 0);
                debug_assert!(results.iter().all(|r| r.is_ok()));
            }
            let tokens_per_sec =
                (batch as u32 * rounds) as f64 / start.elapsed().as_secs_f64().max(1e-9);
            pool.shutdown();
            ScalePoint {
                workers,
                tokens_per_sec,
            }
        })
        .collect()
}

/// Tokens/sec over real loopback HTTP as concurrent client threads grow
/// (each thread drives its own keep-alive connection with single-issue
/// requests against one pooled server).
pub fn http_issuance_scaling(client_axis: &[usize], requests_per_client: usize) -> Vec<ScalePoint> {
    let service = TokenService::new(
        Keypair::from_seed(14_000),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    );
    let server = HttpServer::start(Arc::new(FrontEnd::new(service, "bench-owner", 0)))
        .expect("loopback server");
    let addr = server.addr();
    // Warm the server (signer tables).
    HttpClient::connect(addr)
        .issue(&TokenRequest::super_token(
            Address::from_low_u64(0xC0),
            Address::from_low_u64(1),
        ))
        .expect("warm issue");
    let points = client_axis
        .iter()
        .map(|&clients| {
            let start = Instant::now();
            let handles: Vec<_> = (0..clients)
                .map(|t| {
                    std::thread::spawn(move || {
                        let client = HttpClient::connect(addr);
                        let contract = Address::from_low_u64(0xC0);
                        for i in 0..requests_per_client {
                            let req = TokenRequest::method_token(
                                contract,
                                Address::from_low_u64(30_000 + (t * 10_000 + i) as u64),
                                BenchTarget::PING_SIG,
                            );
                            client.issue(&req).expect("issue over http");
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("client thread");
            }
            let tokens_per_sec =
                (clients * requests_per_client) as f64 / start.elapsed().as_secs_f64().max(1e-9);
            ScalePoint {
                workers: clients,
                tokens_per_sec,
            }
        })
        .collect();
    server.shutdown();
    points
}

/// What holding many concurrent keep-alive connections costs: threads
/// (the pooled server vs the thread-per-connection model) and — the
/// reactor's headline number — steady-state CPU while every one of them
/// idles parked in the epoll set.
pub struct ConnectionScaling {
    /// Connections requested — the headline target (e.g. 50k).
    pub target_connections: usize,
    /// Concurrent keep-alive connections actually held (each served at
    /// least one request); clamped to the process fd budget.
    pub connections: usize,
    /// Connections parked in the reactor's epoll set at steady state.
    pub parked_connections: usize,
    /// Worker threads in the server's pool.
    pub pool_workers: usize,
    /// OS threads in this process while holding all connections
    /// (`/proc/self/status`; 0 when unavailable). Includes the test/bench
    /// harness's own threads — the point is that it does *not* grow with
    /// `connections`.
    pub os_threads: usize,
    /// What a thread-per-connection server would hold for the same load:
    /// one thread per open connection (plus its accept loop).
    pub spawn_model_threads: usize,
    /// Process CPU over the idle window, in percent ×100 (`/proc/self/stat`
    /// utime+stime; -1 when unreadable). Near zero proves the reactor
    /// blocks in `epoll_wait` — no periodic per-connection sweep remains.
    pub idle_cpu_pct_x100: i64,
    /// Length of the idle measurement window, ms.
    pub idle_window_ms: u64,
}

fn process_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|line| line.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// The soft `RLIMIT_NOFILE` ceiling, from `/proc/self/limits`; `None`
/// off Linux or if the row is missing/unlimited.
fn open_file_soft_limit() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let row = limits.lines().find(|l| l.starts_with("Max open files"))?;
    // Layout: "Max open files   <soft>   <hard>   files"
    row.split_whitespace().nth(3)?.parse().ok()
}

/// Raise the soft `RLIMIT_NOFILE` to its hard ceiling and return the
/// resulting soft limit — a 50k-connection probe needs ~100k fds, far
/// past the stock 1024 soft limit, and raising soft→hard needs no
/// privilege.
fn raise_fd_limit() -> Option<usize> {
    unsafe {
        let mut lim = libc::rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) != 0 {
            return None;
        }
        if lim.rlim_cur < lim.rlim_max {
            let raised = libc::rlimit {
                rlim_cur: lim.rlim_max,
                rlim_max: lim.rlim_max,
            };
            let _ = libc::setrlimit(libc::RLIMIT_NOFILE, &raised);
            if libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) != 0 {
                return None;
            }
        }
        Some(lim.rlim_cur as usize)
    }
}

/// This process's consumed CPU in clock ticks (`/proc/self/stat`
/// utime+stime — fields 14 and 15).
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces; fields count from after the ')'.
    let after_comm = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    // `after_comm` starts at field 3 (state), so fields 14/15 sit at
    // indexes 11/12.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

fn clock_ticks_per_sec() -> f64 {
    let hz = unsafe { libc::sysconf(libc::_SC_CLK_TCK) };
    if hz > 0 {
        hz as f64
    } else {
        100.0
    }
}

/// Hold `target` live keep-alive connections against one reactor-backed
/// server (pinging each so every connection has really been served),
/// wait for them all to park in the epoll set, then measure process CPU
/// over an idle window.
///
/// Each connection costs two fds in this process (client socket +
/// accepted server socket), so the count is clamped to fit the fd budget
/// with headroom — after raising the soft `RLIMIT_NOFILE` to the hard
/// ceiling. `target_connections` records what was asked for,
/// `connections` what the box allowed.
pub fn connection_scaling_probe(target: usize) -> ConnectionScaling {
    connection_scaling_probe_with_window(target, Duration::from_secs(2))
}

/// [`connection_scaling_probe`] with a caller-chosen idle window (tests
/// use a short one).
pub fn connection_scaling_probe_with_window(
    target: usize,
    idle_window: Duration,
) -> ConnectionScaling {
    let connections = match raise_fd_limit().or_else(open_file_soft_limit) {
        // 2 fds per connection + slack for stdio/listener/harness.
        Some(limit) => target.min(limit.saturating_sub(128) / 2).max(1),
        None => target,
    };
    let service = TokenService::new(
        Keypair::from_seed(15_000),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    );
    let server = HttpServer::start_with(
        Arc::new(FrontEnd::new(service, "bench-owner", 0)),
        smacs_ts::HttpServerConfig::builder()
            .max_connections(connections + 64)
            .build(),
    )
    .expect("loopback server");
    let pool_workers = server.pool().threads();
    let clients: Vec<HttpClient> = (0..connections)
        .map(|_| HttpClient::connect(server.addr()))
        .collect();
    for client in &clients {
        client.ping().expect("every connection gets served");
    }
    // Steady state: wait for every served connection to park.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.parked_connections() < connections && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let parked_connections = server.parked_connections();
    let os_threads = process_thread_count();

    // Nobody talks during the window; a poller-era server would still
    // burn a sweep per poll_interval here, the reactor burns nothing.
    let before = process_cpu_ticks();
    std::thread::sleep(idle_window);
    let after = process_cpu_ticks();
    let idle_cpu_pct_x100 = match (before, after) {
        (Some(b), Some(a)) => {
            let cpu_secs = a.saturating_sub(b) as f64 / clock_ticks_per_sec();
            (cpu_secs / idle_window.as_secs_f64().max(1e-9) * 100.0 * 100.0) as i64
        }
        _ => -1,
    };

    let result = ConnectionScaling {
        target_connections: target,
        connections,
        parked_connections,
        pool_workers,
        os_threads,
        spawn_model_threads: connections + 1,
        idle_cpu_pct_x100,
        idle_window_ms: idle_window.as_millis() as u64,
    };
    drop(clients);
    server.shutdown();
    result
}

/// Batch-signing latency under an accept storm: the reactor's
/// two-priority lanes must keep `issue_batch` flowing (high lane) while
/// a flood of fresh connections drains through the low lane.
pub struct ConnectionStorm {
    /// Idle keep-alive connections parked in the reactor throughout.
    pub parked_connections: usize,
    /// Fresh connections opened (and served once) during the storm phase.
    pub storm_connections: usize,
    /// Batches timed per phase.
    pub batches: usize,
    /// Requests per batch.
    pub batch_size: usize,
    /// p99 batch round-trip with the listener quiet, ns.
    pub calm_batch_p99_ns: u64,
    /// p99 batch round-trip while the storm hammers the listener, ns.
    pub storm_batch_p99_ns: u64,
    /// Storm requests that failed — every accepted connection must be
    /// served, so anything but 0 is a dropped request.
    pub storm_errors: usize,
}

fn p99_ns(latencies: &mut [u64]) -> u64 {
    latencies.sort_unstable();
    latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)]
}

/// Park `parked` keep-alive connections, then time `batches` batch
/// issuances twice — once calm, once while storm threads keep opening,
/// using, and dropping fresh connections.
pub fn connection_storm_probe(parked: usize, batches: usize, batch_size: usize) -> ConnectionStorm {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    // Budget: 2 fds per parked conn + a few storm threads' transients.
    let parked = match raise_fd_limit().or_else(open_file_soft_limit) {
        Some(limit) => parked.min(limit.saturating_sub(256) / 2).max(1),
        None => parked,
    };
    let service = TokenService::new(
        Keypair::from_seed(15_500),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    );
    let server = HttpServer::start(Arc::new(FrontEnd::new(service, "bench-owner", 0)))
        .expect("loopback server");
    let addr = server.addr();
    let held: Vec<HttpClient> = (0..parked).map(|_| HttpClient::connect(addr)).collect();
    for client in &held {
        client.ping().expect("park connection");
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.parked_connections() < parked && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    let batch_client = HttpClient::connect(addr);
    let contract = Address::from_low_u64(0xC0);
    let run_batches = |base: u64| -> Vec<u64> {
        (0..batches as u64)
            .map(|b| {
                let requests: Vec<TokenRequest> = (0..batch_size as u64)
                    .map(|i| {
                        TokenRequest::method_token(
                            contract,
                            Address::from_low_u64(base + b * 1_000 + i),
                            BenchTarget::PING_SIG,
                        )
                    })
                    .collect();
                let start = Instant::now();
                let results = batch_client.issue_batch(&requests).expect("batch envelope");
                let elapsed = start.elapsed().as_nanos() as u64;
                for result in results {
                    result.expect("batch item minted");
                }
                elapsed
            })
            .collect()
    };

    let mut calm = run_batches(40_000);

    // Storm: a few threads churning fresh connections until the timed
    // batches finish.
    let stop = Arc::new(AtomicBool::new(false));
    let opened = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let stormers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            let opened = opened.clone();
            let errors = errors.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    opened.fetch_add(1, Ordering::Relaxed);
                    if HttpClient::connect(addr).ping().is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    let mut storm = run_batches(80_000);
    stop.store(true, Ordering::Relaxed);
    for handle in stormers {
        handle.join().expect("storm thread");
    }

    let result = ConnectionStorm {
        parked_connections: parked,
        storm_connections: opened.load(Ordering::Relaxed),
        batches,
        batch_size,
        calm_batch_p99_ns: p99_ns(&mut calm),
        storm_batch_p99_ns: p99_ns(&mut storm),
        storm_errors: errors.load(Ordering::Relaxed),
    };
    drop(held);
    server.shutdown();
    result
}

// ---- replicated-TS failover throughput (§VII-B availability) ----

use smacs_ts::{
    BreakerConfig, FailoverClient, HttpClientConfig, ReplicaSet, ReplicaSetConfig, RetryPolicy,
};
use std::time::Duration;

/// Issuance throughput through a replica set across a kill/recover cycle.
pub struct FailoverThroughput {
    /// Replicas in the set.
    pub replicas: usize,
    /// Tokens/sec with every replica live.
    pub steady_tokens_per_sec: f64,
    /// Tokens/sec with one replica killed (the failover client routes
    /// around the corpse; its breaker sheds the dead endpoint after the
    /// first few failures).
    pub degraded_tokens_per_sec: f64,
    /// Tokens/sec after the killed replica recovered on its old address.
    pub recovered_tokens_per_sec: f64,
}

impl FailoverThroughput {
    /// Degraded throughput as a fraction of steady (×100).
    pub fn degraded_fraction_x100(&self) -> f64 {
        self.degraded_tokens_per_sec / self.steady_tokens_per_sec.max(1e-9) * 100.0
    }
}

fn failover_round(client: &FailoverClient, tokens: usize, base: u64) -> f64 {
    let contract = Address::from_low_u64(0xC0);
    let start = Instant::now();
    for i in 0..tokens {
        let req = TokenRequest::method_token(
            contract,
            Address::from_low_u64(base + i as u64),
            BenchTarget::PING_SIG,
        );
        client.issue(&req).expect("failover issue");
    }
    tokens as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Measure single-issue throughput through a 3-replica set before, during,
/// and after killing one replica — the `ts_failover` bench. Uses expiry
/// (idempotent) issuance so the degraded phase can fail over freely.
pub fn ts_failover_throughput(tokens_per_phase: usize) -> FailoverThroughput {
    let mut set = ReplicaSet::start(
        Keypair::from_seed(16_000),
        RuleBook::permissive(),
        ReplicaSetConfig::default(),
    )
    .expect("replica set");
    let client = FailoverClient::with_config(
        set.addrs(),
        HttpClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        },
        RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            deadline: Duration::from_secs(10),
        },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(5),
        },
    );
    client.ping().expect("set alive");

    let steady = failover_round(&client, tokens_per_phase, 40_000);
    set.kill(0);
    let degraded = failover_round(&client, tokens_per_phase, 50_000);
    set.recover(0).expect("replica recovery");
    let recovered = failover_round(&client, tokens_per_phase, 60_000);

    let result = FailoverThroughput {
        replicas: set.len(),
        steady_tokens_per_sec: steady,
        degraded_tokens_per_sec: degraded,
        recovered_tokens_per_sec: recovered,
    };
    set.shutdown();
    result
}

/// Render the failover probe as JSON.
pub fn failover_to_json(probe: &FailoverThroughput) -> Json {
    Json::Obj(vec![
        ("replicas".into(), Json::Int(probe.replicas as i128)),
        (
            "steady_tokens_per_sec".into(),
            Json::Int(probe.steady_tokens_per_sec as i128),
        ),
        (
            "degraded_tokens_per_sec".into(),
            Json::Int(probe.degraded_tokens_per_sec as i128),
        ),
        (
            "recovered_tokens_per_sec".into(),
            Json::Int(probe.recovered_tokens_per_sec as i128),
        ),
        (
            "degraded_fraction_x100".into(),
            Json::Int(probe.degraded_fraction_x100() as i128),
        ),
    ])
}

/// One-time issuance throughput through the wire counter quorum — the
/// `ts_failover_wire` bench. Unlike [`FailoverThroughput`] (expiry tokens,
/// replica kill), every token here costs a real
/// `counter_prepare`/`counter_commit` vote round over TCP, and the fault
/// is a *counter* partition: one vote endpoint goes dark while all three
/// replicas keep serving clients, so each allocation must close on a 2/3
/// majority.
pub struct WireQuorumThroughput {
    /// Replicas (= counter nodes) in the set.
    pub replicas: usize,
    /// One-time tokens/sec with all counter nodes voting.
    pub steady_one_time_per_sec: f64,
    /// One-time tokens/sec with one counter node partitioned away — the
    /// quorum is a bare majority and the partitioned node's coordinator
    /// pays a failed self-vote on every allocation.
    pub partitioned_one_time_per_sec: f64,
    /// One-time tokens/sec after the partitioned node healed and caught
    /// up past every index committed while it was dark.
    pub recovered_one_time_per_sec: f64,
}

impl WireQuorumThroughput {
    /// Partitioned throughput as a fraction of steady (×100).
    pub fn partitioned_fraction_x100(&self) -> f64 {
        self.partitioned_one_time_per_sec / self.steady_one_time_per_sec.max(1e-9) * 100.0
    }
}

fn one_time_round(client: &FailoverClient, tokens: usize, base: u64) -> f64 {
    let contract = Address::from_low_u64(0xC1);
    let start = Instant::now();
    for i in 0..tokens {
        let req = TokenRequest::method_token(
            contract,
            Address::from_low_u64(base + i as u64),
            BenchTarget::PING_SIG,
        )
        .one_time();
        client.issue(&req).expect("wire-quorum one-time issue");
    }
    tokens as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Measure one-time issuance throughput through a 3-replica wire-quorum
/// set before, during, and after partitioning one counter node.
pub fn ts_failover_wire_throughput(tokens_per_phase: usize) -> WireQuorumThroughput {
    let set = ReplicaSet::start(
        Keypair::from_seed(16_001),
        RuleBook::permissive(),
        ReplicaSetConfig::default(),
    )
    .expect("replica set");
    let client = FailoverClient::with_config(
        set.addrs(),
        HttpClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        },
        RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            deadline: Duration::from_secs(10),
        },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(5),
        },
    );
    client.ping().expect("set alive");

    let steady = one_time_round(&client, tokens_per_phase, 70_000);
    set.partition_counter(0);
    let partitioned = one_time_round(&client, tokens_per_phase, 80_000);
    set.heal_counter(0).expect("counter heal");
    let recovered = one_time_round(&client, tokens_per_phase, 90_000);

    let result = WireQuorumThroughput {
        replicas: set.len(),
        steady_one_time_per_sec: steady,
        partitioned_one_time_per_sec: partitioned,
        recovered_one_time_per_sec: recovered,
    };
    set.shutdown();
    result
}

/// Render the wire-quorum probe as JSON.
pub fn wire_failover_to_json(probe: &WireQuorumThroughput) -> Json {
    Json::Obj(vec![
        ("replicas".into(), Json::Int(probe.replicas as i128)),
        (
            "steady_one_time_per_sec".into(),
            Json::Int(probe.steady_one_time_per_sec as i128),
        ),
        (
            "partitioned_one_time_per_sec".into(),
            Json::Int(probe.partitioned_one_time_per_sec as i128),
        ),
        (
            "recovered_one_time_per_sec".into(),
            Json::Int(probe.recovered_one_time_per_sec as i128),
        ),
        (
            "partitioned_fraction_x100".into(),
            Json::Int(probe.partitioned_fraction_x100() as i128),
        ),
    ])
}

/// ns per `ecrecover` (digest + signature → address) — the per-request
/// verify cost the wNAF ladder attacks.
pub fn ecdsa_recover_ns(iters: u32) -> f64 {
    let kp = Keypair::from_seed(42);
    let digest = smacs_crypto::keccak256(b"perf recover probe");
    let sig = kp.sign_digest(&digest);
    assert_eq!(
        smacs_crypto::recover_address(&digest, &sig),
        Some(kp.address())
    );
    time_per_iter(iters, || {
        std::hint::black_box(smacs_crypto::recover_address(&digest, &sig));
    })
}

/// Render the signing-scaling sweep (plus the 1→4 speedup the acceptance
/// gate tracks) as JSON.
pub fn scaling_to_json(batch: usize, points: &[ScalePoint]) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("batch_size".into(), Json::Int(batch as i128)),
        (
            "available_parallelism".into(),
            Json::Int(
                std::thread::available_parallelism()
                    .map(|n| n.get() as i128)
                    .unwrap_or(1),
            ),
        ),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("workers".into(), Json::Int(p.workers as i128)),
                            ("tokens_per_sec".into(), Json::Int(p.tokens_per_sec as i128)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    let at = |w: usize| points.iter().find(|p| p.workers == w);
    if let (Some(one), Some(four)) = (at(1), at(4)) {
        members.push((
            "speedup_1_to_4_x100".into(),
            Json::Int((four.tokens_per_sec / one.tokens_per_sec.max(1e-9) * 100.0) as i128),
        ));
    }
    Json::Obj(members)
}

/// Render the connection probe as JSON.
pub fn connection_scaling_to_json(probe: &ConnectionScaling) -> Json {
    Json::Obj(vec![
        (
            "target_connections".into(),
            Json::Int(probe.target_connections as i128),
        ),
        ("connections".into(), Json::Int(probe.connections as i128)),
        (
            "parked_connections".into(),
            Json::Int(probe.parked_connections as i128),
        ),
        ("pool_workers".into(), Json::Int(probe.pool_workers as i128)),
        ("os_threads".into(), Json::Int(probe.os_threads as i128)),
        (
            "spawn_model_threads".into(),
            Json::Int(probe.spawn_model_threads as i128),
        ),
        (
            "idle_cpu_pct_x100".into(),
            Json::Int(probe.idle_cpu_pct_x100 as i128),
        ),
        (
            "idle_window_ms".into(),
            Json::Int(probe.idle_window_ms as i128),
        ),
    ])
}

/// Render the accept-storm probe as JSON.
pub fn connection_storm_to_json(probe: &ConnectionStorm) -> Json {
    Json::Obj(vec![
        (
            "parked_connections".into(),
            Json::Int(probe.parked_connections as i128),
        ),
        (
            "storm_connections".into(),
            Json::Int(probe.storm_connections as i128),
        ),
        ("batches".into(), Json::Int(probe.batches as i128)),
        ("batch_size".into(), Json::Int(probe.batch_size as i128)),
        (
            "calm_batch_p99_ns".into(),
            Json::Int(probe.calm_batch_p99_ns as i128),
        ),
        (
            "storm_batch_p99_ns".into(),
            Json::Int(probe.storm_batch_p99_ns as i128),
        ),
        ("storm_errors".into(), Json::Int(probe.storm_errors as i128)),
    ])
}

/// One point of the `WorldState::commit` shared-base rebuild sweep.
pub struct ThresholdPoint {
    /// Overlay size at which a fork-shared base is rebuilt.
    pub threshold: usize,
    /// Average ns per block commit during the write burst.
    pub commit_ns: f64,
    /// ns to `fork()` after the burst — the cost left behind by whatever
    /// overlay the threshold allowed to accumulate.
    pub post_burst_fork_ns: f64,
    /// Overlay entries still unflattened when the burst ends.
    pub residual_overlay: usize,
}

/// Sweep the shared-base rebuild threshold under the workload it exists
/// for: a long-lived fork (the Token Service's standing testnet) pins the
/// base while the chain commits a burst of small blocks. Low thresholds
/// rebuild often (commit pays the O(world) copy more frequently); high
/// thresholds let the overlay grow, which every later `fork()` re-clones.
pub fn commit_threshold_sweep(world_slots: u64, thresholds: &[usize]) -> Vec<ThresholdPoint> {
    const BLOCKS: usize = 256;
    const WRITES_PER_BLOCK: u64 = 64;
    thresholds
        .iter()
        .map(|&threshold| {
            let mut world = populated_world(world_slots);
            world.set_rebuild_threshold(threshold);
            let pin = world.fork(); // standing testnet: keeps the base shared
            let start = Instant::now();
            for b in 0..BLOCKS as u64 {
                for w in 0..WRITES_PER_BLOCK {
                    let i = b * WRITES_PER_BLOCK + w;
                    world.storage_set(addr(i % 64), key(world_slots + i), key(i + 1));
                }
                world.commit();
            }
            let commit_ns = start.elapsed().as_nanos() as f64 / BLOCKS as f64;
            let residual_overlay = world.overlay_len();
            let post_burst_fork_ns = time_per_iter(64, || {
                std::hint::black_box(world.fork());
            });
            drop(pin);
            ThresholdPoint {
                threshold,
                commit_ns,
                post_burst_fork_ns,
                residual_overlay,
            }
        })
        .collect()
}

/// Render the threshold sweep as a JSON object: one `t{N}_*` triple per
/// point plus the default threshold for context. The `_ns` leaves gate as
/// lower-is-better in `perf_regression`.
pub fn threshold_sweep_to_json(world_slots: u64, points: &[ThresholdPoint]) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("world_slots".into(), Json::Int(world_slots as i128)),
        (
            "default_threshold".into(),
            Json::Int(WorldState::SHARED_BASE_REBUILD_THRESHOLD as i128),
        ),
    ];
    for p in points {
        members.push((
            format!("t{}_commit_ns", p.threshold),
            Json::Int(p.commit_ns as i128),
        ));
        members.push((
            format!("t{}_post_burst_fork_ns", p.threshold),
            Json::Int(p.post_burst_fork_ns as i128),
        ));
        members.push((
            format!("t{}_residual_overlay", p.threshold),
            Json::Int(p.residual_overlay as i128),
        ));
    }
    Json::Obj(members)
}

// ---- Optimistic parallel block execution ----

/// Senders in the parallel-block workload. Enough that the low-conflict
/// regime keeps every pool worker fed with independent transactions.
const BLOCK_SENDERS: usize = 16;

/// Build a chain (funded senders, one seeded AMM) plus `blocks`
/// pre-generated, pre-signed blocks of `txs_per_block` transactions.
/// Transaction `j` of every block is an AMM swap when
/// `(j * 61) % 100 < conflict_pct` — all swaps touch the shared reserves,
/// so they conflict and re-execute — and a disjoint EOA transfer
/// otherwise, which validates and commits straight from its delta. The
/// `* 61` interleaves the two kinds instead of clustering them.
fn block_workload(
    conflict_pct: u64,
    blocks: usize,
    txs_per_block: usize,
) -> (Chain, Vec<Vec<SignedTransaction>>) {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let senders: Vec<Keypair> = (0..BLOCK_SENDERS)
        .map(|i| chain.funded_keypair(100 + i as u64, 10u128.pow(24)))
        .collect();
    let (amm, _) = chain
        .deploy(&owner, Arc::new(SmacsAmm))
        .expect("deploy amm");
    chain
        .call_contract(
            &owner,
            amm.address,
            0,
            SmacsAmm::seed_payload(1_000_000_000, 1_000_000_000),
        )
        .expect("seed amm");
    chain.seal_block();
    let mut nonces: Vec<u64> = senders
        .iter()
        .map(|kp| chain.state().nonce(kp.address()))
        .collect();
    let prebuilt = (0..blocks)
        .map(|b| {
            (0..txs_per_block)
                .map(|j| {
                    let s = (b * txs_per_block + j) % senders.len();
                    let nonce = nonces[s];
                    nonces[s] += 1;
                    let tx = if (j as u64 * 61) % 100 < conflict_pct {
                        Transaction::call(
                            nonce,
                            amm.address,
                            0,
                            SmacsAmm::swap_payload(1 + j as u64, 0),
                        )
                    } else {
                        Transaction::call(
                            nonce,
                            Address::from_low_u64(0x9_0000 + (b * txs_per_block + j) as u64),
                            1,
                            Bytes::new(),
                        )
                    };
                    // Reassemble from parts: `sign` pre-seeds the sender
                    // cache for the local-wallet path, but a block
                    // arriving off the wire carries no such warm cache —
                    // and the per-tx ECDSA recovery is exactly the work
                    // the parallel pipeline exists to spread across cores.
                    let signed = tx.sign(&senders[s]);
                    SignedTransaction::from_parts(signed.tx.clone(), signed.signature)
                })
                .collect()
        })
        .collect();
    (chain, prebuilt)
}

/// Transactions per second executing the pre-built workload through the
/// unified block path — sequential when `pool` is `None`, optimistic
/// parallel otherwise. The workload's sender caches are cold (see
/// [`block_workload`]), so every tx pays its ECDSA recovery inside the
/// measured (and, in parallel mode, speculated) region, as on a real
/// node ingesting foreign blocks.
fn block_throughput(
    conflict_pct: u64,
    blocks: usize,
    txs_per_block: usize,
    pool: Option<&WorkerPool>,
) -> f64 {
    let (mut chain, prebuilt) = block_workload(conflict_pct, blocks, txs_per_block);
    let start = Instant::now();
    for txs in &prebuilt {
        let results = match pool {
            Some(p) => chain.execute_block_with(txs, BlockMode::Parallel(p)),
            None => chain.execute_block_with(txs, BlockMode::Sequential),
        };
        debug_assert!(results.iter().all(|r| r.is_ok()), "workload tx failed");
        std::hint::black_box(&results);
        chain.seal_block();
    }
    (blocks * txs_per_block) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// One conflict regime of the parallel-block sweep.
pub struct ParallelBlockPoint {
    /// Percentage of transactions per block that hit the shared AMM.
    pub conflict_pct: u64,
    /// Throughput through `BlockMode::Sequential`.
    pub sequential_txs_per_sec: f64,
    /// `(pool threads, throughput)` through `BlockMode::Parallel`.
    pub by_threads: Vec<(usize, f64)>,
}

/// Sweep optimistic parallel block execution across pool sizes and
/// conflict rates, with the sequential path as the baseline at each
/// conflict rate. Caveat: on the 1-CPU reference container the parallel
/// numbers measure overhead, not speedup — the scaling gate in
/// `tests/shapes.rs` self-arms only where the cores exist.
pub fn parallel_block_execution(
    blocks: usize,
    txs_per_block: usize,
    threads: &[usize],
    conflict_pcts: &[u64],
) -> Vec<ParallelBlockPoint> {
    conflict_pcts
        .iter()
        .map(|&pct| {
            let sequential_txs_per_sec = block_throughput(pct, blocks, txs_per_block, None);
            let by_threads = threads
                .iter()
                .map(|&t| {
                    let pool = WorkerPool::new(t, 1024);
                    let tps = block_throughput(pct, blocks, txs_per_block, Some(&pool));
                    pool.shutdown();
                    (t, tps)
                })
                .collect();
            ParallelBlockPoint {
                conflict_pct: pct,
                sequential_txs_per_sec,
                by_threads,
            }
        })
        .collect()
}

/// Render the parallel-block sweep for `BENCH_results.json`. Per regime:
/// `c{pct}_seq_txs_per_sec`, one `c{pct}_t{n}_txs_per_sec` per pool size
/// (all higher-is-better under `perf_regression`), and the widest pool's
/// `c{pct}_t{n}_speedup_x100` vs sequential. `available_parallelism`
/// records the hardware so 1-CPU-container numbers aren't compared
/// against multi-core ones by eye.
pub fn parallel_block_to_json(
    blocks: usize,
    txs_per_block: usize,
    points: &[ParallelBlockPoint],
) -> Json {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut members: Vec<(String, Json)> = vec![
        ("blocks".into(), Json::Int(blocks as i128)),
        ("txs_per_block".into(), Json::Int(txs_per_block as i128)),
        ("available_parallelism".into(), Json::Int(cores as i128)),
    ];
    for p in points {
        members.push((
            format!("c{}_seq_txs_per_sec", p.conflict_pct),
            Json::Int(p.sequential_txs_per_sec as i128),
        ));
        for &(t, tps) in &p.by_threads {
            members.push((
                format!("c{}_t{}_txs_per_sec", p.conflict_pct, t),
                Json::Int(tps as i128),
            ));
        }
        if let Some(&(t, tps)) = p.by_threads.last() {
            members.push((
                format!("c{}_t{}_speedup_x100", p.conflict_pct, t),
                Json::Int((tps / p.sequential_txs_per_sec.max(1.0) * 100.0) as i128),
            ));
        }
    }
    Json::Obj(members)
}

/// The cost of `TouchSet` recording on the overlay hot path.
pub struct TouchsetOverhead {
    /// ns per overlay operation with recording off (the sequential path).
    pub plain_op_ns: f64,
    /// ns per overlay operation with recording on (the speculation path).
    pub recorded_op_ns: f64,
}

/// Measure per-operation overhead of read/write-set recording: the same
/// mix of tracked reads and writes against a fork of a `slots`-slot
/// world, with and without `begin_touch_recording`. The delta is what
/// every speculated transaction pays so the commit stage can validate it.
pub fn touchset_overhead_ns(slots: u64, iters: u32) -> TouchsetOverhead {
    const ROUNDS: u64 = 256;
    const OPS_PER_ROUND: u64 = 4; // tracked read, write, balance read, credit
    let world = populated_world(slots);
    let run = |record: bool| {
        time_per_iter(iters, || {
            let mut fork = world.fork();
            if record {
                fork.begin_touch_recording();
            }
            for i in 0..ROUNDS {
                let a = addr(i % 64);
                std::hint::black_box(fork.storage_get_tracked(a, key(i)));
                fork.storage_set(a, key(i), key(i + 2));
                std::hint::black_box(fork.balance_tracked(a));
                fork.credit(a, 1);
            }
            if record {
                std::hint::black_box(fork.take_touch_set());
            }
            std::hint::black_box(&fork);
        }) / (ROUNDS * OPS_PER_ROUND) as f64
    };
    TouchsetOverhead {
        plain_op_ns: run(false),
        recorded_op_ns: run(true),
    }
}

/// Render the touch-set overhead probe: both `*_op_ns` legs gate
/// lower-is-better, and `touchset_overhead_ns` is the recorded-minus-plain
/// delta (clamped at zero — timing noise can invert tiny gaps).
pub fn touchset_overhead_to_json(o: &TouchsetOverhead) -> Json {
    Json::Obj(vec![
        (
            "plain_overlay_op_ns".into(),
            Json::Int(o.plain_op_ns as i128),
        ),
        (
            "recorded_overlay_op_ns".into(),
            Json::Int(o.recorded_op_ns as i128),
        ),
        (
            "touchset_overhead_ns".into(),
            Json::Int((o.recorded_op_ns - o.plain_op_ns).max(0.0) as i128),
        ),
    ])
}

/// One labeled measurement in the machine-readable summary.
pub struct PerfRow {
    /// Metric name.
    pub name: &'static str,
    /// Nanoseconds per operation.
    pub ns: f64,
}

/// The standard perf sweep behind `BENCH_results.json`. `slots` sizes the
/// large world (the acceptance sweep uses 100_000).
pub fn standard_sweep(slots: u64) -> Vec<PerfRow> {
    let iters = 200;
    vec![
        PerfRow {
            name: "state_snapshot_large_world_journaled_ns",
            ns: journaled_snapshot_revert_ns(slots, iters),
        },
        PerfRow {
            name: "state_snapshot_large_world_clone_baseline_ns",
            ns: clone_snapshot_revert_ns(slots, 20),
        },
        PerfRow {
            name: "fork_large_world_journaled_ns",
            ns: journaled_fork_ns(slots, iters),
        },
        PerfRow {
            name: "fork_large_world_clone_baseline_ns",
            ns: clone_fork_ns(slots, 20),
        },
        PerfRow {
            name: "fork_simulate_ns",
            ns: fork_simulate_ns(slots, iters),
        },
        PerfRow {
            name: "call_chain_depth16_ns",
            ns: call_chain_ns(16, 10),
        },
        PerfRow {
            name: "ecdsa_recover_ns",
            ns: ecdsa_recover_ns(50),
        },
    ]
}

/// Render a perf sweep (plus derived speedups) as a JSON object.
pub fn sweep_to_json(slots: u64, rows: &[PerfRow]) -> Json {
    let get = |name: &str| rows.iter().find(|r| r.name == name).map(|r| r.ns);
    let mut members: Vec<(String, Json)> = vec![("world_slots".into(), Json::Int(slots as i128))];
    for row in rows {
        members.push((row.name.into(), Json::Int(row.ns as i128)));
    }
    if let (Some(journaled), Some(clone)) = (
        get("state_snapshot_large_world_journaled_ns"),
        get("state_snapshot_large_world_clone_baseline_ns"),
    ) {
        members.push((
            "snapshot_speedup_vs_clone".into(),
            Json::Int((clone / journaled.max(1.0)) as i128),
        ));
    }
    if let (Some(journaled), Some(clone)) = (
        get("fork_large_world_journaled_ns"),
        get("fork_large_world_clone_baseline_ns"),
    ) {
        members.push((
            "fork_speedup_vs_clone".into(),
            Json::Int((clone / journaled.max(1.0)) as i128),
        ));
    }
    Json::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_scenario_traverses_all_links() {
        let mut scenario = ChainScenario::new(3);
        scenario.run_once();
    }

    #[test]
    fn wire_throughput_probe_mints_on_both_paths() {
        let wire = ts_wire_throughput(4, 1);
        assert!(wire.batch_tokens_per_sec > 0.0);
        assert!(wire.v1_sequential_tokens_per_sec > 0.0);
        let json = wire_throughput_to_json(&wire);
        assert!(json.get("batch_speedup_x100").is_some());
    }

    #[test]
    fn sweep_emits_all_metrics() {
        let rows = standard_sweep(500); // small world: keep the test fast
        assert_eq!(rows.len(), 7);
        let json = sweep_to_json(500, &rows);
        assert!(json.get("snapshot_speedup_vs_clone").is_some());
        assert!(json.get("call_chain_depth16_ns").is_some());
        assert!(json.get("ecdsa_recover_ns").is_some());
    }

    #[test]
    fn parallel_block_probe_runs_all_modes() {
        let points = parallel_block_execution(2, 8, &[1, 2], &[0, 100]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.sequential_txs_per_sec > 0.0);
            assert_eq!(p.by_threads.len(), 2);
            assert!(p.by_threads.iter().all(|&(_, tps)| tps > 0.0));
        }
        let json = parallel_block_to_json(2, 8, &points);
        assert!(json.get("c0_seq_txs_per_sec").is_some());
        assert!(json.get("c100_t2_txs_per_sec").is_some());
        assert!(json.get("c100_t2_speedup_x100").is_some());
    }

    #[test]
    fn touchset_probe_measures_both_legs() {
        let o = touchset_overhead_ns(2_000, 4);
        assert!(o.plain_op_ns > 0.0 && o.recorded_op_ns > 0.0);
        let json = touchset_overhead_to_json(&o);
        assert!(json.get("touchset_overhead_ns").is_some());
    }

    #[test]
    fn threshold_sweep_rebuilds_below_and_accumulates_above() {
        // Burst = 256 blocks × 64 writes to fresh keys = 16_384 overlay
        // entries. A tiny threshold must flatten (small residual); a
        // threshold above the burst size must leave it all accumulated.
        let points = commit_threshold_sweep(2_000, &[64, 1 << 20]);
        assert!(points[0].residual_overlay < 64);
        assert!(points[1].residual_overlay >= 16_384);
        let json = threshold_sweep_to_json(2_000, &points);
        assert!(json.get("t64_commit_ns").is_some());
        assert!(json.get("t1048576_post_burst_fork_ns").is_some());
        assert!(json.get("default_threshold").is_some());
    }

    #[test]
    fn signing_scaling_probe_mints_and_reports() {
        let points = concurrent_signing_scaling(16, &[1, 2], 1);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.tokens_per_sec > 0.0));
        let json = scaling_to_json(16, &points);
        assert!(json.get("points").is_some());
        assert!(json.get("available_parallelism").is_some());
    }

    #[test]
    fn failover_probe_survives_a_kill_and_recovery() {
        let probe = ts_failover_throughput(8);
        assert_eq!(probe.replicas, 3);
        assert!(probe.steady_tokens_per_sec > 0.0);
        assert!(probe.degraded_tokens_per_sec > 0.0);
        assert!(probe.recovered_tokens_per_sec > 0.0);
        let json = failover_to_json(&probe);
        assert!(json.get("degraded_fraction_x100").is_some());
    }

    #[test]
    fn wire_quorum_probe_survives_a_counter_partition() {
        let probe = ts_failover_wire_throughput(4);
        assert_eq!(probe.replicas, 3);
        assert!(probe.steady_one_time_per_sec > 0.0);
        assert!(probe.partitioned_one_time_per_sec > 0.0);
        assert!(probe.recovered_one_time_per_sec > 0.0);
        let json = wire_failover_to_json(&probe);
        assert!(json.get("partitioned_fraction_x100").is_some());
    }

    #[test]
    fn connection_probe_counts_threads_not_connections() {
        let probe = connection_scaling_probe_with_window(32, Duration::from_millis(100));
        assert_eq!(probe.target_connections, 32);
        assert_eq!(probe.connections, 32);
        assert_eq!(probe.parked_connections, 32, "every idle conn must park");
        assert_eq!(probe.spawn_model_threads, 33);
        // The pooled server's thread cost must not scale with the
        // connection count (32 idle connections, a handful of workers).
        assert!(
            probe.pool_workers < probe.connections,
            "pool {} vs connections {}",
            probe.pool_workers,
            probe.connections
        );
        assert!(probe.idle_cpu_pct_x100 >= 0, "CPU accounting unreadable");
        let json = connection_scaling_to_json(&probe);
        assert!(json.get("os_threads").is_some());
        assert!(json.get("idle_cpu_pct_x100").is_some());
    }

    #[test]
    fn storm_probe_serves_every_request() {
        let probe = connection_storm_probe(32, 4, 4);
        assert_eq!(probe.parked_connections, 32);
        assert!(probe.storm_connections > 0, "storm never stormed");
        assert_eq!(probe.storm_errors, 0, "storm requests dropped");
        assert!(probe.calm_batch_p99_ns > 0);
        assert!(probe.storm_batch_p99_ns > 0);
        let json = connection_storm_to_json(&probe);
        assert!(json.get("storm_batch_p99_ns").is_some());
    }
}
