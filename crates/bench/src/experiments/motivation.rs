//! §II-B / §II-D motivation — what on-chain whitelists cost.
//!
//! Two anchors from the paper:
//! - "creating even a simple whitelist with 10k addresses would cost
//!   around $300" (§II-B, at 2018-era gas prices);
//! - "the Bluzelle decentralized database has paid 9.345 ETH (11,949 USD
//!   at the time) just to whitelist 7473 users" (§II-D).
//!
//! The measurement deploys the [`OnChainWhitelistSale`] baseline and pays
//! for every `addToWhitelist` transaction; the SMACS comparison is a rule
//! update in the TS — zero gas.

use smacs_chain::gas::gas_to_usd;
use smacs_chain::Chain;
use smacs_contracts::OnChainWhitelistSale;
use smacs_primitives::Address;
use std::sync::Arc;

/// Result of one whitelist-population run.
#[derive(Clone, Debug)]
pub struct Run {
    /// Number of whitelisted addresses.
    pub entries: usize,
    /// Total gas over all `addToWhitelist` transactions.
    pub total_gas: u64,
    /// Gas per entry.
    pub gas_per_entry: f64,
    /// Total ETH at the 2018-era 40 gwei gas price (the conditions behind
    /// the Bluzelle figure).
    pub eth_at_40_gwei: f64,
}

impl Run {
    /// USD at the paper's Table II conversion (1 gwei, $247/ETH).
    pub fn usd_at_1_gwei(&self) -> f64 {
        gas_to_usd(self.total_gas)
    }

    /// USD at 2018 conditions (40 gwei, $450/ETH — ETH's early-2018 trading
    /// range, when Bluzelle ran its sale).
    pub fn usd_at_2018_prices(&self) -> f64 {
        self.eth_at_40_gwei * 450.0
    }
}

/// Populate an on-chain whitelist with `entries` addresses and account
/// every wei.
pub fn measure_entries(entries: usize) -> Run {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(27));
    let (sale, _) = chain
        .deploy(&owner, Arc::new(OnChainWhitelistSale::new(owner.address())))
        .expect("deploy sale");
    let mut total_gas = 0u64;
    for i in 0..entries {
        let addr = Address::from_low_u64(0x5_0000 + i as u64);
        let receipt = chain
            .call_contract(
                &owner,
                sale.address,
                0,
                OnChainWhitelistSale::add_payload(addr),
            )
            .expect("whitelist tx");
        assert!(receipt.status.is_success());
        total_gas += receipt.gas_used;
        if i % 500 == 0 {
            chain.seal_block();
        }
    }
    let eth_at_40_gwei = total_gas as f64 * 40e-9;
    Run {
        entries,
        total_gas,
        gas_per_entry: total_gas as f64 / entries as f64,
        eth_at_40_gwei,
    }
}

/// Run both anchor sizes.
pub fn measure() -> (Run, Run) {
    (measure_entries(10_000), measure_entries(7_473))
}

/// Render the comparison.
pub fn report(ten_k: &Run, bluzelle: &Run) -> String {
    let mut out = String::new();
    out.push_str("Motivation: on-chain whitelist cost (the baseline SMACS eliminates)\n");
    out.push_str(&format!(
        "{:>8} | {:>14} {:>10} {:>12} {:>14} {:>16}\n",
        "entries", "total gas", "gas/entry", "USD@1gwei", "ETH@40gwei", "USD@2018 prices"
    ));
    for run in [ten_k, bluzelle] {
        out.push_str(&format!(
            "{:>8} | {:>14} {:>10.0} {:>12.2} {:>14.3} {:>16.0}\n",
            run.entries,
            run.total_gas,
            run.gas_per_entry,
            run.usd_at_1_gwei(),
            run.eth_at_40_gwei,
            run.usd_at_2018_prices(),
        ));
    }
    out.push_str(
        "paper anchors: 10k addresses ≈ $300; Bluzelle: 7473 users = 9.345 ETH ($11,949)\n",
    );
    out.push_str("SMACS equivalent: a TS rule update — 0 gas, $0, no transaction at all\n");
    out
}
