//! One module per table/figure of the paper's evaluation (§VI).

pub mod ablation;
pub mod fig8;
pub mod fig9;
pub mod motivation;
pub mod runtime_tools;
pub mod table2;
pub mod table3;
pub mod table4;
