//! Table IV — one-time bitmap storage and deployment cost at the paper's
//! three transaction frequencies (35 / 3.5 / 0.35 tx/s, 1-hour lifetime).
//!
//! The cost is one-time, paid at contract creation: the shield's
//! constructor pre-touches every bitmap word (see
//! [`smacs_core::storage_bitmap::StorageBitmap::init`]).

use smacs_chain::gas::gas_to_usd;
use smacs_chain::Chain;
use smacs_contracts::BenchTarget;
use smacs_core::bitmap::bitmap_bits_for;
use smacs_core::owner::{OwnerToolkit, ShieldParams};

/// One measured frequency.
#[derive(Clone, Debug)]
pub struct Row {
    /// Transaction frequency (tx/s).
    pub tx_rate: f64,
    /// Bitmap size in bits.
    pub bits: u64,
    /// Bitmap size in KB (bits / 8 / 1024 — the paper's unit).
    pub storage_kb: f64,
    /// Gas attributable to bitmap initialization (shielded deployment
    /// minus a bitmap-free shielded deployment).
    pub deployment_gas: u64,
    /// Total gas of the shielded deployment.
    pub total_deploy_gas: u64,
}

impl Row {
    /// USD of the bitmap share at the paper's conversion.
    pub fn usd(&self) -> f64 {
        gas_to_usd(self.deployment_gas)
    }
}

/// The paper's Table IV: (tx_rate, storage KB, deployment gas).
pub const PAPER: [(f64, f64, u64); 3] = [
    (35.0, 15.38, 8_849_037),
    (3.5, 1.54, 886_054),
    (0.35, 0.154, 88_605),
];

fn deploy_gas(rate: f64, disable_one_time: bool) -> u64 {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(26));
    let toolkit = OwnerToolkit::new(owner, smacs_crypto::Keypair::from_seed(9_000));
    let params = ShieldParams {
        token_lifetime_secs: 3_600,
        max_tx_per_second: rate,
        disable_one_time,
    };
    let (_, receipt) = toolkit
        .deploy_shielded_with_limit(
            &mut chain,
            std::sync::Arc::new(BenchTarget),
            &params,
            60_000_000,
        )
        .expect("deployment");
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    receipt.breakdown.total
}

/// Run the sweep.
pub fn measure() -> Vec<Row> {
    let baseline = deploy_gas(35.0, true); // shield without any bitmap
    PAPER
        .iter()
        .map(|&(rate, _, _)| {
            let bits = bitmap_bits_for(3_600, rate);
            let total = deploy_gas(rate, false);
            Row {
                tx_rate: rate,
                bits,
                storage_kb: bits as f64 / 8.0 / 1024.0,
                deployment_gas: total - baseline,
                total_deploy_gas: total,
            }
        })
        .collect()
}

/// Render the table with the paper comparison.
pub fn report(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table IV: one-time storage cost for the bitmap (paid at deployment)\n");
    out.push_str(&format!(
        "{:>8} | {:>9} {:>11} {:>12} {:>8} | {:>11} {:>9} {:>6}\n",
        "tx/s", "bits", "storage KB", "deploy gas", "USD", "paper gas", "p.KB", "ratio"
    ));
    for row in rows {
        let paper = PAPER
            .iter()
            .find(|(r, ..)| *r == row.tx_rate)
            .expect("paper row");
        out.push_str(&format!(
            "{:>8.2} | {:>9} {:>11.3} {:>12} {:>8.3} | {:>11} {:>9.3} {:>6.2}\n",
            row.tx_rate,
            row.bits,
            row.storage_kb,
            row.deployment_gas,
            row.usd(),
            paper.2,
            paper.1,
            row.deployment_gas as f64 / paper.2 as f64,
        ));
    }
    out
}
