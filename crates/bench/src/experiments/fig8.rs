//! Fig. 8 — aggregated gas cost for verifying multiple tokens (call-chain
//! depths 1–4), four series: Super, Method, Argument, Argument one-time.
//!
//! The paper's figure shows linear growth in the number of tokens with the
//! argument series roughly 2× the others.

use smacs_token::TokenType;

use crate::experiments::table3::{measure_depth, Row};

/// One series of the figure.
#[derive(Clone, Debug)]
pub struct Series {
    /// Label as the paper's legend prints it.
    pub label: &'static str,
    /// Token type of this series.
    pub ttype: TokenType,
    /// One-time property.
    pub one_time: bool,
    /// Total gas per depth 1–4.
    pub points: Vec<Row>,
}

/// Paper-reported Fig. 8 totals, read off the plotted series
/// (depth 1–4). The non-argument series are derived from Table II totals
/// scaled linearly, which is what the figure shows.
pub const PAPER_ARGUMENT_ONE_TIME: [u64; 4] = [416_248, 839_675, 1_263_809, 1_699_911];

/// Run all four series.
pub fn measure() -> Vec<Series> {
    let configs: [(&'static str, TokenType, bool); 4] = [
        ("Super", TokenType::Super, false),
        ("Method", TokenType::Method, false),
        ("Argument", TokenType::Argument, false),
        ("Arg. (one-time)", TokenType::Argument, true),
    ];
    configs
        .into_iter()
        .map(|(label, ttype, one_time)| Series {
            label,
            ttype,
            one_time,
            points: (1..=4)
                .map(|depth| measure_depth(ttype, one_time, depth))
                .collect(),
        })
        .collect()
}

/// Render the figure's data as rows (number of tokens × four series).
pub fn report(series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 8: aggregated gas cost for verifying multiple tokens\n");
    out.push_str(&format!("{:>7}", "tokens"));
    for s in series {
        out.push_str(&format!(" {:>16}", s.label));
    }
    out.push('\n');
    for depth in 0..4 {
        out.push_str(&format!("{:>7}", depth + 1));
        for s in series {
            out.push_str(&format!(" {:>16}", s.points[depth].total));
        }
        out.push('\n');
    }
    out.push_str("paper (Arg. one-time): ");
    for v in PAPER_ARGUMENT_ONE_TIME {
        out.push_str(&format!("{v} "));
    }
    out.push('\n');
    out
}
