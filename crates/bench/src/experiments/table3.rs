//! Table III — gas cost for multiple one-time argument tokens along a call
//! chain of depth 1–4 (Fig. 5 contracts), with the Verify / Misc / Bitmap /
//! Parse split.

use smacs_chain::gas::gas_to_usd;
use smacs_contracts::ChainLink;
use smacs_primitives::Address;
use smacs_token::{Token, TokenType};

use crate::setup::World;

/// One measured depth.
#[derive(Clone, Debug)]
pub struct Row {
    /// Number of tokens (= chain depth).
    pub tokens: usize,
    /// Aggregated Alg. 1 signature-path gas across all frames.
    pub verify: u64,
    /// Aggregated Alg. 2 gas.
    pub bitmap: u64,
    /// Token-array parsing gas (zero for a single token, as in the paper).
    pub parse: u64,
    /// Everything else.
    pub misc: u64,
    /// Total transaction gas.
    pub total: u64,
}

impl Row {
    /// USD at the paper's conversion.
    pub fn usd(&self) -> f64 {
        gas_to_usd(self.total)
    }
}

/// The paper's Table III: (tokens, verify, misc, bitmap, parse, total).
pub const PAPER: [(usize, u64, u64, u64, u64, u64); 4] = [
    (1, 330_914, 57_331, 28_003, 0, 416_248),
    (2, 662_952, 102_991, 56_746, 16_986, 839_675),
    (3, 994_552, 150_463, 84_612, 34_182, 1_263_809),
    (4, 1_326_506, 203_499, 112_034, 57_872, 1_699_911),
];

/// Measure a chain of `depth` one-time argument tokens; generic over the
/// token type so Fig. 8 can reuse it.
pub fn measure_depth(ttype: TokenType, one_time: bool, depth: usize) -> Row {
    let (mut world, links) = World::with_chain_depth(depth);
    let payload = ChainLink::poke_payload();
    let tokens: Vec<(Address, Token)> = links
        .iter()
        .map(|&addr| {
            (
                addr,
                world.issue(ttype, addr, ChainLink::POKE_SIG, &payload, one_time),
            )
        })
        .collect();
    let receipt = world
        .client
        .call_with_tokens(&mut world.chain, links[0], 0, &payload, &tokens)
        .expect("submit");
    assert!(
        receipt.status.is_success(),
        "depth {depth}: {:?}",
        receipt.status
    );
    Row {
        tokens: depth,
        verify: receipt.breakdown.section("verify"),
        bitmap: receipt.breakdown.section("bitmap"),
        parse: receipt.breakdown.section("parse"),
        misc: receipt.breakdown.misc(),
        total: receipt.breakdown.total,
    }
}

/// Run the Table III sweep (one-time argument tokens, depths 1–4).
pub fn measure() -> Vec<Row> {
    (1..=4)
        .map(|depth| measure_depth(TokenType::Argument, true, depth))
        .collect()
}

/// Render the table with the paper comparison.
pub fn report(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table III: gas cost for multiple one-time argument tokens\n");
    out.push_str(&format!(
        "{:>6} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} | {:>9} {:>6}\n",
        "tokens", "verify", "misc", "bitmap", "parse", "total", "USD", "paper", "ratio"
    ));
    for row in rows {
        let paper_total = PAPER
            .iter()
            .find(|(n, ..)| *n == row.tokens)
            .map(|p| p.5)
            .unwrap_or(0);
        out.push_str(&format!(
            "{:>6} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>8.3} | {:>9} {:>6.2}\n",
            row.tokens,
            row.verify,
            row.misc,
            row.bitmap,
            row.parse,
            row.total,
            row.usd(),
            paper_total,
            row.total as f64 / paper_total as f64,
        ));
    }
    out
}
