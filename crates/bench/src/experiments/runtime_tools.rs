//! §VI-B(b) — TS throughput with runtime-verification tools.
//!
//! "For Hydra, we implement a simple contract in three different
//! programming languages and deploy it on a Hydra-supported testnet. For
//! ECFChecker, we deploy the vulnerable contract presented in §V. We send
//! 100 transactions each and measure the average time needed by a tool to
//! process a transaction." Paper: Hydra ≈ 120 ms/request (~8 req/s),
//! ECFChecker ≈ 10 ms/request (~100 req/s).

use smacs_chain::abi;
use smacs_chain::Chain;
use smacs_contracts::{AdderHead, Bank, HydraStyle};
use smacs_crypto::Keypair;
use smacs_token::TokenRequest;
use smacs_ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};
use smacs_verifiers::{EcfTool, HydraTool};
use std::sync::Arc;
use std::time::Instant;

/// One tool's measurement.
#[derive(Clone, Debug)]
pub struct ToolResult {
    /// Tool name.
    pub tool: &'static str,
    /// Requests processed.
    pub requests: usize,
    /// Average milliseconds per request.
    pub avg_ms: f64,
    /// Requests per second.
    pub throughput: f64,
    /// Paper's reported ms per request.
    pub paper_ms: f64,
}

/// Measure the Hydra-backed TS over `n` argument-token requests.
pub fn measure_hydra(n: usize) -> ToolResult {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let mut heads = Vec::new();
    for style in [
        HydraStyle::Direct,
        HydraStyle::ShiftAdd,
        HydraStyle::TwosComplement,
    ] {
        let (d, _) = chain
            .deploy(&owner, Arc::new(AdderHead::new(style)))
            .expect("deploy head");
        heads.push(d.address);
    }
    let protected = heads[0];
    let ts = TokenService::new(
        Keypair::from_seed(9_000),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    )
    .with_testnet(chain.fork())
    .with_tool(Arc::new(HydraTool::new(heads)));
    let ts = InProcessClient::new(ts, "tools-owner", 0);

    let client = owner.address();
    let start = Instant::now();
    for k in 0..n {
        let req = TokenRequest::argument_token(
            protected,
            client,
            AdderHead::ADD_SIG,
            vec![],
            AdderHead::add_payload(k as u64),
        );
        ts.set_time(k as u64);
        ts.issue(&req).expect("hydra issuance");
    }
    let elapsed = start.elapsed().as_secs_f64();
    ToolResult {
        tool: "Hydra (3 heads)",
        requests: n,
        avg_ms: elapsed * 1e3 / n as f64,
        throughput: n as f64 / elapsed,
        paper_ms: 120.0,
    }
}

/// Measure the ECFChecker-backed TS over `n` argument-token requests
/// against the deployed vulnerable Bank.
pub fn measure_ecf(n: usize) -> ToolResult {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let user = chain.funded_keypair(2, 10u128.pow(24));
    let (bank, _) = chain.deploy(&owner, Arc::new(Bank)).expect("deploy bank");
    chain
        .call_contract(
            &user,
            bank.address,
            1_000,
            abi::encode_call("addBalance()", &[]),
        )
        .expect("fund balance");
    let ts = TokenService::new(
        Keypair::from_seed(9_000),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    )
    .with_testnet(chain.fork())
    .with_tool(Arc::new(EcfTool::new(bank.address)));
    let ts = InProcessClient::new(ts, "tools-owner", 0);

    let client = user.address();
    let start = Instant::now();
    for k in 0..n {
        let req = TokenRequest::argument_token(
            bank.address,
            client,
            "withdraw()",
            vec![],
            abi::encode_call("withdraw()", &[]),
        );
        ts.set_time(k as u64);
        ts.issue(&req).expect("ecf issuance");
    }
    let elapsed = start.elapsed().as_secs_f64();
    ToolResult {
        tool: "ECFChecker",
        requests: n,
        avg_ms: elapsed * 1e3 / n as f64,
        throughput: n as f64 / elapsed,
        paper_ms: 10.0,
    }
}

/// Run both tools at the paper's n = 100.
pub fn measure() -> Vec<ToolResult> {
    vec![measure_hydra(100), measure_ecf(100)]
}

/// Render the results.
pub fn report(results: &[ToolResult]) -> String {
    let mut out = String::new();
    out.push_str("§VI-B(b): TS throughput with runtime verification tools\n");
    out.push_str(&format!(
        "{:<18} {:>9} {:>12} {:>12} | {:>12} {:>12}\n",
        "tool", "requests", "ms/request", "req/s", "paper ms", "paper req/s"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<18} {:>9} {:>12.3} {:>12.0} | {:>12.0} {:>12.0}\n",
            r.tool,
            r.requests,
            r.avg_ms,
            r.throughput,
            r.paper_ms,
            1_000.0 / r.paper_ms
        ));
    }
    out.push_str("shape check: Hydra (N simulations/request) must be slower per request than ECF (1 simulation/request)\n");
    out
}
