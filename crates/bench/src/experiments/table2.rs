//! Table II — single-token processing gas cost.
//!
//! For each token type (Super / Method / Argument), with and without the
//! one-time property: the Verify / Misc (/ Bitmap) gas split and the USD
//! conversion, against the paper's published values.

use smacs_chain::gas::gas_to_usd;
use smacs_contracts::BenchTarget;
use smacs_token::TokenType;

use crate::setup::World;

/// One measured row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Token type measured.
    pub ttype: TokenType,
    /// Whether the one-time property was set.
    pub one_time: bool,
    /// Gas attributed to Alg. 1's signature path.
    pub verify: u64,
    /// Gas attributed to Alg. 2 bookkeeping.
    pub bitmap: u64,
    /// Everything else: base tx, calldata, dispatch, method body.
    pub misc: u64,
    /// Total transaction gas.
    pub total: u64,
}

impl Row {
    /// USD at the paper's conversion (1 gwei, $247/ETH).
    pub fn usd(&self) -> f64 {
        gas_to_usd(self.total)
    }
}

/// The paper's Table II values: (type, one_time, verify, misc, bitmap,
/// total).
pub const PAPER: [(TokenType, bool, u64, u64, u64, u64); 6] = [
    (TokenType::Super, false, 108_282, 57_675, 0, 165_957),
    (TokenType::Method, false, 115_108, 57_675, 0, 172_783),
    (TokenType::Argument, false, 330_889, 57_678, 0, 388_567),
    (TokenType::Super, true, 108_531, 57_426, 27_471, 193_428),
    (TokenType::Method, true, 115_651, 56_994, 27_839, 200_484),
    (TokenType::Argument, true, 330_914, 57_331, 28_003, 416_248),
];

/// Run the measurement: one fresh world per row.
pub fn measure() -> Vec<Row> {
    let mut rows = Vec::new();
    for one_time in [false, true] {
        for ttype in TokenType::ALL {
            let mut world = World::new();
            let payload = BenchTarget::ping_payload(3, 4);
            let token = world.issue(
                ttype,
                world.target,
                BenchTarget::PING_SIG,
                &payload,
                one_time,
            );
            let receipt = world
                .client
                .call_with_token(&mut world.chain, world.target, 0, &payload, token)
                .expect("submit");
            assert!(
                receipt.status.is_success(),
                "{ttype}/{one_time}: {:?}",
                receipt.status
            );
            rows.push(Row {
                ttype,
                one_time,
                verify: receipt.breakdown.section("verify"),
                bitmap: receipt.breakdown.section("bitmap"),
                misc: receipt.breakdown.misc() + receipt.breakdown.section("parse"),
                total: receipt.breakdown.total,
            });
        }
    }
    rows
}

/// Render the table with the paper comparison.
pub fn report(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table II: single token processing gas cost\n");
    out.push_str(&format!(
        "{:<10} {:>8} | {:>9} {:>9} {:>9} {:>9} {:>8} | {:>9} {:>8} {:>6}\n",
        "type", "one-time", "verify", "misc", "bitmap", "total", "USD", "paper", "p.USD", "ratio"
    ));
    for row in rows {
        let paper = PAPER
            .iter()
            .find(|(t, o, ..)| *t == row.ttype && *o == row.one_time)
            .expect("paper row");
        let paper_total = paper.5;
        out.push_str(&format!(
            "{:<10} {:>8} | {:>9} {:>9} {:>9} {:>9} {:>8.3} | {:>9} {:>8.3} {:>6.2}\n",
            row.ttype.to_string(),
            row.one_time,
            row.verify,
            row.misc,
            row.bitmap,
            row.total,
            row.usd(),
            paper_total,
            gas_to_usd(paper_total),
            row.total as f64 / paper_total as f64,
        ));
    }
    out
}
